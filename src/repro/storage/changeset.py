"""Changesets: batches of base-relation insertions, deletions, updates.

A changeset is the input to every maintenance algorithm: for each base
relation ``P`` it carries a signed delta ``Δ(P)`` (Definition 3.2) —
positive counts are insertions, negative counts deletions.  Updates are
modelled as a deletion plus an insertion, as in the paper.

The builder API is fluent::

    changes = (
        Changeset()
        .insert("link", ("a", "b"))
        .delete("link", ("b", "c"))
        .update("cost", ("x", 3), ("x", 4))
    )
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.storage.relation import CountedRelation, Row


class Changeset:
    """A collection of per-relation signed deltas."""

    __slots__ = ("_deltas",)

    def __init__(self) -> None:
        self._deltas: Dict[str, CountedRelation] = {}

    # -------------------------------------------------------------- builder

    def insert(self, relation: str, row: Iterable[object], count: int = 1) -> "Changeset":
        """Record ``count`` insertions of ``row`` into ``relation``."""
        if count <= 0:
            raise ValueError(f"insert count must be positive, got {count}")
        self._delta(relation).add(tuple(row), count)
        return self

    def delete(self, relation: str, row: Iterable[object], count: int = 1) -> "Changeset":
        """Record ``count`` deletions of ``row`` from ``relation``."""
        if count <= 0:
            raise ValueError(f"delete count must be positive, got {count}")
        self._delta(relation).add(tuple(row), -count)
        return self

    def update(
        self, relation: str, old_row: Iterable[object], new_row: Iterable[object]
    ) -> "Changeset":
        """Record an update: delete ``old_row``, insert ``new_row``."""
        return self.delete(relation, old_row).insert(relation, new_row)

    def add_delta(self, relation: str, delta: CountedRelation) -> "Changeset":
        """⊎ a whole prebuilt delta relation into this changeset."""
        self._delta(relation).merge(delta)
        return self

    def merge(self, other: "Changeset") -> "Changeset":
        """⊎ every delta of ``other`` into this changeset (in place).

        Opposite-signed changes to the same row cancel (⊎ drops zero
        counts), so merging an insert-then-delete sequence leaves no
        trace — the *net effect* is what remains.  This is the primitive
        behind :func:`coalesce` and ``ViewMaintainer.apply_many``.
        """
        for name, delta in other._deltas.items():
            self._delta(name).merge(delta)
        return self

    def _delta(self, relation: str) -> CountedRelation:
        delta = self._deltas.get(relation)
        if delta is None:
            delta = CountedRelation(f"Δ({relation})")
            self._deltas[relation] = delta
        return delta

    # ------------------------------------------------------------ accessors

    def delta(self, relation: str) -> CountedRelation:
        """The delta for ``relation`` (empty if the changeset never touched it)."""
        return self._deltas.get(relation, CountedRelation(f"Δ({relation})"))

    def relations(self) -> Tuple[str, ...]:
        """Names of relations with a non-empty delta."""
        return tuple(name for name, delta in self._deltas.items() if delta)

    def __iter__(self) -> Iterator[Tuple[str, CountedRelation]]:
        for name, delta in self._deltas.items():
            if delta:
                yield name, delta

    def is_empty(self) -> bool:
        return not any(delta for delta in self._deltas.values())

    def insertion_count(self) -> int:
        """Total multiplicity of insertions across all relations."""
        return sum(
            count
            for delta in self._deltas.values()
            for _, count in delta.positive_items()
        )

    def deletion_count(self) -> int:
        """Total multiplicity of deletions across all relations."""
        return -sum(
            count
            for delta in self._deltas.values()
            for _, count in delta.negative_items()
        )

    def inverted(self) -> "Changeset":
        """The inverse changeset (every insertion becomes a deletion etc.).

        Useful for undo-style tests: applying a changeset then its inverse
        must restore the original materialization.
        """
        inverse = Changeset()
        for name, delta in self._deltas.items():
            for row, count in delta.items():
                inverse._delta(name).add(row, -count)
        return inverse

    def copy(self) -> "Changeset":
        clone = Changeset()
        for name, delta in self._deltas.items():
            clone._deltas[name] = delta.copy()
        return clone

    def __repr__(self) -> str:
        parts = []
        for name, delta in self._deltas.items():
            if delta:
                parts.append(f"{name}: {delta.to_dict()}")
        return f"<Changeset {'; '.join(parts) or 'empty'}>"


def coalesce(changesets: Iterable[Changeset]) -> Changeset:
    """Fold a stream of changesets into one net-effect changeset (⊎).

    A row inserted by one changeset and deleted by a later one (or vice
    versa) cancels out entirely; counts of same-signed changes
    accumulate.  Maintaining the coalesced changeset is equivalent to
    maintaining the sequence one by one — the signed deltas compose by ⊎
    (Section 3) — but a single pass pays the propagation fixed costs
    once.  Validity note: if each changeset in the sequence is valid
    against the state left by its predecessors, the net changeset is
    valid against the initial state (deletions never exceed stored
    counts), so coalescing never manufactures an invalid batch.
    """
    merged = Changeset()
    for changes in changesets:
        merged.merge(changes)
    return merged


def changeset_from_deltas(deltas: Dict[str, Dict[Row, int]]) -> Changeset:
    """Build a changeset from ``{relation: {row: signed count}}``."""
    changes = Changeset()
    for name, rows in deltas.items():
        for row, count in rows.items():
            if count > 0:
                changes.insert(name, row, count)
            elif count < 0:
                changes.delete(name, row, -count)
    return changes
