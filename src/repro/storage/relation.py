"""Counted relations: multisets of tuples with derivation counts.

Section 3 of the paper defines relations whose tuples carry a *count*:
the number of distinct derivations under duplicate semantics.  Change
relations (``Δ(P)``) carry positive counts for insertions and negative
counts for deletions.  Two operations are redefined for counted
relations:

* the union ``⊎`` adds counts and drops tuples whose counts cancel to 0
  (:meth:`CountedRelation.merge`, :meth:`CountedRelation.add`);
* the join multiplies counts of joined tuples (implemented in
  :mod:`repro.eval.rule_eval`).

A :class:`CountedRelation` never stores a zero count.  Stored
materializations must satisfy the Lemma 4.1 invariant (no negative
counts) — :meth:`assert_nonnegative` checks it; delta relations may mix
signs freely.

Relations maintain hash indexes over column subsets.  Indexes are created
lazily by the evaluator and maintained incrementally on every mutation,
so repeated small maintenance batches never pay a full re-index.  Index
key specs can additionally be *declared* (:meth:`declare_index`) —
declared specs survive :meth:`clear`, :meth:`replace_rows`, and
:meth:`copy`, so a compiled plan that probes a declared index never pays
a surprise full rebuild after the relation is reset or rolled back.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.errors import MaintenanceError, SchemaError

#: A database tuple.  Values are arbitrary hashable Python objects.
Row = Tuple[object, ...]


class CountedRelation:
    """A multiset of rows with signed multiplicities.

    The public mutators are :meth:`add` (⊎ of a single row),
    :meth:`merge` (⊎ of a whole relation), and :meth:`clear`; all keep
    the no-zero-counts invariant and all secondary indexes up to date.
    """

    __slots__ = (
        "name", "arity", "_rows", "_indexes", "_declared",
        "_pending", "_versions",
    )

    def __init__(
        self,
        name: str = "",
        arity: Optional[int] = None,
        rows: Optional[Iterable[Tuple[Row, int]]] = None,
    ) -> None:
        self.name = name
        self.arity = arity
        self._rows: Dict[Row, int] = {}
        # positions → {key values → set of rows}; maintained incrementally.
        self._indexes: Dict[Tuple[int, ...], Dict[Row, set]] = {}
        # Declared index key specs: re-registered across clear/replace/copy.
        self._declared: Set[Tuple[int, ...]] = set()
        # MVCC hooks (repro.storage.mvcc).  While an epoch is open,
        # ``_pending`` maps each row touched so far to its pre-image
        # count; ``None`` means no epoch is recording.  ``_versions`` is
        # the committed backward-delta chain: ``(epoch, pre_images)``
        # entries, oldest first.  Pre-images are recorded *before* the
        # mutation they shadow — concurrent snapshot readers rely on
        # that ordering for torn-read freedom.
        self._pending: Optional[Dict[Row, int]] = None
        self._versions: list = []
        if rows is not None:
            for row, count in rows:
                self.add(row, count)

    # ------------------------------------------------------------ basic ops

    def add(self, row: Row, count: int = 1) -> int:
        """⊎ a single row: returns the row's new count (0 if removed)."""
        if count == 0:
            return self._rows.get(row, 0)
        if self.arity is not None and len(row) != self.arity:
            raise SchemaError(
                f"relation {self.name or '<anon>'} has arity {self.arity}; "
                f"got row of length {len(row)}: {row!r}"
            )
        old = self._rows.get(row, 0)
        pending = self._pending
        if pending is not None and row not in pending:
            pending[row] = old
        new = old + count
        if new == 0:
            del self._rows[row]
            if old != 0:
                self._index_remove(row)
        else:
            self._rows[row] = new
            if old == 0:
                self._index_insert(row)
        return new

    def discard(self, row: Row) -> int:
        """Remove a row entirely regardless of count; returns the old count."""
        old = self._rows.get(row, 0)
        if old == 0:
            return 0
        pending = self._pending
        if pending is not None and row not in pending:
            pending[row] = old
        del self._rows[row]
        self._index_remove(row)
        return old

    def set_count(self, row: Row, count: int) -> None:
        """Force a row's count (0 removes the row)."""
        self.add(row, count - self._rows.get(row, 0))

    def merge(self, other: "CountedRelation | Mapping[Row, int]") -> None:
        """In-place ⊎ with another counted relation (Section 3)."""
        items = other.items() if isinstance(other, CountedRelation) else other.items()
        for row, count in items:
            self.add(row, count)

    def merged(self, other: "CountedRelation") -> "CountedRelation":
        """Pure ⊎: a fresh relation equal to ``self ⊎ other``."""
        result = self.copy()
        result.merge(other)
        return result

    def clear(self) -> None:
        """Remove every row; all registered index key specs stay live.

        Built indexes are emptied, not dropped, and declared specs are
        re-registered, so cached plans probing them after a clear pay no
        full rebuild — the (empty) indexes are simply maintained forward.
        """
        pending = self._pending
        if pending is not None:
            for row, count in self._rows.items():
                if row not in pending:
                    pending[row] = count
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()
        for positions in self._declared:
            self._indexes.setdefault(positions, {})

    def copy(self, name: Optional[str] = None) -> "CountedRelation":
        """A deep copy (indexes are not copied; they rebuild lazily).

        Declared index key specs carry over, so the clone rebuilds them
        once on first probe and maintains them incrementally after that.
        """
        clone = CountedRelation(name if name is not None else self.name, self.arity)
        clone._rows = dict(self._rows)
        clone._declared = set(self._declared)
        return clone

    def replace_rows(self, rows: Mapping[Row, int]) -> None:
        """Replace the whole row store in place (rollback/repair hook).

        Keeps this object's identity — references held elsewhere stay
        valid — while the contents become exactly ``rows``.  Ad-hoc
        indexes are dropped (they rebuild lazily); declared index key
        specs are rebuilt immediately so cached plans keep their
        always-on indexes through rollback and repair.
        """
        pending = self._pending
        if pending is not None:
            for row, count in self._rows.items():
                if count != rows.get(row, 0) and row not in pending:
                    pending[row] = count
            for row, count in rows.items():
                if count != 0 and row not in self._rows and row not in pending:
                    pending[row] = 0
        self._rows = dict(rows)
        self._indexes = {}
        for positions in self._declared:
            self.ensure_index(positions)

    # ----------------------------------------------------------- inspection

    def count(self, row: Row) -> int:
        """The stored count of ``row`` (0 when absent)."""
        return self._rows.get(row, 0)

    def __contains__(self, row: Row) -> bool:
        return self._rows.get(row, 0) != 0

    def contains_positive(self, row: Row) -> bool:
        """Set-semantics membership: present with a positive count."""
        return self._rows.get(row, 0) > 0

    def __len__(self) -> int:
        """Number of *distinct* rows."""
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def items(self) -> Iterator[Tuple[Row, int]]:
        """Iterate ``(row, count)`` pairs.

        Snapshots the backing dict so callers may mutate while iterating
        (the maintenance algorithms interleave reads and ⊎ updates).
        """
        return iter(list(self._rows.items()))

    def rows(self) -> Iterator[Row]:
        """Iterate distinct rows (snapshot, like :meth:`items`)."""
        return iter(list(self._rows.keys()))

    def positive_items(self) -> Iterator[Tuple[Row, int]]:
        """``(row, count)`` pairs with positive counts (the insertions)."""
        return iter([(r, c) for r, c in self._rows.items() if c > 0])

    def negative_items(self) -> Iterator[Tuple[Row, int]]:
        """``(row, count)`` pairs with negative counts (the deletions)."""
        return iter([(r, c) for r, c in self._rows.items() if c < 0])

    def total_count(self) -> int:
        """Sum of all counts — the duplicate-semantics cardinality."""
        return sum(self._rows.values())

    def to_dict(self) -> Dict[Row, int]:
        """A plain dict snapshot ``{row: count}``."""
        return dict(self._rows)

    def as_set(self) -> frozenset:
        """The set projection: rows with positive counts."""
        return frozenset(r for r, c in self._rows.items() if c > 0)

    # ------------------------------------------------- set-semantics helpers

    def set_view(self, name: str = "") -> "CountedRelation":
        """A copy with every positive count normalized to 1.

        This is the ``set(P)`` of Algorithm 4.1 statement (2) and the
        Section 5.1 convention that lower-stratum tuples count as 1.
        """
        view = CountedRelation(name or self.name, self.arity)
        for row, count in self._rows.items():
            if count > 0:
                view._rows[row] = 1
        return view

    def set_difference_delta(self, old: "CountedRelation") -> "CountedRelation":
        """``set(self) − set(old)`` as a signed delta (statement (2)).

        Rows appearing (count became positive) get +1; rows disappearing
        get −1; rows present on both sides are dropped even if their
        counts differ — that is the whole point of the optimization.
        """
        delta = CountedRelation(f"Δset({self.name})", self.arity)
        for row, count in self._rows.items():
            if count > 0 and not old.contains_positive(row):
                delta._rows[row] = 1
        for row, count in old._rows.items():
            if count > 0 and not self.contains_positive(row):
                delta._rows[row] = -1
        return delta

    def assert_nonnegative(self) -> None:
        """Check the Lemma 4.1 invariant for stored materializations."""
        for row, count in self._rows.items():
            if count < 0:
                raise MaintenanceError(
                    f"stored relation {self.name or '<anon>'} holds row "
                    f"{row!r} with negative count {count} — more deletions "
                    f"were applied than derivations exist"
                )

    # -------------------------------------------------------------- indexes

    def declare_index(self, positions: Tuple[int, ...]) -> None:
        """Register ``positions`` as an always-on index key spec.

        The index is built now (if absent) and maintained incrementally
        on every mutation, like any other; unlike lazily-created
        indexes it is re-registered by :meth:`clear`,
        :meth:`replace_rows`, and :meth:`copy`.  Compiled plans declare
        the specs they probe so repeated maintenance passes never pay a
        full rebuild.
        """
        if not positions:
            return
        self._declared.add(tuple(positions))
        self.ensure_index(tuple(positions))

    def declared_indexes(self) -> Tuple[Tuple[int, ...], ...]:
        """The declared index key specs, sorted (introspection/tests)."""
        return tuple(sorted(self._declared))

    def ensure_index(self, positions: Tuple[int, ...]) -> Dict[Row, set]:
        """Build (once) and return the hash index on ``positions``.

        The index maps a key (the row values at ``positions``) to the set
        of rows carrying that key.  Subsequent mutations keep it current.
        """
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row in self._rows:
                key = tuple(row[p] for p in positions)
                index.setdefault(key, set()).add(row)
            self._indexes[positions] = index
        return index

    def lookup(self, positions: Tuple[int, ...], key: Row) -> Iterable[Row]:
        """Rows whose values at ``positions`` equal ``key`` (via index)."""
        if not positions:
            return self.rows()
        index = self.ensure_index(positions)
        return tuple(index.get(key, ()))

    def _index_insert(self, row: Row) -> None:
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            index.setdefault(key, set()).add(row)

    def _index_remove(self, row: Row) -> None:
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]

    # ------------------------------------------------------------- equality

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CountedRelation):
            return self._rows == other._rows
        if isinstance(other, dict):
            return self._rows == other
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("CountedRelation is mutable and unhashable")

    def __repr__(self) -> str:
        label = self.name or "relation"
        preview = ", ".join(
            f"{row}:{count}" for row, count in sorted(self._rows.items())[:8]
        )
        suffix = ", ..." if len(self._rows) > 8 else ""
        return f"<{label} |{len(self._rows)}| {{{preview}{suffix}}}>"


def relation_from_rows(
    name: str, rows: Iterable[Row], arity: Optional[int] = None
) -> CountedRelation:
    """Build a counted relation from plain rows, each with count 1.

    Duplicate rows accumulate counts — handy for bag-semantics fixtures.
    """
    relation = CountedRelation(name, arity)
    for row in rows:
        relation.add(tuple(row), 1)
    return relation
