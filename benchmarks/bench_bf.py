"""B/F vs DRed benchmark → BENCH_bf.json.

Measures the Backward/Forward strategy (Hu, Motik & Horrocks;
ROADMAP O1) on the workload class it exists for — graphs *dense in
alternative derivations*, where DRed's deletion overestimate floods the
downstream cone and B/F's backward check stops the propagation at
distance one — and guards against regressions on the sparse workloads
DRed already handles well.  Four workloads:

* ``dense-layered`` — transitive closure over a complete-bipartite
  layer stack (:func:`repro.workloads.dense_layers`: every tc pair
  spanning *k* layers has ``width**(k-1)`` derivations), a stream of
  single-edge delete/reinsert passes through the middle layer.
  **Gated**: bf must be ≥ :data:`DENSE_SPEEDUP_GATE` × faster than
  DRed here (ISSUE 7 acceptance).
* ``dense-grid`` — the same stream shape over the right/down grid
  (many, but not maximal, alternative paths).  Informational.
* ``e6-regression`` / ``e7-regression`` — the *exact* workloads of the
  existing DRed benchmarks (``bench_e6_dred_vs_recompute``'s sparse
  250-node deletion batch, ``bench_e7_dred_vs_pf``'s 80-node mixed
  batch), one cold apply per round.  **Gated**: bf may be at most
  :data:`REGRESSION_BUDGET` slower than DRed on each.

Every head-to-head run also cross-checks that bf and DRed leave
identical views (a mini differential oracle inside the bench).

Run standalone (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_bf.py
    PYTHONPATH=src python benchmarks/bench_bf.py --smoke

Emits ``BENCH_bf.json`` (repo root by default, ``--out`` to move it)
with per-workload timings, the speedup ratios, the gates, and the
targeting counters (B/F candidates/waves/check ratio vs DRed's
overestimate) that explain *why* the dense numbers look the way they
do.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from helpers import TC_SRC, database_with  # noqa: E402

from repro.bench.harness import write_bench_json  # noqa: E402
from repro.core.maintenance import ViewMaintainer  # noqa: E402
from repro.obs import get_default_registry  # noqa: E402
from repro.storage.changeset import Changeset  # noqa: E402
from repro.workloads import (  # noqa: E402
    dense_layers,
    grid,
    mixed_batch,
    random_graph,
)

#: ISSUE 7 acceptance: bf ≥ 5× over DRed on the dense workload.
DENSE_SPEEDUP_GATE = 5.0

#: ISSUE 7 acceptance: < 10% regression on the existing E6/E7 workloads.
REGRESSION_BUDGET = 0.10


def delete_reinsert_stream(edges: List[tuple]) -> List[Changeset]:
    """Delete each edge then put it back — 2 passes per edge.

    Every deletion pass exercises the delete phase against a fully
    dense view; every reinsertion restores it, so passes stay
    independent and the stream is replayable.
    """
    stream: List[Changeset] = []
    for edge in edges:
        stream.append(Changeset().delete("link", edge))
        stream.append(Changeset().insert("link", edge))
    return stream


def run_stream(
    strategy: str, edges: List[tuple], stream: List[Changeset]
) -> Tuple[float, frozenset, Dict[str, float]]:
    """One fresh maintainer through the stream: seconds, view, counters."""
    maintainer = ViewMaintainer.from_source(
        TC_SRC, database_with(edges), strategy=strategy
    ).initialize()
    counters = {
        "candidates": 0.0,
        "waves": 0.0,
        "verified": 0.0,
        "overestimated": 0.0,
        "rederived": 0.0,
    }
    started = time.perf_counter()
    for changes in stream:
        report = maintainer.apply(changes.copy())
        inner = report.bf or report.dred
        if inner is not None:
            for key in counters:
                counters[key] += getattr(inner.stats, key, 0)
    seconds = time.perf_counter() - started
    return seconds, frozenset(maintainer.relation("tc").as_set()), counters


def head_to_head(
    name: str,
    edges: List[tuple],
    stream: List[Changeset],
    runs: int,
    speedup_gate: Optional[float] = None,
    regression_budget: Optional[float] = None,
) -> Dict:
    """Best-of-``runs`` bf vs dred on one workload, views cross-checked."""
    bf_seconds = dred_seconds = float("inf")
    bf_counters: Dict[str, float] = {}
    dred_counters: Dict[str, float] = {}
    for _ in range(runs):
        seconds, bf_view, bf_counters = run_stream("bf", edges, stream)
        bf_seconds = min(bf_seconds, seconds)
        seconds, dred_view, dred_counters = run_stream(
            "dred", edges, stream
        )
        dred_seconds = min(dred_seconds, seconds)
        assert bf_view == dred_view, f"{name}: bf and dred views diverged"
    ratio = bf_seconds / dred_seconds if dred_seconds else 0.0
    speedup = dred_seconds / bf_seconds if bf_seconds else 0.0
    result = {
        "workload": name,
        "edges": len(edges),
        "passes": len(stream),
        "runs": runs,
        "bf_seconds": bf_seconds,
        "dred_seconds": dred_seconds,
        "speedup": speedup,
        "ratio": ratio,
        "bf_candidates": bf_counters.get("candidates", 0),
        "bf_verified": bf_counters.get("verified", 0),
        "bf_waves": bf_counters.get("waves", 0),
        "dred_overestimated": dred_counters.get("overestimated", 0),
        "dred_rederived": dred_counters.get("rederived", 0),
    }
    if speedup_gate is not None:
        result["speedup_gate"] = speedup_gate
        result["within_gate"] = speedup >= speedup_gate
    if regression_budget is not None:
        result["regression_budget"] = regression_budget
        result["within_gate"] = ratio <= 1.0 + regression_budget
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="B/F vs DRed benchmark")
    parser.add_argument("--layers", type=int, default=6,
                        help="dense-layered stack depth (default 6)")
    parser.add_argument("--width", type=int, default=8,
                        help="dense-layered layer width (default 8)")
    parser.add_argument("--grid", type=int, default=8,
                        help="dense-grid side length (default 8)")
    parser.add_argument("--runs", type=int, default=5,
                        help="best-of repetitions per configuration")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root/"
                        "BENCH_bf.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="toy scale: small fixtures, 1 run (CI smoke "
                        "test; gates are recorded but not enforced)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.layers, args.width, args.grid, args.runs = 4, 4, 5, 1

    out = args.out or os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_bf.json",
    )

    # Dense fixtures: delete/reinsert edges out of the middle layer —
    # the spot with the most alternative derivations flowing through.
    layered_edges = dense_layers(args.layers, args.width)
    mid = args.layers // 2
    layered_stream = delete_reinsert_stream([
        (mid * args.width + k,
         (mid + 1) * args.width + (k + 1) % args.width)
        for k in range(min(6, args.width))
    ])
    grid_edges = grid(args.grid, args.grid)
    grid_stream = delete_reinsert_stream([
        ((k, 3 % args.grid), (k, 4 % args.grid))
        for k in range(min(4, args.grid - 1))
    ])

    # Regression fixtures: byte-identical to the existing DRed benches.
    e6_edges = random_graph(250, 320, seed=61)
    e6_stream = [
        mixed_batch("link", e6_edges, 2, 0, node_count=250, seed=63)[0]
    ]
    e7_edges = random_graph(80, 240, seed=71)
    e7_stream = [
        mixed_batch("link", e7_edges, 8, 8, node_count=80, seed=72)[0]
    ]

    workloads = [
        head_to_head(
            "dense-layered", layered_edges, layered_stream, args.runs,
            speedup_gate=DENSE_SPEEDUP_GATE,
        ),
        head_to_head("dense-grid", grid_edges, grid_stream, args.runs),
        head_to_head(
            "e6-regression", e6_edges, e6_stream, args.runs,
            regression_budget=REGRESSION_BUDGET,
        ),
        head_to_head(
            "e7-regression", e7_edges, e7_stream, args.runs,
            regression_budget=REGRESSION_BUDGET,
        ),
    ]

    payload = {
        "benchmark": "bf",
        "schema_version": 1,
        "config": {
            "layers": args.layers,
            "width": args.width,
            "grid": args.grid,
            "runs": args.runs,
            "smoke": args.smoke,
        },
        "workloads": workloads,
    }
    write_bench_json(
        out,
        payload,
        telemetry={"metrics": get_default_registry().snapshot()},
    )

    failed = False
    for workload in workloads:
        name = workload["workload"]
        line = (
            f"{name:16s} bf {workload['bf_seconds']:.3f}s  "
            f"dred {workload['dred_seconds']:.3f}s  "
            f"speedup ×{workload['speedup']:.2f}"
        )
        if "speedup_gate" in workload:
            line += (
                f"  (gate ≥{workload['speedup_gate']:.0f}×: "
                f"{'ok' if workload['within_gate'] else 'FAIL'})"
            )
        if "regression_budget" in workload:
            line += (
                f"  (budget ≤+{workload['regression_budget']:.0%}: "
                f"{'ok' if workload['within_gate'] else 'FAIL'})"
            )
        if workload["dred_overestimated"]:
            line += (
                f"  [bf candidates {workload['bf_candidates']:.0f} vs "
                f"dred overestimate "
                f"{workload['dred_overestimated']:.0f}]"
            )
        print(line)
        if not workload.get("within_gate", True) and not args.smoke:
            failed = True
            print(f"FAIL: {name} missed its gate", file=sys.stderr)
    print(f"wrote {out}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
