"""E9 — counting under SQL duplicate (bag) semantics (§5).

Bag-semantics views over base relations holding multiplicities: the ⊎
operator maps to bag union/difference, and counting maintains the exact
multiplicities far faster than recomputation.
"""

import pytest

from helpers import HOP_SRC
from repro.baselines.recompute import RecomputeMaintainer
from repro.core.maintenance import ViewMaintainer
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.workloads import random_graph

EDGES = random_graph(150, 700, seed=91)
MULTIPLICITY = 3

CHANGES = Changeset()
for _edge in EDGES[:8]:
    CHANGES.delete("link", _edge, MULTIPLICITY)
for _i in range(8):
    CHANGES.insert("link", (1000 + _i, _i), MULTIPLICITY)


def _bag_database() -> Database:
    db = Database()
    for edge in EDGES:
        db.insert("link", edge, MULTIPLICITY)
    return db


@pytest.mark.benchmark(group="e9-bag-semantics")
def test_counting_duplicate_semantics(benchmark):
    def setup():
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, _bag_database(), semantics="duplicate"
        ).initialize()
        return (maintainer,), {}

    benchmark.pedantic(
        lambda m: m.apply(CHANGES.copy()), setup=setup, rounds=5
    )


@pytest.mark.benchmark(group="e9-bag-semantics")
def test_recompute_duplicate_semantics(benchmark):
    def setup():
        maintainer = RecomputeMaintainer.from_source(
            HOP_SRC, _bag_database(), semantics="duplicate"
        ).initialize()
        return (maintainer,), {}

    benchmark.pedantic(
        lambda m: m.apply(CHANGES.copy()), setup=setup, rounds=3
    )
