"""E11 — counting on recursive views ([GKM92], §8).

On acyclic data the counted fixpoint converges and incremental
maintenance is cheap and exact; the divergence guard's cost on cyclic
data is bounded by its round limit.  Compared against DRed on the same
acyclic maintenance.
"""

import pytest

from helpers import TC_SRC, database_with
from repro.core.maintenance import ViewMaintainer
from repro.core.recursive_counting import RecursiveCountingView
from repro.datalog.parser import parse_program
from repro.errors import DivergenceError
from repro.storage.changeset import Changeset
from repro.workloads import cycle, layered_dag

DAG = layered_dag(7, 9, 3, seed=111)
CHANGES = (
    Changeset()
    .delete("link", DAG[0])
    .delete("link", DAG[1])
    .insert("link", ((0, 0), (6, 8)))
)


@pytest.mark.benchmark(group="e11-acyclic-maintenance")
def test_recursive_counting_maintenance(benchmark):
    def setup():
        view = RecursiveCountingView(
            parse_program(TC_SRC), database_with(DAG)
        ).initialize()
        return (view,), {}

    benchmark.pedantic(
        lambda v: v.apply(CHANGES.copy()), setup=setup, rounds=5
    )


@pytest.mark.benchmark(group="e11-acyclic-maintenance")
def test_dred_same_maintenance(benchmark):
    def setup():
        maintainer = ViewMaintainer.from_source(
            TC_SRC, database_with(DAG), strategy="dred"
        ).initialize()
        return (maintainer,), {}

    benchmark.pedantic(
        lambda m: m.apply(CHANGES.copy()), setup=setup, rounds=5
    )


@pytest.mark.benchmark(group="e11-divergence-guard")
def test_divergence_guard_cost(benchmark):
    """Cost of detecting a non-terminating counting run (bounded rounds)."""

    def run():
        view = RecursiveCountingView(
            parse_program(TC_SRC), database_with(cycle(8)), max_rounds=64
        )
        try:
            view.initialize()
        except DivergenceError:
            return True
        raise AssertionError("expected divergence on cyclic data")

    benchmark.pedantic(run, rounds=3)
