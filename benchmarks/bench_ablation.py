"""Ablations of the reproduction's own design choices.

* ``ablation-delta-mode`` — the two equivalent delta-rule evaluation
  strategies: the paper's literal factored form (materializes ν-states,
  Algorithm 4.1 verbatim) vs the bilinear expansion (old states only).
  Expansion should win: it never copies relations.

* ``ablation-seed-order`` — Section 6.1's join-order remark: "the
  Δ-subgoal is usually the most restrictive subgoal in the rule and
  would be used first in the join order."  Evaluates the same delta rule
  with the Δ-subgoal pinned first vs. planned without the pin (the
  size-aware planner usually recovers, so the gap measures planner
  quality too).
"""

import pytest

from helpers import HOP_SRC, apply_changes, counting_setup, database_with
from repro.core import names
from repro.datalog.parser import parse_rule
from repro.eval.rule_eval import EvalContext, Resolver, evaluate_rule
from repro.storage.relation import CountedRelation
from repro.workloads import mixed_batch, random_graph

EDGES = random_graph(220, 1000, seed=131)
CHANGES, _ = mixed_batch("link", EDGES, 5, 5, node_count=220, seed=132)


@pytest.mark.benchmark(group="ablation-delta-mode")
def test_expansion_mode(benchmark):
    benchmark.pedantic(
        apply_changes,
        setup=counting_setup(
            HOP_SRC, EDGES, CHANGES, counting_mode="expansion"
        ),
        rounds=5,
    )


@pytest.mark.benchmark(group="ablation-delta-mode")
def test_factored_mode(benchmark):
    benchmark.pedantic(
        apply_changes,
        setup=counting_setup(
            HOP_SRC, EDGES, CHANGES, counting_mode="factored"
        ),
        rounds=5,
    )


def _delta_rule_fixture():
    """A Δ-rule over a large link relation with a tiny delta."""
    link = CountedRelation("link", 2)
    for edge in EDGES:
        link.add(edge, 1)
    delta = CountedRelation(names.delta("link"), 2)
    for row, count in CHANGES.delta("link").items():
        delta.add(row, count)
    rule = parse_rule("delta_hop(X, Y) :- deltalink(X, Z), link(Z, Y).")
    resolver = Resolver(None, {"link": link, "deltalink": delta})
    return rule, resolver


@pytest.mark.benchmark(group="ablation-seed-order")
def test_delta_subgoal_pinned_first(benchmark):
    rule, resolver = _delta_rule_fixture()

    def run():
        return evaluate_rule(rule, EvalContext(resolver), seed=0)

    benchmark(run)


@pytest.mark.benchmark(group="ablation-seed-order")
def test_delta_subgoal_planner_chosen(benchmark):
    rule, resolver = _delta_rule_fixture()

    def run():
        return evaluate_rule(rule, EvalContext(resolver))

    benchmark(run)


@pytest.mark.benchmark(group="ablation-seed-order")
def test_delta_subgoal_forced_last(benchmark):
    """Worst case: scan the big relation first, probe the delta second."""
    rule, resolver = _delta_rule_fixture()

    def run():
        return evaluate_rule(rule, EvalContext(resolver), seed=1)

    benchmark(run)
