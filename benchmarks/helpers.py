"""Shared builders for the benchmark files (one file per experiment).

Benchmarks measure the *apply* step only; maintainer construction and
materialization happen in ``benchmark.pedantic`` setup callables, which
pytest-benchmark excludes from timing.  All inputs are seeded, so every
run replays identical workloads.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.baselines.recompute import RecomputeMaintainer
from repro.core.maintenance import ViewMaintainer
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.workloads import mixed_batch, random_graph

HOP_SRC = """
hop(X, Y) :- link(X, Z), link(Z, Y).
tri_hop(X, Y) :- hop(X, Z), link(Z, Y).
"""

TC_SRC = """
tc(X, Y) :- link(X, Y).
tc(X, Y) :- tc(X, Z), link(Z, Y).
"""


def database_with(edges, relation: str = "link") -> Database:
    db = Database()
    db.insert_rows(relation, edges)
    return db


def hop_workload(
    nodes: int = 200,
    n_edges: int = 900,
    deletions: int = 4,
    insertions: int = 4,
    seed: int = 1,
) -> Tuple[list, Changeset]:
    """A hop/tri_hop graph plus one mixed update batch."""
    edges = random_graph(nodes, n_edges, seed=seed)
    changes, _ = mixed_batch(
        "link", edges, deletions, insertions, node_count=nodes, seed=seed + 1
    )
    return edges, changes


def tc_workload(
    nodes: int = 200,
    n_edges: int = 280,
    deletions: int = 2,
    insertions: int = 4,
    seed: int = 2,
) -> Tuple[list, Changeset]:
    """A sparse TC graph plus one mixed update batch."""
    edges = random_graph(nodes, n_edges, seed=seed)
    changes, _ = mixed_batch(
        "link", edges, deletions, insertions, node_count=nodes, seed=seed + 1
    )
    return edges, changes


def counting_setup(
    source: str, edges, changes: Changeset, **kwargs
) -> Callable:
    """Setup callable: fresh counting/DRed maintainer + changeset copy."""

    def setup():
        maintainer = ViewMaintainer.from_source(
            source, database_with(edges), **kwargs
        ).initialize()
        return (maintainer, changes.copy()), {}

    return setup


def recompute_setup(source: str, edges, changes: Changeset, **kwargs) -> Callable:
    def setup():
        maintainer = RecomputeMaintainer.from_source(
            source, database_with(edges), **kwargs
        ).initialize()
        return (maintainer, changes.copy()), {}

    return setup


def apply_changes(maintainer, changes) -> None:
    maintainer.apply(changes)
