"""E8 — DRed with stratified negation and aggregation over recursion.

The capability the paper claims first: recursive bounded-cost paths,
their complement via negation, and a MIN-cost aggregate, all maintained
in one pass.  Compared against recomputation on the same changes.
"""

import pytest

from helpers import database_with
from repro.baselines.recompute import RecomputeMaintainer
from repro.core.maintenance import ViewMaintainer
from repro.workloads import mixed_batch, random_graph, with_costs

SOURCE = """
path(X, Y, C) :- link(X, Y, C).
path(X, Y, C1 + C2) :- path(X, Z, C1), link(Z, Y, C2), C1 + C2 < 30.
reach(X, Y) :- path(X, Y, C).
node(X) :- link(X, Y, C).
node(Y) :- link(X, Y, C).
unreachable(X, Y) :- node(X), node(Y), not reach(X, Y).
min_cost(X, Y, M) :- GROUPBY(path(X, Y, C), [X, Y], M = MIN(C)).
"""

EDGES = with_costs(random_graph(50, 140, seed=81), 1, 9, seed=81)
CHANGES, _ = mixed_batch(
    "link", EDGES, 1, 2, node_count=50, seed=82, cost_range=(1, 9)
)


@pytest.mark.benchmark(group="e8-negation-aggregation")
def test_dred_negation_aggregation(benchmark):
    def setup():
        maintainer = ViewMaintainer.from_source(
            SOURCE, database_with(EDGES), strategy="dred"
        ).initialize()
        return (maintainer,), {}

    def run(maintainer):
        maintainer.apply(CHANGES.copy())
        maintainer.consistency_check()

    benchmark.pedantic(run, setup=setup, rounds=3)


@pytest.mark.benchmark(group="e8-negation-aggregation")
def test_recompute_negation_aggregation(benchmark):
    def setup():
        maintainer = RecomputeMaintainer.from_source(
            SOURCE, database_with(EDGES)
        ).initialize()
        return (maintainer,), {}

    benchmark.pedantic(
        lambda m: m.apply(CHANGES.copy()), setup=setup, rounds=3
    )
