"""E12 — Algorithm 6.1 across the aggregate-function taxonomy (§6.2).

Insert batches are incrementally computable for every function; deleting
group extrema forces MIN onto the recompute-from-group fallback — the
[DAJ91] distinction the paper builds on.
"""

import pytest

from helpers import database_with
from repro.core.maintenance import ViewMaintainer
from repro.storage.changeset import Changeset
from repro.workloads import random_graph, with_costs

EDGES = with_costs(random_graph(80, 600, seed=121), 1, 100, seed=121)

INSERTS = Changeset()
for _i in range(60):
    INSERTS.insert("link", (_i % 80, 900 + _i, 50))

_cheapest = {}
for _row in EDGES:
    if _row[0] not in _cheapest or _row[2] < _cheapest[_row[0]][2]:
        _cheapest[_row[0]] = _row
EXTREMUM_DELETES = Changeset()
for _row in list(_cheapest.values())[:40]:
    EXTREMUM_DELETES.delete("link", _row)


def _setup(function):
    source = (
        f"agg_view(S, M) :- GROUPBY(link(S, D, C), [S], M = {function}(C))."
    )

    def setup():
        maintainer = ViewMaintainer.from_source(
            source, database_with(EDGES)
        ).initialize()
        return (maintainer,), {}

    return setup


@pytest.mark.benchmark(group="e12-inserts")
@pytest.mark.parametrize("function", ["SUM", "COUNT", "AVG", "MIN", "MAX"])
def test_aggregate_inserts(benchmark, function):
    benchmark.pedantic(
        lambda m: m.apply(INSERTS.copy()), setup=_setup(function), rounds=5
    )


@pytest.mark.benchmark(group="e12-extremum-deletes")
@pytest.mark.parametrize("function", ["SUM", "MIN", "MAX"])
def test_aggregate_extremum_deletes(benchmark, function):
    benchmark.pedantic(
        lambda m: m.apply(EXTREMUM_DELETES.copy()),
        setup=_setup(function),
        rounds=5,
    )
