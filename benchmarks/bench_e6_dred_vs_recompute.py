"""E6 — DRed vs recomputation for recursive views (§7).

Transitive closure over a sparse graph.  Groups: insert-only batches
(DRed ≈ semi-naive, big win), small delete batches (win depends on how
local the damage is), and recomputation as the common baseline.
"""

import pytest

from helpers import (
    TC_SRC,
    apply_changes,
    counting_setup,
    recompute_setup,
)
from repro.storage.changeset import Changeset
from repro.workloads import layered_dag, mixed_batch, random_graph

SPARSE = random_graph(250, 320, seed=61)
DAG = layered_dag(8, 10, 2, seed=61)

INSERTS, _ = mixed_batch("link", SPARSE, 0, 10, node_count=250, seed=62)
DELETES, _ = mixed_batch("link", SPARSE, 2, 0, node_count=250, seed=63)
DAG_MIXED, _ = mixed_batch("link", DAG, 2, 4, node_count=8, seed=64)


@pytest.mark.benchmark(group="e6-inserts")
def test_dred_inserts(benchmark):
    benchmark.pedantic(
        apply_changes,
        setup=counting_setup(TC_SRC, SPARSE, INSERTS, strategy="dred"),
        rounds=5,
    )


@pytest.mark.benchmark(group="e6-inserts")
def test_recompute_inserts(benchmark):
    benchmark.pedantic(
        apply_changes, setup=recompute_setup(TC_SRC, SPARSE, INSERTS), rounds=5
    )


@pytest.mark.benchmark(group="e6-deletes")
def test_dred_deletes(benchmark):
    benchmark.pedantic(
        apply_changes,
        setup=counting_setup(TC_SRC, SPARSE, DELETES, strategy="dred"),
        rounds=5,
    )


@pytest.mark.benchmark(group="e6-deletes")
def test_recompute_deletes(benchmark):
    benchmark.pedantic(
        apply_changes, setup=recompute_setup(TC_SRC, SPARSE, DELETES), rounds=5
    )


@pytest.mark.benchmark(group="e6-dag-mixed")
def test_dred_dag_mixed(benchmark):
    benchmark.pedantic(
        apply_changes,
        setup=counting_setup(TC_SRC, DAG, DAG_MIXED, strategy="dred"),
        rounds=5,
    )


@pytest.mark.benchmark(group="e6-dag-mixed")
def test_recompute_dag_mixed(benchmark):
    benchmark.pedantic(
        apply_changes, setup=recompute_setup(TC_SRC, DAG, DAG_MIXED), rounds=5
    )
