"""E4 — derivation-count tracking costs (almost) nothing (§5).

Group ``e4-evaluation`` compares materializing hop/tri_hop *with* count
tracking (the Section 5.1 scheme) against a duplicate-eliminating
evaluation without counts: the two should be within a small factor.
"""

import pytest

from helpers import HOP_SRC, database_with
from repro.datalog.parser import parse_program
from repro.eval.rule_eval import Resolver
from repro.eval.seminaive import seminaive
from repro.eval.stratified import materialize
from repro.storage.relation import CountedRelation
from repro.workloads import random_graph

PROGRAM = parse_program(HOP_SRC)
EDGES = random_graph(220, 1100, seed=41)


@pytest.mark.benchmark(group="e4-evaluation")
def test_evaluate_with_counts(benchmark):
    db = database_with(EDGES)
    benchmark(lambda: materialize(PROGRAM, db, "set"))


@pytest.mark.benchmark(group="e4-evaluation")
def test_evaluate_without_counts(benchmark):
    db = database_with(EDGES)

    def dedup_eval():
        targets = {
            name: CountedRelation(name, 2) for name in ("hop", "tri_hop")
        }
        seminaive(list(PROGRAM.rules), targets, Resolver(db))
        return targets

    benchmark(dedup_eval)


@pytest.mark.benchmark(group="e4-duplicate-semantics")
def test_evaluate_duplicate_semantics(benchmark):
    """Full bag-semantics counts across strata (the SQL systems' case)."""
    db = database_with(EDGES)
    benchmark(lambda: materialize(PROGRAM, db, "duplicate"))
