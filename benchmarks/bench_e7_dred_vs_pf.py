"""E7 — DRed vs the Propagation/Filtration baseline [HD92] (§2).

Same transitive-closure workload through both maintainers: PF fragments
the batch and pays a rederivation pass per fragment, DRed batches all
changes stratum by stratum.
"""

import pytest

from helpers import TC_SRC, database_with
from repro.baselines.pf import PFMaintainer
from repro.core.maintenance import ViewMaintainer
from repro.workloads import mixed_batch, random_graph

EDGES = random_graph(80, 240, seed=71)
CHANGES, _ = mixed_batch("link", EDGES, 8, 8, node_count=80, seed=72)


@pytest.mark.benchmark(group="e7-dred-vs-pf")
def test_dred_batch(benchmark):
    def setup():
        maintainer = ViewMaintainer.from_source(
            TC_SRC, database_with(EDGES), strategy="dred"
        ).initialize()
        return (maintainer,), {}

    benchmark.pedantic(
        lambda m: m.apply(CHANGES.copy()), setup=setup, rounds=3
    )


@pytest.mark.benchmark(group="e7-dred-vs-pf")
def test_pf_fragmented(benchmark):
    def setup():
        maintainer = PFMaintainer.from_source(
            TC_SRC, database_with(EDGES)
        ).initialize()
        return (maintainer,), {}

    benchmark.pedantic(
        lambda m: m.apply(CHANGES.copy()), setup=setup, rounds=3
    )


@pytest.mark.benchmark(group="e7-dred-vs-pf")
def test_pf_relation_granularity(benchmark):
    """PF fragmenting per base relation instead of per tuple (milder)."""

    def setup():
        maintainer = PFMaintainer.from_source(
            TC_SRC, database_with(EDGES), granularity="relation"
        ).initialize()
        return (maintainer,), {}

    benchmark.pedantic(
        lambda m: m.apply(CHANGES.copy()), setup=setup, rounds=3
    )
