"""Plan-cache and batching benchmark → BENCH_maintenance.json.

Measures the compiled delta-plan cache on the workload it exists for:
*many* maintenance passes with *tiny* changesets (the paper's sweet spot
— maintenance cost should track the size of the change, so per-pass
fixed costs like join planning, delta-rule rewriting, and relevance-
filter compilation dominate).  Three workloads:

* ``counting-small-delta`` — an E1-style chain of twenty nonrecursive
  hop views over a sparse ``link`` graph (deep chains make the per-pass
  fixed costs program-proportional), a stream of tiny changesets,
  cache on vs. cache off;
* ``dred-small-delta`` — the recursive TC program under DRed, same
  stream shape (DRed rebuilds structurally-equal δ⁻/ρ/δ⁺ rules every
  pass, so the cache's structural keys all hit from pass 2 on);
* ``batched-vs-sequential`` — the same stream applied one changeset at
  a time vs. coalesced through ``apply_many`` in buckets.

Run standalone (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_plan_cache.py
    PYTHONPATH=src python benchmarks/bench_plan_cache.py --passes 50 --smoke

Emits ``BENCH_maintenance.json`` (repo root by default, ``--out`` to
move it) with per-workload timings, the speedup ratios, and the
maintainer's ``MaintenanceStats`` snapshot (plan-cache hit rate, index
probes, per-phase seconds).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from helpers import HOP_SRC, TC_SRC, database_with  # noqa: E402

from repro.bench.harness import write_bench_json  # noqa: E402
from repro.core.maintenance import ViewMaintainer  # noqa: E402
from repro.guard import (  # noqa: E402
    BudgetMeter,
    GuardPolicy,
    MaintenanceBudget,
)
from repro.obs import NullSink, Tracer, get_default_registry  # noqa: E402
from repro.obs.trace import NOOP_SPAN  # noqa: E402
from repro.storage.changeset import Changeset  # noqa: E402
from repro.storage.database import Database  # noqa: E402
from repro.workloads import random_graph, update_sequence  # noqa: E402

#: Hard budget for the span machinery with a no-op sink: the traced run
#: may be at most 5% slower than the tracing-disabled fast path.
TRACING_OVERHEAD_BUDGET = 0.05

#: Hard budget for the guard meter with no limits configured: the
#: default (disabled) meter may cost at most 5% of pass time.
GUARD_OVERHEAD_BUDGET = 0.05

#: Hard budget for MVCC versioning with no snapshots pinned: the
#: single-threaded cost of recording pre-images and publishing epochs
#: may be at most 5% of the MVCC-off runtime on the chain workload.
MVCC_OVERHEAD_BUDGET = 0.05

#: Hard budget for the health layer (SLO engine + profiler) when it is
#: not attached — the default every maintainer ships with: the two
#: per-pass ``is None`` hook checks may cost at most 5% of pass time.
HEALTH_OVERHEAD_BUDGET = 0.05

#: Hard budget for the runtime invariant sanitizer when it is NOT
#: attached — the default: every protocol edge (begin, commit pre/post,
#: maintainer commit tail) is one ``is None`` check, and their summed
#: cost may be at most 5% of pass time.
SANITIZE_OVERHEAD_BUDGET = 0.05


def chain_src(depth: int) -> str:
    """An E1-style chain: ``hop1`` = E1's hop, then ``hop_i`` joins on."""
    lines = ["hop1(X,Y) :- link(X,Z), link(Z,Y)."]
    for level in range(2, depth + 1):
        lines.append(f"hop{level}(X,Y) :- hop{level - 1}(X,Z), link(Z,Y).")
    return "\n".join(lines)


def build_maintainer(
    source: str, edges, plan_cache: bool, strategy: str = "auto"
) -> ViewMaintainer:
    return ViewMaintainer.from_source(
        source,
        database_with(edges),
        strategy=strategy,
        plan_cache=plan_cache,
    ).initialize()


def changeset_stream(
    edges, passes: int, batch_size: int, nodes: int, seed: int
) -> List[Changeset]:
    """A replayable list of tiny mixed batches (same for every config)."""
    return list(
        update_sequence(
            "link",
            edges,
            batches=passes,
            batch_size=batch_size,
            node_count=nodes,
            seed=seed,
        )
    )


def run_stream(maintainer: ViewMaintainer, stream: List[Changeset]) -> float:
    """Apply every changeset one pass at a time; return wall seconds."""
    started = time.perf_counter()
    for changes in stream:
        maintainer.apply(changes.copy())
    return time.perf_counter() - started


def run_batched(
    maintainer: ViewMaintainer, stream: List[Changeset], bucket: int
) -> float:
    """Apply the stream through ``apply_many`` in coalesced buckets."""
    started = time.perf_counter()
    for index in range(0, len(stream), bucket):
        maintainer.apply_many(
            changes.copy() for changes in stream[index:index + bucket]
        )
    return time.perf_counter() - started


def measure(label: str, runs: int, build: Callable[[], float]) -> Dict:
    """Best-of-``runs`` wall time for one configuration."""
    seconds = min(build() for _ in range(runs))
    return {"label": label, "seconds": seconds}


def cache_workload(
    name: str,
    source: str,
    strategy: str,
    nodes: int,
    n_edges: int,
    passes: int,
    batch_size: int,
    runs: int,
    seed: int,
) -> Dict:
    """Cache-on vs cache-off over an identical small-delta stream."""
    edges = random_graph(nodes, n_edges, seed=seed)
    stream = changeset_stream(edges, passes, batch_size, nodes, seed + 1)

    def one(plan_cache: bool) -> float:
        maintainer = build_maintainer(source, edges, plan_cache, strategy)
        return run_stream(maintainer, stream)

    on = measure("cache-on", runs, lambda: one(True))
    off = measure("cache-off", runs, lambda: one(False))

    # One extra instrumented run for the stats snapshot (hit rate etc.).
    maintainer = build_maintainer(source, edges, True, strategy)
    run_stream(maintainer, stream)
    # Warmup = pass 1 (every plan compiles); steady state = the rest.
    warm = ViewMaintainer.from_source(
        source, database_with(edges), strategy=strategy, plan_cache=True
    ).initialize()
    warm.apply(stream[0].copy())
    warm_cache = warm.plan_cache
    warm_hits, warm_misses = warm_cache.hits, warm_cache.misses
    for changes in stream[1:]:
        warm.apply(changes.copy())
    steady_hits = warm_cache.hits - warm_hits
    steady_misses = warm_cache.misses - warm_misses
    steady_total = steady_hits + steady_misses
    return {
        "workload": name,
        "strategy": strategy,
        "nodes": nodes,
        "edges": n_edges,
        "passes": passes,
        "batch_size": batch_size,
        "cache_on_seconds": on["seconds"],
        "cache_off_seconds": off["seconds"],
        "speedup": off["seconds"] / on["seconds"] if on["seconds"] else 0.0,
        "stats": maintainer.stats.to_dict(),
        "post_warmup_hit_rate": (
            steady_hits / steady_total if steady_total else 0.0
        ),
    }


def batching_workload(
    nodes: int,
    n_edges: int,
    passes: int,
    batch_size: int,
    bucket: int,
    runs: int,
    seed: int,
) -> Dict:
    """apply() per changeset vs apply_many() per bucket (cache on)."""
    edges = random_graph(nodes, n_edges, seed=seed)
    stream = changeset_stream(edges, passes, batch_size, nodes, seed + 1)

    sequential = measure(
        "sequential",
        runs,
        lambda: run_stream(build_maintainer(HOP_SRC, edges, True), stream),
    )
    batched = measure(
        "batched",
        runs,
        lambda: run_batched(
            build_maintainer(HOP_SRC, edges, True), stream, bucket
        ),
    )
    return {
        "workload": "batched-vs-sequential",
        "nodes": nodes,
        "edges": n_edges,
        "passes": passes,
        "batch_size": batch_size,
        "bucket": bucket,
        "sequential_seconds": sequential["seconds"],
        "batched_seconds": batched["seconds"],
        "speedup": (
            sequential["seconds"] / batched["seconds"]
            if batched["seconds"]
            else 0.0
        ),
    }


class _CountingStubTracer:
    """A tracing-off stand-in that counts every hook crossing.

    ``enabled`` is False, so the engine treats it exactly like the
    disabled fast path (guarded hot sites skip it entirely); unguarded
    sites call ``span()``/``event()``, which is what this stub counts.
    """

    enabled = False

    def __init__(self) -> None:
        self.calls = 0

    def span(self, *_args, **_attrs):
        self.calls += 1
        return NOOP_SPAN

    def event(self, *_args, **_attrs) -> None:
        self.calls += 1


def _noop_hook_seconds(iterations: int = 200_000) -> float:
    """Measured per-call cost of the worst-case disabled hook."""
    tracer = Tracer()
    started = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("rule", "hop", variants=3, tuples_in=2):
            pass
    return (time.perf_counter() - started) / iterations


def tracing_overhead_workload(
    source: str,
    nodes: int,
    n_edges: int,
    passes: int,
    batch_size: int,
    runs: int,
    seed: int,
) -> Dict:
    """The 5%-budget guard for the tracing-off (no-op) configuration.

    The claim under test: with tracing off — the default every
    maintainer ships with — the telemetry hooks cost < 5% of pass time.
    The guard bounds that cost from above as ``hook crossings × measured
    worst-case no-op hook cost`` (hot sites are guarded and skip the
    hook entirely, so counting every crossing at the unguarded price is
    conservative) and asserts the bound against
    :data:`TRACING_OVERHEAD_BUDGET`.

    ``Tracer(NullSink())`` — the *enabled* span machinery discarding its
    events — is also timed and reported (``machinery_overhead_ratio``)
    so regressions in the enabled path stay visible, but that ratio is
    informational: span construction cost is workload-relative and not
    part of the budget.
    """
    edges = random_graph(nodes, n_edges, seed=seed)
    stream = changeset_stream(edges, passes, batch_size, nodes, seed + 1)

    def one(tracer) -> float:
        maintainer = ViewMaintainer.from_source(
            source,
            database_with(edges),
            strategy="counting",
            plan_cache=True,
            tracer=tracer,
        ).initialize()
        return run_stream(maintainer, stream)

    disabled = measure("tracing-off", runs, lambda: one(Tracer()))
    nullsink = measure(
        "tracing-nullsink", runs, lambda: one(Tracer(NullSink()))
    )
    stub = _CountingStubTracer()
    one(stub)
    hook_seconds = _noop_hook_seconds()
    noop_cost = stub.calls * hook_seconds
    ratio = (
        noop_cost / disabled["seconds"] if disabled["seconds"] else 0.0
    )
    return {
        "workload": "tracing-overhead",
        "nodes": nodes,
        "edges": n_edges,
        "passes": passes,
        "batch_size": batch_size,
        "disabled_seconds": disabled["seconds"],
        "nullsink_seconds": nullsink["seconds"],
        "machinery_overhead_ratio": (
            nullsink["seconds"] / disabled["seconds"] - 1.0
            if disabled["seconds"]
            else 0.0
        ),
        "hook_crossings": stub.calls,
        "noop_hook_seconds": hook_seconds,
        "overhead_ratio": ratio,
        "budget": TRACING_OVERHEAD_BUDGET,
        "within_budget": ratio < TRACING_OVERHEAD_BUDGET,
    }


class _CountingStubMeter:
    """A budget-off stand-in that counts every meter crossing.

    ``enabled`` is False, so the engines treat it exactly like the
    disabled fast path (``if guard.enabled:`` hot sites skip it
    entirely); the warm per-rule/per-stratum sites call ``tick()`` /
    ``checkpoint()`` unconditionally, which is what this stub counts.
    """

    enabled = False
    blowup_enabled = False

    def __init__(self) -> None:
        self.calls = 0

    def reset(self) -> None:
        self.calls += 1

    def tick(self, rules: int = 0, tuples: int = 0) -> None:
        self.calls += 1

    def checkpoint(self, phase: str) -> None:
        self.calls += 1

    def observe_delta_ratio(self, view, delta_len, view_len) -> None:
        self.calls += 1


def _noop_guard_seconds(iterations: int = 200_000) -> float:
    """Measured per-call cost of the worst-case disabled meter hook."""
    meter = BudgetMeter()  # unbounded budget: enabled is False
    assert not meter.enabled
    started = time.perf_counter()
    for _ in range(iterations):
        meter.tick(rules=1, tuples=2)
        meter.checkpoint("counting.rule")
    return (time.perf_counter() - started) / (2 * iterations)


def guard_overhead_workload(
    source: str,
    nodes: int,
    n_edges: int,
    passes: int,
    batch_size: int,
    runs: int,
    seed: int,
) -> Dict:
    """The 5%-budget guard for the budgets-off (no-op) configuration.

    Same methodology as :func:`tracing_overhead_workload`: with no
    budget configured — the default every maintainer ships with — the
    meter hooks must cost < 5% of pass time.  The bound is
    ``meter crossings × measured worst-case no-op hook cost`` (the
    hottest per-variant sites are guarded behind ``if guard.enabled:``
    and skip the hook entirely, so counting every crossing at the
    unguarded price is conservative).  A fully *enabled* run — huge,
    unreachable budget, so every checkpoint does real limit arithmetic
    — is also timed and reported (``enabled_overhead_ratio``) for
    visibility; that ratio is informational, not part of the budget.
    """
    edges = random_graph(nodes, n_edges, seed=seed)
    stream = changeset_stream(edges, passes, batch_size, nodes, seed + 1)

    def one(guard_policy) -> float:
        maintainer = ViewMaintainer.from_source(
            source,
            database_with(edges),
            strategy="counting",
            plan_cache=True,
            guard=guard_policy,
        ).initialize()
        return run_stream(maintainer, stream)

    def one_stub() -> float:
        maintainer = ViewMaintainer.from_source(
            source,
            database_with(edges),
            strategy="counting",
            plan_cache=True,
        ).initialize()
        maintainer.guard.meter = stub
        return run_stream(maintainer, stream)

    enabled_policy = GuardPolicy(
        budget=MaintenanceBudget(
            deadline_seconds=3600.0,
            max_delta_tuples=10**9,
            max_rule_firings=10**9,
        )
    )
    disabled = measure("guard-off", runs, lambda: one(None))
    enabled = measure("guard-enabled", runs, lambda: one(enabled_policy))
    stub = _CountingStubMeter()
    one_stub()
    hook_seconds = _noop_guard_seconds()
    noop_cost = stub.calls * hook_seconds
    ratio = (
        noop_cost / disabled["seconds"] if disabled["seconds"] else 0.0
    )
    return {
        "workload": "guard-overhead",
        "nodes": nodes,
        "edges": n_edges,
        "passes": passes,
        "batch_size": batch_size,
        "disabled_seconds": disabled["seconds"],
        "enabled_seconds": enabled["seconds"],
        "enabled_overhead_ratio": (
            enabled["seconds"] / disabled["seconds"] - 1.0
            if disabled["seconds"]
            else 0.0
        ),
        "meter_crossings": stub.calls,
        "noop_hook_seconds": hook_seconds,
        "overhead_ratio": ratio,
        "budget": GUARD_OVERHEAD_BUDGET,
        "within_budget": ratio < GUARD_OVERHEAD_BUDGET,
    }


class _CountingPending(dict):
    """A pending pre-image map that counts hot-path membership probes.

    Every tracked write crosses ``row not in pending`` exactly once
    before mutating; counting those probes (class-level, across all
    relations) gives the exact number of versioning touch points a
    stream incurs.
    """

    probes = 0

    def __contains__(self, row) -> bool:
        _CountingPending.probes += 1
        return super().__contains__(row)


def _pending_record_seconds(
    iterations: int = 50_000, repeats: int = 5
) -> float:
    """Measured worst-case cost of one pre-image record.

    All-distinct rows, so every probe pays the full miss + store price
    (repeat writes to a row pay only the probe — this bounds from
    above, dict growth included).  Best-of-``repeats``: the first run
    is dominated by cold allocation, which the engine's small O(change)
    pending maps never see.
    """
    rows = [(index, index + 1) for index in range(iterations)]

    def once() -> float:
        pending = {}
        started = time.perf_counter()
        for row in rows:
            if row not in pending:
                pending[row] = 1
        return time.perf_counter() - started

    return min(once() for _ in range(repeats)) / iterations


def mvcc_overhead_workload(
    source: str,
    nodes: int,
    n_edges: int,
    passes: int,
    batch_size: int,
    runs: int,
    seed: int,
) -> Dict:
    """The 5%-budget guard for MVCC with no snapshots pinned.

    The claim under test: with MVCC on — the default every database
    ships with — but no reader ever pinning a snapshot, the versioning
    layer costs < 5% of the MVCC-off runtime on the chain workload.
    Same methodology as :func:`tracing_overhead_workload`: the bound is
    ``versioning touch points × measured worst-case pre-image record
    cost``, where the touch points are (a) the per-write pending-map
    probe (counted exactly by an instrumented run), (b) each pre-image's
    move into a chain entry at commit, and (c) the begin/commit registry
    sweeps.  Every touch point is priced at the full record cost, so the
    bound is conservative.  The directly measured on/off wall-clock
    ratio is also reported (``enabled_overhead_ratio``) for visibility;
    at bench scale it is noise-dominated and informational only.
    """
    edges = random_graph(nodes, n_edges, seed=seed)
    stream = changeset_stream(edges, passes, batch_size, nodes, seed + 1)

    def one(mvcc: bool) -> float:
        db = Database() if mvcc else Database(mvcc=False)
        db.insert_rows("link", edges)
        maintainer = ViewMaintainer.from_source(
            source, db, strategy="counting", plan_cache=True
        ).initialize()
        return run_stream(maintainer, stream)

    disabled = measure("mvcc-off", runs, lambda: one(False))
    enabled = measure("mvcc-on", runs, lambda: one(True))

    # Instrumented run: swap each open epoch's pending maps for probe
    # counters, so we know exactly how many versioning touch points the
    # stream crosses.
    db = Database()
    db.insert_rows("link", edges)
    maintainer = ViewMaintainer.from_source(
        source, db, strategy="counting", plan_cache=True
    ).initialize()
    manager = db.mvcc
    original_begin = manager.begin

    def counting_begin() -> int:
        epoch = original_begin()
        for name in manager.registered():
            manager._registry[name]._pending = _CountingPending()
        return epoch

    manager.begin = counting_begin
    _CountingPending.probes = 0
    run_stream(maintainer, stream)
    crossings = _CountingPending.probes
    rows_versioned = manager.rows_versioned
    sweeps = 2 * manager.commits * len(manager.registered())
    record_seconds = _pending_record_seconds()
    bound = (crossings + rows_versioned + sweeps) * record_seconds
    ratio = bound / disabled["seconds"] if disabled["seconds"] else 0.0
    return {
        "workload": "mvcc-overhead",
        "nodes": nodes,
        "edges": n_edges,
        "passes": passes,
        "batch_size": batch_size,
        "disabled_seconds": disabled["seconds"],
        "enabled_seconds": enabled["seconds"],
        "enabled_overhead_ratio": (
            enabled["seconds"] / disabled["seconds"] - 1.0
            if disabled["seconds"]
            else 0.0
        ),
        "write_crossings": crossings,
        "rows_versioned": rows_versioned,
        "registry_sweeps": sweeps,
        "record_seconds": record_seconds,
        "overhead_ratio": ratio,
        "budget": MVCC_OVERHEAD_BUDGET,
        "within_budget": ratio < MVCC_OVERHEAD_BUDGET,
    }


class _NoneHooks:
    """A bare host carrying the detached health/profiler attributes."""

    __slots__ = ("health", "profiler")

    def __init__(self) -> None:
        self.health = None
        self.profiler = None


def _noop_health_seconds(iterations: int = 200_000) -> float:
    """Measured per-check cost of the detached health/profiler hooks.

    The disabled path is exactly two attribute loads compared against
    ``None`` per pass (``_commit`` / ``_observe_degraded``); this times
    that pair on a stand-in host and returns the per-check price.
    """
    host = _NoneHooks()
    started = time.perf_counter()
    for _ in range(iterations):
        if host.profiler is not None:
            host.profiler.observe_pass(None)
        if host.health is not None:
            host.health.observe_pass(None, None)
    return (time.perf_counter() - started) / (2 * iterations)


def health_overhead_workload(
    source: str,
    nodes: int,
    n_edges: int,
    passes: int,
    batch_size: int,
    runs: int,
    seed: int,
) -> Dict:
    """The 5%-budget guard for the health-layer-off configuration.

    Same methodology as :func:`tracing_overhead_workload`: with no SLO
    engine and no profiler attached — the default — each maintenance
    pass crosses exactly two hook sites (``profiler is None`` and
    ``health is None`` in the commit/degraded tail), so the bound is
    ``2 × passes × measured per-check cost`` against
    :data:`HEALTH_OVERHEAD_BUDGET`.  A fully *enabled* run — three SLOs
    on the head view plus the continuous profiler — is also timed and
    reported (``enabled_overhead_ratio``) so regressions in the scoring
    path stay visible; that ratio is informational, not part of the
    budget.
    """
    edges = random_graph(nodes, n_edges, seed=seed)
    stream = changeset_stream(edges, passes, batch_size, nodes, seed + 1)

    def one(health: bool) -> float:
        maintainer = ViewMaintainer.from_source(
            source,
            database_with(edges),
            strategy="counting",
            plan_cache=True,
        ).initialize()
        if health:
            maintainer.attach_health(
                [
                    {"view": "hop1", "objective": "freshness_lag",
                     "target": 0},
                    {"view": "hop1", "objective": "pass_duration_p99",
                     "target": 10.0},
                    {"view": "hop1", "objective": "error_rate",
                     "target": 0.0},
                ]
            )
            maintainer.enable_profiler()
        return run_stream(maintainer, stream)

    disabled = measure("health-off", runs, lambda: one(False))
    enabled = measure("health-enabled", runs, lambda: one(True))
    crossings = 2 * len(stream)
    hook_seconds = _noop_health_seconds()
    noop_cost = crossings * hook_seconds
    ratio = (
        noop_cost / disabled["seconds"] if disabled["seconds"] else 0.0
    )
    return {
        "workload": "health-overhead",
        "nodes": nodes,
        "edges": n_edges,
        "passes": passes,
        "batch_size": batch_size,
        "disabled_seconds": disabled["seconds"],
        "enabled_seconds": enabled["seconds"],
        "enabled_overhead_ratio": (
            enabled["seconds"] / disabled["seconds"] - 1.0
            if disabled["seconds"]
            else 0.0
        ),
        "health_crossings": crossings,
        "noop_hook_seconds": hook_seconds,
        "overhead_ratio": ratio,
        "budget": HEALTH_OVERHEAD_BUDGET,
        "within_budget": ratio < HEALTH_OVERHEAD_BUDGET,
    }


class _NoneSanitizer:
    """A stand-in version manager carrying only the detached hook."""

    __slots__ = ("sanitizer",)

    def __init__(self) -> None:
        self.sanitizer = None


def _noop_sanitize_seconds(iterations: int = 200_000) -> float:
    """Measured per-check cost of the detached sanitizer hooks.

    The disabled path is one attribute load compared against ``None``
    per protocol edge (begin, commit pre-publication, commit
    post-publication, and the maintainer's Theorem 4.1 commit tail);
    this times that check on a stand-in host and returns the per-check
    price.
    """
    host = _NoneSanitizer()
    started = time.perf_counter()
    for _ in range(iterations):
        if host.sanitizer is not None:
            host.sanitizer.on_begin(None, 0)
    return (time.perf_counter() - started) / iterations


def sanitize_overhead_workload(
    source: str,
    nodes: int,
    n_edges: int,
    passes: int,
    batch_size: int,
    runs: int,
    seed: int,
) -> Dict:
    """The 5%-budget guard for the sanitizer-off configuration.

    Same methodology as :func:`health_overhead_workload`: with no
    sanitizer attached — the default — each maintenance pass crosses
    four ``is None`` hook sites (begin, commit pre- and
    post-publication, and the maintainer commit tail), so the bound is
    ``4 × passes × measured per-check cost`` against
    :data:`SANITIZE_OVERHEAD_BUDGET`.  A fully *enabled* run
    (``Database(sanitize=True)``: fingerprinting every commit plus the
    Theorem 4.1 sampling gate) is also timed and reported
    (``enabled_overhead_ratio``) so regressions in the checking path
    stay visible; that ratio is informational, not part of the budget.
    """
    edges = random_graph(nodes, n_edges, seed=seed)
    stream = changeset_stream(edges, passes, batch_size, nodes, seed + 1)

    def one(sanitize: bool) -> float:
        db = Database(sanitize=sanitize)
        db.insert_rows("link", edges)
        maintainer = ViewMaintainer.from_source(
            source, db, strategy="counting", plan_cache=True
        ).initialize()
        return run_stream(maintainer, stream)

    disabled = measure("sanitize-off", runs, lambda: one(False))
    enabled = measure("sanitize-enabled", runs, lambda: one(True))
    crossings = 4 * len(stream)
    hook_seconds = _noop_sanitize_seconds()
    noop_cost = crossings * hook_seconds
    ratio = (
        noop_cost / disabled["seconds"] if disabled["seconds"] else 0.0
    )
    return {
        "workload": "sanitize-overhead",
        "nodes": nodes,
        "edges": n_edges,
        "passes": passes,
        "batch_size": batch_size,
        "disabled_seconds": disabled["seconds"],
        "enabled_seconds": enabled["seconds"],
        "enabled_overhead_ratio": (
            enabled["seconds"] / disabled["seconds"] - 1.0
            if disabled["seconds"]
            else 0.0
        ),
        "sanitize_crossings": crossings,
        "noop_hook_seconds": hook_seconds,
        "overhead_ratio": ratio,
        "budget": SANITIZE_OVERHEAD_BUDGET,
        "within_budget": ratio < SANITIZE_OVERHEAD_BUDGET,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Plan-cache / batched-maintenance benchmark"
    )
    parser.add_argument("--passes", type=int, default=200,
                        help="changesets per stream (default 200)")
    parser.add_argument("--nodes", type=int, default=400)
    parser.add_argument("--edges", type=int, default=120)
    parser.add_argument("--depth", type=int, default=20,
                        help="hop-chain length of the counting workload")
    parser.add_argument("--batch-size", type=int, default=2,
                        help="rows per changeset (default 2: 1 del + 1 ins)")
    parser.add_argument("--bucket", type=int, default=10,
                        help="changesets coalesced per apply_many bucket")
    parser.add_argument("--runs", type=int, default=3,
                        help="best-of repetitions per configuration")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root/"
                        "BENCH_maintenance.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="toy scale: tiny graph, few passes, 1 run "
                        "(CI smoke test; numbers are meaningless)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.passes = min(args.passes, 12)
        args.nodes, args.edges, args.depth, args.runs = 40, 30, 6, 1

    out = args.out or os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_maintenance.json",
    )

    workloads = [
        cache_workload(
            "counting-small-delta", chain_src(args.depth), "counting",
            args.nodes, args.edges, args.passes, args.batch_size,
            args.runs, seed=31,
        ),
        cache_workload(
            "dred-small-delta", TC_SRC, "dred",
            args.nodes, max(args.edges // 3, 10), args.passes,
            args.batch_size, args.runs, seed=37,
        ),
        batching_workload(
            args.nodes, args.edges, args.passes, args.batch_size,
            args.bucket, args.runs, seed=41,
        ),
        tracing_overhead_workload(
            chain_src(args.depth), args.nodes, args.edges, args.passes,
            args.batch_size, args.runs, seed=43,
        ),
        guard_overhead_workload(
            chain_src(args.depth), args.nodes, args.edges, args.passes,
            args.batch_size, args.runs, seed=47,
        ),
        mvcc_overhead_workload(
            chain_src(args.depth), args.nodes, args.edges, args.passes,
            args.batch_size, args.runs, seed=53,
        ),
        health_overhead_workload(
            chain_src(args.depth), args.nodes, args.edges, args.passes,
            args.batch_size, args.runs, seed=59,
        ),
        sanitize_overhead_workload(
            chain_src(args.depth), args.nodes, args.edges, args.passes,
            args.batch_size, args.runs, seed=61,
        ),
    ]

    payload = {
        "benchmark": "plan_cache",
        "schema_version": 1,
        "config": {
            "passes": args.passes,
            "nodes": args.nodes,
            "edges": args.edges,
            "depth": args.depth,
            "batch_size": args.batch_size,
            "bucket": args.bucket,
            "runs": args.runs,
            "smoke": args.smoke,
        },
        "workloads": workloads,
    }
    write_bench_json(
        out,
        payload,
        telemetry={"metrics": get_default_registry().snapshot()},
    )

    failed = False
    for workload in workloads:
        name = workload["workload"]
        if "cache_on_seconds" in workload:
            print(
                f"{name:24s} cache-on {workload['cache_on_seconds']:.3f}s  "
                f"cache-off {workload['cache_off_seconds']:.3f}s  "
                f"speedup ×{workload['speedup']:.2f}  "
                f"post-warmup hit rate "
                f"{workload['post_warmup_hit_rate']:.0%}"
            )
        elif "hook_crossings" in workload:
            print(
                f"{name:24s} off {workload['disabled_seconds']:.3f}s  "
                f"null-sink {workload['nullsink_seconds']:.3f}s "
                f"({workload['machinery_overhead_ratio']:+.1%} machinery)  "
                f"no-op bound {workload['overhead_ratio']:.2%} over "
                f"{workload['hook_crossings']} hooks "
                f"(budget {workload['budget']:.0%})"
            )
            if not workload["within_budget"]:
                failed = True
                print(
                    f"FAIL: tracing no-op overhead "
                    f"{workload['overhead_ratio']:.1%} exceeds the "
                    f"{workload['budget']:.0%} budget",
                    file=sys.stderr,
                )
        elif "write_crossings" in workload:
            print(
                f"{name:24s} off {workload['disabled_seconds']:.3f}s  "
                f"on {workload['enabled_seconds']:.3f}s "
                f"({workload['enabled_overhead_ratio']:+.1%} measured)  "
                f"bound {workload['overhead_ratio']:.2%} over "
                f"{workload['write_crossings']} writes "
                f"(budget {workload['budget']:.0%})"
            )
            if not workload["within_budget"]:
                failed = True
                print(
                    f"FAIL: MVCC versioning overhead bound "
                    f"{workload['overhead_ratio']:.1%} exceeds the "
                    f"{workload['budget']:.0%} budget",
                    file=sys.stderr,
                )
        elif "health_crossings" in workload:
            print(
                f"{name:24s} off {workload['disabled_seconds']:.3f}s  "
                f"enabled {workload['enabled_seconds']:.3f}s "
                f"({workload['enabled_overhead_ratio']:+.1%} scoring)  "
                f"no-op bound {workload['overhead_ratio']:.2%} over "
                f"{workload['health_crossings']} hooks "
                f"(budget {workload['budget']:.0%})"
            )
            if not workload["within_budget"]:
                failed = True
                print(
                    f"FAIL: health no-op overhead "
                    f"{workload['overhead_ratio']:.1%} exceeds the "
                    f"{workload['budget']:.0%} budget",
                    file=sys.stderr,
                )
        elif "sanitize_crossings" in workload:
            print(
                f"{name:24s} off {workload['disabled_seconds']:.3f}s  "
                f"enabled {workload['enabled_seconds']:.3f}s "
                f"({workload['enabled_overhead_ratio']:+.1%} checking)  "
                f"no-op bound {workload['overhead_ratio']:.2%} over "
                f"{workload['sanitize_crossings']} hooks "
                f"(budget {workload['budget']:.0%})"
            )
            if not workload["within_budget"]:
                failed = True
                print(
                    f"FAIL: sanitizer no-op overhead "
                    f"{workload['overhead_ratio']:.1%} exceeds the "
                    f"{workload['budget']:.0%} budget",
                    file=sys.stderr,
                )
        elif "meter_crossings" in workload:
            print(
                f"{name:24s} off {workload['disabled_seconds']:.3f}s  "
                f"enabled {workload['enabled_seconds']:.3f}s "
                f"({workload['enabled_overhead_ratio']:+.1%} metering)  "
                f"no-op bound {workload['overhead_ratio']:.2%} over "
                f"{workload['meter_crossings']} hooks "
                f"(budget {workload['budget']:.0%})"
            )
            if not workload["within_budget"]:
                failed = True
                print(
                    f"FAIL: guard no-op overhead "
                    f"{workload['overhead_ratio']:.1%} exceeds the "
                    f"{workload['budget']:.0%} budget",
                    file=sys.stderr,
                )
        else:
            print(
                f"{name:24s} sequential {workload['sequential_seconds']:.3f}s"
                f"  batched {workload['batched_seconds']:.3f}s  "
                f"speedup ×{workload['speedup']:.2f}"
            )
    print(f"wrote {out}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
