"""E3 — counting computes exactly the true delta (Theorem 4.1).

This benchmark measures the cost of the exact delta computation and, in
the same run, *asserts* optimality: the computed delta must equal the
recount oracle's ground truth, and DRed's step-1 overestimate must be a
superset of its net deletions.
"""

import pytest

from helpers import HOP_SRC, TC_SRC, database_with
from repro.baselines.recount import true_view_deltas
from repro.core.maintenance import ViewMaintainer
from repro.datalog.parser import parse_program
from repro.storage.changeset import Changeset
from repro.workloads import random_graph

EDGES = random_graph(150, 600, seed=31)
CHANGES = Changeset()
for _edge in EDGES[:10]:
    CHANGES.delete("link", _edge)


@pytest.mark.benchmark(group="e3-exact-delta")
def test_counting_exact_delta(benchmark):
    truth = true_view_deltas(
        parse_program(HOP_SRC), database_with(EDGES), CHANGES
    )

    def setup():
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, database_with(EDGES)
        ).initialize()
        return (maintainer,), {}

    def run(maintainer):
        report = maintainer.apply(CHANGES.copy())
        for view in ("hop", "tri_hop"):
            expected = truth[view].to_dict() if view in truth else {}
            assert report.delta(view).to_dict() == expected
        return report

    benchmark.pedantic(run, setup=setup, rounds=5)


@pytest.mark.benchmark(group="e3-overestimate")
def test_dred_overestimates_then_repairs(benchmark):
    def setup():
        maintainer = ViewMaintainer.from_source(
            TC_SRC, database_with(EDGES), strategy="dred"
        ).initialize()
        return (maintainer,), {}

    def run(maintainer):
        report = maintainer.apply(CHANGES.copy())
        stats = report.dred.stats
        assert stats.overestimated >= stats.deleted
        return stats

    benchmark.pedantic(run, setup=setup, rounds=3)
