"""Scaling ablation: maintenance cost vs database size at fixed |Δ|.

The defining property of the counting algorithm (Theorem 4.1 makes it
*optimal*: it computes exactly the changed tuples) is that per-batch
maintenance cost tracks the size of the *change*, not of the database.
Recomputation is linear in the database.  Each group fixes an 8-row
batch and scales the ``link`` relation ~4× per step: counting times
should stay nearly flat across groups while recompute times grow.
"""

import pytest

from helpers import (
    HOP_SRC,
    apply_changes,
    counting_setup,
    recompute_setup,
)
from repro.workloads import mixed_batch, random_graph

SIZES = {
    "small": (120, 480),
    "medium": (240, 1900),
    "large": (480, 7600),
}


def _workload(nodes, edges_count, seed):
    edges = random_graph(nodes, edges_count, seed=seed)
    changes, _ = mixed_batch("link", edges, 4, 4, node_count=nodes, seed=seed)
    return edges, changes


@pytest.mark.benchmark(group="scaling-counting")
@pytest.mark.parametrize("size", list(SIZES))
def test_counting_scaling(benchmark, size):
    nodes, edge_count = SIZES[size]
    edges, changes = _workload(nodes, edge_count, seed=141)
    benchmark.pedantic(
        apply_changes, setup=counting_setup(HOP_SRC, edges, changes), rounds=3
    )


@pytest.mark.benchmark(group="scaling-recompute")
@pytest.mark.parametrize("size", list(SIZES))
def test_recompute_scaling(benchmark, size):
    nodes, edge_count = SIZES[size]
    edges, changes = _workload(nodes, edge_count, seed=141)
    benchmark.pedantic(
        apply_changes, setup=recompute_setup(HOP_SRC, edges, changes), rounds=3
    )
