"""Orchestrator benchmark → BENCH_orchestrator.json.

Two questions about the DAG scheduler, answered with numbers:

* ``scheduler-overhead`` — the same 3-level chain of views, maintained
  twice over an identical changeset stream: once hand-wired (apply each
  node's maintainer and forward its view deltas in topological order —
  the code an application would write without the orchestrator) and
  once through ``Orchestrator.ingest()`` + ``tick()``.  The scheduling
  layer (routing, pending queues, coalescing, state bookkeeping,
  cone accounting) may cost at most 5% on top of the maintenance work
  itself — the orchestrator must stay a thin wrapper around the
  paper's algorithms.

* ``lag-conformance`` — a node with a 30 s ``target_lag`` under a
  virtual clock ticked every 10 s: refreshes must *batch* (roughly one
  refresh per lag window, not one per tick) while the observed
  staleness at each refresh never exceeds the target by more than one
  tick interval.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_orchestrator.py
    PYTHONPATH=src python benchmarks/bench_orchestrator.py --smoke

``--smoke`` shrinks everything to toy scale and skips the overhead
gate (the numbers are meaningless at that size; only the machinery and
the JSON schema are under test — see
``tests/test_bench_orchestrator_smoke.py`` and ``make
orchestrator-smoke``'s sibling gate in ``make check``).
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.bench.harness import write_bench_json  # noqa: E402
from repro.core.maintenance import ViewMaintainer  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.orchestrator import Orchestrator, ViewNode  # noqa: E402
from repro.storage.changeset import Changeset  # noqa: E402
from repro.storage.database import Database  # noqa: E402
from repro.workloads import random_graph, update_sequence  # noqa: E402

#: Hard budget: orchestration may add at most 5% over hand-wired
#: sequential maintenance of the same DAG on the same stream.
SCHEDULER_OVERHEAD_BUDGET = 0.05

#: The 3-level chain; every level also joins the source relation, so
#: each node consumes both an upstream view and the raw stream.
CHAIN = [
    ("hops", "hop(X,Y) :- link(X,Z), link(Z,Y)."),
    ("tris", "tri(X,Y) :- hop(X,Z), link(Z,Y)."),
    ("quads", "quad(X,Y) :- tri(X,Z), link(Z,Y)."),
]

#: (exported view, inputs fed from upstream) per chain node.
CHAIN_FEEDS = {"hops": [], "tris": ["hop"], "quads": ["tri"]}


class VirtualClock:
    def __init__(self, now: float = 1_000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def stream(nodes: int, edges: int, passes: int, batch: int):
    rows = random_graph(nodes, edges, seed=5)
    return rows, list(
        update_sequence(
            "link", rows, passes, batch, node_count=nodes, seed=6
        )
    )


def link_changeset(rows) -> Changeset:
    changes = Changeset()
    for row in rows:
        changes.insert("link", row)
    return changes


def manual_sequential(rows, changesets) -> float:
    """The hand-wired baseline: per-node maintainers, deltas forwarded
    in topological order by plain application code."""
    maintainers: Dict[str, ViewMaintainer] = {}
    for name, source in CHAIN:
        database = Database()
        database.ensure_relation("link", 2)
        for feed in CHAIN_FEEDS[name]:
            database.ensure_relation(feed, 2)
        maintainer = ViewMaintainer.from_source(source, database)
        maintainer.initialize()
        maintainers[name] = maintainer
    maintainers["hops"].apply(link_changeset(rows))
    for name, _source in CHAIN[1:]:
        feed = link_changeset(rows)
        for view in CHAIN_FEEDS[name]:
            # The upstream maintainer just materialized `view` fully.
            producer = {"hop": "hops", "tri": "tris"}[view]
            delta = maintainers[producer].relation(view)
            for row, count in delta.items():
                feed.insert(view, row, count)
        maintainers[name].apply(feed)

    started = time.perf_counter()
    for changes in changesets:
        forwarded: Dict[str, object] = {}
        for name, _source in CHAIN:
            node_changes = Changeset()
            node_changes.add_delta("link", changes.delta("link"))
            for view in CHAIN_FEEDS[name]:
                delta = forwarded.get(view)
                if delta:
                    node_changes.add_delta(view, delta)
            report = maintainers[name].apply(node_changes)
            forwarded.update(report.view_deltas)
    return time.perf_counter() - started


def orchestrated(rows, changesets) -> float:
    orch = Orchestrator(
        [ViewNode(name, source) for name, source in CHAIN],
        metrics=MetricsRegistry(),
        mvcc=False,
        seed=0,
        sleep=lambda _s: None,
    )
    orch.ingest(link_changeset(rows))
    orch.tick()
    started = time.perf_counter()
    for changes in changesets:
        orch.ingest(changes)
        orch.tick()
    elapsed = time.perf_counter() - started
    orch.check_convergence()
    return elapsed


def bench_overhead(nodes: int, edges: int, passes: int,
                   batch: int) -> Dict[str, object]:
    rows, changesets = stream(nodes, edges, passes, batch)
    # Warm both code paths (imports, plan caches) before timing, then
    # interleave repetitions and take each side's best — min-of-N with
    # interleaving cancels the machine-state drift that would otherwise
    # dominate a two-block comparison, and GC stays off while timing.
    warm_rows, warm_changes = stream(20, 40, 2, 2)
    manual_sequential(warm_rows, warm_changes)
    orchestrated(warm_rows, warm_changes)

    manual_times: List[float] = []
    orchestrated_times: List[float] = []
    gc.collect()
    gc.disable()
    try:
        for _rep in range(5):
            manual_times.append(manual_sequential(rows, changesets))
            orchestrated_times.append(orchestrated(rows, changesets))
    finally:
        gc.enable()
    manual_seconds = min(manual_times)
    orchestrated_seconds = min(orchestrated_times)
    overhead = orchestrated_seconds / manual_seconds - 1.0
    return {
        "nodes": len(CHAIN),
        "graph_nodes": nodes,
        "graph_edges": edges,
        "passes": passes,
        "batch_size": batch,
        "manual_seconds": manual_seconds,
        "orchestrated_seconds": orchestrated_seconds,
        "overhead_ratio": overhead,
        "budget": SCHEDULER_OVERHEAD_BUDGET,
        "within_budget": overhead <= SCHEDULER_OVERHEAD_BUDGET,
    }


def bench_lag(nodes: int, edges: int, passes: int,
              batch: int) -> Dict[str, object]:
    target_lag = 30.0
    tick_interval = 10.0
    clock = VirtualClock()
    orch = Orchestrator(
        [
            ViewNode("base", "hop(X,Y) :- link(X,Z), link(Z,Y).",
                     target_lag=target_lag),
        ],
        metrics=MetricsRegistry(),
        clock=clock,
        sleep=lambda _s: None,
    )
    rows, changesets = stream(nodes, edges, passes, batch)
    orch.ingest(link_changeset(rows))
    orch.refresh_now("base")

    observed: List[float] = []
    status = orch.states["base"]
    for changes in changesets:
        orch.ingest(changes)
        clock.advance(tick_interval)
        if status.pending:
            lag_now = status.lag_seconds(clock)
            if lag_now >= target_lag:
                observed.append(lag_now)
        orch.tick()
    refreshes = orch.status()["views"]["base"]["refreshes"]
    max_observed = max(observed) if observed else 0.0
    return {
        "target_lag_seconds": target_lag,
        "tick_interval_seconds": tick_interval,
        "stream_passes": passes,
        "refreshes": refreshes,
        "batching_factor": passes / refreshes if refreshes else None,
        "max_observed_lag_seconds": max_observed,
        "bound_seconds": target_lag + tick_interval,
        "within_target": max_observed <= target_lag + tick_interval,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="toy scale, no gate enforcement")
    parser.add_argument("--passes", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="output path (default: repo-root "
                        "BENCH_orchestrator.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        scale = {"nodes": 30, "edges": 60, "passes": 4, "batch": 2}
    else:
        scale = {"nodes": 120, "edges": 420, "passes": 60, "batch": 6}
    if args.passes is not None:
        scale["passes"] = args.passes

    overhead = bench_overhead(**scale)
    lag = bench_lag(**scale)
    payload = {
        "benchmark": "orchestrator",
        "smoke": args.smoke,
        "config": scale,
        "workloads": {
            "scheduler-overhead": overhead,
            "lag-conformance": lag,
        },
    }
    out = args.out or os.path.join(os.getcwd(), "BENCH_orchestrator.json")
    write_bench_json(out, payload)

    print(
        f"scheduler overhead: {overhead['overhead_ratio']:+.2%} "
        f"(manual {overhead['manual_seconds']:.3f}s, orchestrated "
        f"{overhead['orchestrated_seconds']:.3f}s, budget "
        f"{SCHEDULER_OVERHEAD_BUDGET:.0%})"
    )
    print(
        f"lag conformance: {lag['refreshes']} refresh(es) over "
        f"{lag['stream_passes']} passes (batching ×"
        f"{lag['batching_factor']:.1f}), max observed lag "
        f"{lag['max_observed_lag_seconds']:.1f}s ≤ "
        f"{lag['bound_seconds']:.1f}s bound"
    )
    print(f"wrote {out}")

    if not args.smoke:
        if not overhead["within_budget"]:
            print(
                "FAIL: scheduler overhead "
                f"{overhead['overhead_ratio']:.2%} exceeds the "
                f"{SCHEDULER_OVERHEAD_BUDGET:.0%} budget",
                file=sys.stderr,
            )
            return 1
        if not lag["within_target"]:
            print("FAIL: observed lag exceeded target + tick interval",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
