"""E1 — counting vs full recomputation on nonrecursive views (hop/tri_hop).

Paper claim (§1): computing only the changes is usually much cheaper than
recomputing the view.  Compare groups ``e1-small-batch`` (Δ ≈ 1% of the
base relation) and ``e1-large-batch`` (Δ ≈ 50%): counting should win the
first decisively and lose its edge on the second.
"""

import pytest

from helpers import (
    HOP_SRC,
    apply_changes,
    counting_setup,
    hop_workload,
    recompute_setup,
)

SMALL = hop_workload(deletions=4, insertions=4, seed=11)
LARGE = hop_workload(deletions=220, insertions=220, seed=12)


@pytest.mark.benchmark(group="e1-small-batch")
def test_counting_small_batch(benchmark):
    edges, changes = SMALL
    benchmark.pedantic(
        apply_changes, setup=counting_setup(HOP_SRC, edges, changes), rounds=5
    )


@pytest.mark.benchmark(group="e1-small-batch")
def test_recompute_small_batch(benchmark):
    edges, changes = SMALL
    benchmark.pedantic(
        apply_changes, setup=recompute_setup(HOP_SRC, edges, changes), rounds=5
    )


@pytest.mark.benchmark(group="e1-large-batch")
def test_counting_large_batch(benchmark):
    edges, changes = LARGE
    benchmark.pedantic(
        apply_changes, setup=counting_setup(HOP_SRC, edges, changes), rounds=3
    )


@pytest.mark.benchmark(group="e1-large-batch")
def test_recompute_large_batch(benchmark):
    edges, changes = LARGE
    benchmark.pedantic(
        apply_changes, setup=recompute_setup(HOP_SRC, edges, changes), rounds=3
    )
