"""Ablation: the [BCL89] irrelevant-update pre-filter.

A selective view (``C < 5`` keeps ~4% of a 1–100 cost range) under a
batch that is mostly irrelevant rows: with the filter, rejected rows
never reach delta-rule evaluation; without it, every row spawns variant
evaluations that join to nothing.

Honest finding (recorded in EXPERIMENTS.md): the two are within noise of
each other on this engine — the Δ-subgoal-first join order means an
irrelevant row is rejected by the in-plan comparison after O(1) work
anyway, so [BCL89]'s syntactic pre-test buys little beyond the
``irrelevant_skipped`` statistic and the guarantee that untouched strata
are never entered.  On an engine without Δ-first ordering (see the
``ablation-seed-order`` group) the filter would matter far more.
"""

import pytest

from repro.core.counting import CountingMaintenance
from repro.core.normalize import normalize_program
from repro.datalog.parser import parse_program
from repro.datalog.stratify import stratify
from repro.eval.stratified import materialize
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.workloads import random_graph, with_costs

SRC = """
cheap(X, Y, C) :- link(X, Y, C), C < 5.
cheap_pair(X, Z) :- cheap(X, Y, C1), cheap(Y, Z, C2).
"""

EDGES = with_costs(random_graph(150, 900, seed=151), 1, 100, seed=151)

CHANGES = Changeset()
for _i in range(120):
    # ~95% of inserted rows have cost ≥ 5 → provably irrelevant.
    CHANGES.insert("link", (1000 + _i, _i % 150, 5 + (_i * 7) % 95))
for _i in range(6):
    CHANGES.insert("link", (2000 + _i, _i % 150, 1 + _i % 4))


def _setup(prefilter):
    def setup():
        normalized = normalize_program(parse_program(SRC))
        strat = stratify(normalized.program)
        db = Database()
        db.insert_rows("link", EDGES)
        views = materialize(normalized.program, db, "set", strat)
        run = CountingMaintenance(
            normalized, strat, db, views, {},
            prefilter_irrelevant=prefilter,
        )
        return (run,), {}

    return setup


@pytest.mark.benchmark(group="ablation-irrelevance")
def test_with_prefilter(benchmark):
    benchmark.pedantic(
        lambda run: run.run(CHANGES.copy()), setup=_setup(True), rounds=5
    )


@pytest.mark.benchmark(group="ablation-irrelevance")
def test_without_prefilter(benchmark):
    benchmark.pedantic(
        lambda run: run.run(CHANGES.copy()), setup=_setup(False), rounds=5
    )
