"""E2 — the heuristic of inertia breaks down under mass deletion.

Paper claim (§1): "if an entire base relation is deleted, it may be
cheaper to recompute the view … than to compute the changes."  Group
``e2-delete-all`` deletes 100% of ``link``: recomputation (of a now
empty view) should beat incremental counting; group ``e2-delete-few``
shows the normal regime for contrast.
"""

import pytest

from helpers import (
    HOP_SRC,
    apply_changes,
    counting_setup,
    recompute_setup,
)
from repro.storage.changeset import Changeset
from repro.workloads import random_graph

EDGES = random_graph(200, 900, seed=21)

DELETE_ALL = Changeset()
for _edge in EDGES:
    DELETE_ALL.delete("link", _edge)

DELETE_FEW = Changeset()
for _edge in EDGES[:5]:
    DELETE_FEW.delete("link", _edge)


@pytest.mark.benchmark(group="e2-delete-all")
def test_counting_delete_all(benchmark):
    benchmark.pedantic(
        apply_changes,
        setup=counting_setup(HOP_SRC, EDGES, DELETE_ALL),
        rounds=3,
    )


@pytest.mark.benchmark(group="e2-delete-all")
def test_recompute_delete_all(benchmark):
    benchmark.pedantic(
        apply_changes,
        setup=recompute_setup(HOP_SRC, EDGES, DELETE_ALL),
        rounds=3,
    )


@pytest.mark.benchmark(group="e2-delete-few")
def test_counting_delete_few(benchmark):
    benchmark.pedantic(
        apply_changes,
        setup=counting_setup(HOP_SRC, EDGES, DELETE_FEW),
        rounds=5,
    )


@pytest.mark.benchmark(group="e2-delete-few")
def test_recompute_delete_few(benchmark):
    benchmark.pedantic(
        apply_changes,
        setup=recompute_setup(HOP_SRC, EDGES, DELETE_FEW),
        rounds=5,
    )
