"""E10 — view redefinition: rule changes vs rematerialization (§7).

DRed maintains the materialization across rule insertions/deletions; the
baseline is building a fresh maintainer for the new program.
"""

import pytest

from helpers import TC_SRC, database_with
from repro.core.maintenance import ViewMaintainer
from repro.workloads import random_graph

EDGES = random_graph(150, 400, seed=101)
NEW_RULE = "tc(X, Y) :- link(Y, X)."


@pytest.mark.benchmark(group="e10-add-rule")
def test_alter_add_rule(benchmark):
    def setup():
        maintainer = ViewMaintainer.from_source(
            TC_SRC, database_with(EDGES), strategy="dred"
        ).initialize()
        return (maintainer,), {}

    benchmark.pedantic(
        lambda m: m.alter(add=[NEW_RULE]), setup=setup, rounds=3
    )


@pytest.mark.benchmark(group="e10-add-rule")
def test_rebuild_with_added_rule(benchmark):
    def rebuild():
        ViewMaintainer.from_source(
            TC_SRC + NEW_RULE, database_with(EDGES), strategy="dred"
        ).initialize()

    benchmark.pedantic(rebuild, rounds=3)


@pytest.mark.benchmark(group="e10-remove-rule")
def test_alter_remove_rule(benchmark):
    def setup():
        db = database_with(EDGES)
        db.insert_rows("special", [(0, 1), (2, 3)])
        maintainer = ViewMaintainer.from_source(
            TC_SRC + "tc(X, Y) :- special(X, Y).",
            db,
            strategy="dred",
        ).initialize()
        return (maintainer,), {}

    benchmark.pedantic(
        lambda m: m.alter(remove=["tc(X, Y) :- special(X, Y)."]),
        setup=setup,
        rounds=3,
    )


@pytest.mark.benchmark(group="e10-remove-rule")
def test_rebuild_without_removed_rule(benchmark):
    def rebuild():
        db = database_with(EDGES)
        db.insert_rows("special", [(0, 1), (2, 3)])
        ViewMaintainer.from_source(TC_SRC, db, strategy="dred").initialize()

    benchmark.pedantic(rebuild, rounds=3)
