"""E5 — statement (2): unchanged set projections stop the cascade (§5.1).

A 6-stratum view stack over a graph where every derived tuple has two
derivations; the update deletes one of the two.  Under set semantics the
cascade stops at stratum 1; under duplicate semantics the count change
walks all six strata.
"""

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.storage.changeset import Changeset
from repro.storage.database import Database

DEPTH = 6
PAIRS = 150

_rules = ["v1(X, Y) :- link(X, Z), link(Z, Y)."]
for _level in range(2, DEPTH + 1):
    _rules.append(f"v{_level}(X, Y) :- v{_level - 1}(X, Y), anchor(X).")
SOURCE = "\n".join(_rules)

EDGES = []
ANCHORS = []
for _i in range(PAIRS):
    EDGES += [
        (f"s{_i}", f"m{_i}a"),
        (f"s{_i}", f"m{_i}b"),
        (f"m{_i}a", f"t{_i}"),
        (f"m{_i}b", f"t{_i}"),
    ]
    ANCHORS.append((f"s{_i}",))

CHANGES = Changeset()
for _i in range(PAIRS // 2):
    CHANGES.delete("link", (f"s{_i}", f"m{_i}a"))


def _setup(semantics):
    def setup():
        db = Database()
        db.insert_rows("link", EDGES)
        db.insert_rows("anchor", ANCHORS)
        maintainer = ViewMaintainer.from_source(
            SOURCE, db, semantics=semantics
        ).initialize()
        return (maintainer,), {}

    return setup


@pytest.mark.benchmark(group="e5-cascade")
def test_set_semantics_suppresses_cascade(benchmark):
    def run(maintainer):
        report = maintainer.apply(CHANGES.copy())
        assert report.counting.stats.strata_reached == 1
        assert report.counting.stats.cascades_suppressed == PAIRS // 2

    benchmark.pedantic(run, setup=_setup("set"), rounds=5)


@pytest.mark.benchmark(group="e5-cascade")
def test_duplicate_semantics_cascades_fully(benchmark):
    def run(maintainer):
        report = maintainer.apply(CHANGES.copy())
        assert report.counting.stats.strata_reached == DEPTH

    benchmark.pedantic(run, setup=_setup("duplicate"), rounds=5)
