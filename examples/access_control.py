"""Access control: negation, role hierarchies, and live policy changes.

One of the paper's motivating applications is integrity/constraint and
rule management in active databases.  Here a materialized authorization
matrix is kept incremental under both *data* changes (users change
teams, grants appear/disappear) and *policy* (rule) changes via
``alter`` — the Section 7 view-redefinition maintenance.

Views:

* ``member(U, R)``  — role membership closed over the role hierarchy
  (recursive: a member of ``admins`` is a member of ``staff`` too);
* ``allowed(U, D)`` — membership grants minus explicit denials
  (stratified negation);
* ``audit(D, N)``   — how many users can see each document (aggregate).

Run with::

    python examples/access_control.py
"""

from repro import Changeset, Database, ViewMaintainer

POLICY = """
member(U, R)  :- assigned(U, R).
member(U, R)  :- member(U, S), subrole(S, R).

allowed(U, D) :- member(U, R), grant(R, D), not denied(U, D).

audit(D, N)   :- GROUPBY(allowed(U2, D2), [D2], N = COUNT(U2)), D = D2.
"""


def show(maintainer) -> None:
    allowed = sorted(maintainer.relation("allowed").rows())
    print("  allowed:", allowed)
    for document, viewers in sorted(maintainer.relation("audit").rows()):
        print(f"  audit: {document} visible to {viewers} user(s)")


def main() -> None:
    db = Database()
    db.insert_rows("assigned", [("ada", "admins"), ("bob", "eng"),
                                ("cyd", "eng")])
    db.insert_rows("subrole", [("admins", "staff"), ("eng", "staff")])
    db.insert_rows("grant", [("staff", "handbook"), ("admins", "payroll")])
    db.insert_rows("denied", [("cyd", "handbook")])

    acl = ViewMaintainer.from_source(POLICY, db, strategy="dred")
    acl.initialize()
    print("initial authorization matrix:")
    show(acl)

    # --- Data change: bob is promoted into admins -------------------------
    report = acl.apply(Changeset().insert("assigned", ("bob", "admins")))
    print(f"\nbob promoted to admins ({report.seconds * 1e3:.1f} ms):")
    show(acl)

    # --- Data change: the denial on cyd is lifted -------------------------
    acl.apply(Changeset().delete("denied", ("cyd", "handbook")))
    print("\ndenial on cyd lifted:")
    show(acl)

    # --- Policy change: owners of a document can always see it ------------
    db.insert_rows("owner", [("cyd", "payroll")])
    report = acl.alter(add=["allowed(U, D) :- owner(U, D)."])
    print(
        f"\npolicy rule added (owner access) — maintained incrementally, "
        f"{report.total_changes()} tuple change(s):"
    )
    show(acl)

    # --- Policy change: revoke the role-hierarchy closure ------------------
    report = acl.alter(remove=["member(U, R) :- member(U, S), subrole(S, R)."])
    print(
        f"\npolicy rule removed (no inherited roles) — "
        f"{report.total_changes()} tuple change(s):"
    )
    show(acl)

    acl.consistency_check()
    print("\nauthorization matrix verified against recomputation ✔")


if __name__ == "__main__":
    main()
