"""A literate walkthrough of every worked example in the paper (X1–X6).

Runs each example with the exact data of the SIGMOD 1993 extended
abstract and prints the relations/counts/deltas next to what the paper
states, so the reproduction can be eyeballed in one screenful per
example.  (The test-suite equivalents live in
``tests/test_paper_examples.py``.)

Run with::

    python examples/paper_walkthrough.py
"""

from repro import Changeset, Database, ViewMaintainer
from repro.core.delta_rules import factored_delta_rules
from repro.datalog.parser import parse_rule


def banner(title: str) -> None:
    print(f"\n{'─' * 72}\n{title}\n{'─' * 72}")


def show(name, relation) -> None:
    cells = ", ".join(
        f"{''.join(map(str, row))}" + (f" {count}" if count != 1 else "")
        for row, count in sorted(relation.items())
    )
    print(f"  {name} = {{{cells}}}")


def example_1_1() -> None:
    banner("Example 1.1 — hop view; counting vs DRed on delete link(a,b)")
    links = [("a", "b"), ("b", "c"), ("b", "e"), ("a", "d"), ("d", "c")]

    db = Database()
    db.insert_rows("link", links)
    counting = ViewMaintainer.from_source(
        "hop(X, Y) :- link(X, Z), link(Z, Y).", db
    ).initialize()
    print("paper: hop(a,c) has two derivations, hop(a,e) one")
    show("hop", counting.relation("hop"))
    counting.apply(Changeset().delete("link", ("a", "b")))
    print("paper: counting deletes only hop(a,e)")
    show("hopⁿ", counting.relation("hop"))

    db2 = Database()
    db2.insert_rows("link", links)
    dred = ViewMaintainer.from_source(
        "hop(X, Y) :- link(X, Z), link(Z, Y).", db2, strategy="dred"
    ).initialize()
    report = dred.apply(Changeset().delete("link", ("a", "b")))
    stats = report.dred.stats
    print(
        "paper: DRed deletes both hop tuples, then rederives hop(a,c)\n"
        f"  overestimated={stats.overestimated} rederived={stats.rederived}"
    )


def example_4_1() -> None:
    banner("Example 4.1 — the delta rules (d1), (d2)")
    rule = parse_rule("hop(X, Y) :- link(X, Z), link(Z, Y).")
    print("paper: (d1) Δhop :- Δlink & link;  (d2) Δhop :- linkⁿ & Δlink")
    for delta_rule in factored_delta_rules(rule):
        print(f"  {delta_rule.rule}")


def example_4_2_and_5_1() -> None:
    banner("Examples 4.2 / 5.1 — full trace, duplicate vs set semantics")
    links = [("a", "b"), ("a", "d"), ("d", "c"), ("b", "c"), ("c", "h"),
             ("f", "g")]
    changes = (
        Changeset()
        .delete("link", ("a", "b"))
        .insert("link", ("d", "f"))
        .insert("link", ("a", "f"))
    )
    source = (
        "hop(X, Y) :- link(X, Z), link(Z, Y).\n"
        "tri_hop(X, Y) :- hop(X, Z), link(Z, Y).\n"
    )

    db = Database()
    db.insert_rows("link", links)
    dup = ViewMaintainer.from_source(
        source, db, semantics="duplicate"
    ).initialize()
    show("hop", dup.relation("hop"))
    show("tri_hop", dup.relation("tri_hop"))
    report = dup.apply(changes.copy())
    print("paper: Δ(hop) = {ac −1, ag, dg} ⊎ {af}")
    show("Δ(hop)", report.delta("hop"))
    print("paper: Δ(tri_hop) = {ah −1, ag}")
    show("Δ(tri_hop)", report.delta("tri_hop"))

    db2 = Database()
    db2.insert_rows("link", links)
    set_mode = ViewMaintainer.from_source(source, db2).initialize()
    report = set_mode.apply(changes.copy())
    print(
        "paper (Ex 5.1): with statement (2), Δ(hop) = {af, ag, dg} — "
        "(ac −1) is not cascaded and (ah −1) is never derived"
    )
    show("cascaded Δ(hop)", report.counting.cascaded["hop"])
    show("Δ(tri_hop)", report.delta("tri_hop"))


def example_6_1() -> None:
    banner("Example 6.1 — negation: only_tri_hop")
    links = [("a", "b"), ("a", "e"), ("a", "f"), ("a", "g"), ("b", "c"),
             ("c", "d"), ("c", "k"), ("e", "d"), ("f", "d"), ("g", "h"),
             ("h", "k")]
    db = Database()
    db.insert_rows("link", links)
    maintainer = ViewMaintainer.from_source(
        "hop(X, Y) :- link(X, Z), link(Z, Y).\n"
        "tri_hop(X, Y) :- hop(X, Z), link(Z, Y).\n"
        "only_tri_hop(X, Y) :- tri_hop(X, Y), not hop(X, Y).\n",
        db,
        semantics="duplicate",
    ).initialize()
    print("paper: hop = {ac, ad 2, ah, bd, bk, gk}; tri_hop = {ad, ak 2}; "
          "only_tri_hop = {ak 2}")
    show("hop", maintainer.relation("hop"))
    show("tri_hop", maintainer.relation("tri_hop"))
    show("only_tri_hop", maintainer.relation("only_tri_hop"))
    maintainer.apply(Changeset().delete("link", ("a", "b")))
    print("paper: (a,d) stays excluded while count(hop(a,d)) > 0 —")
    print(f"  hop(a,d) count is now "
          f"{maintainer.relation('hop').count(('a', 'd'))}, and "
          f"('a','d') in only_tri_hop: "
          f"{('a', 'd') in maintainer.relation('only_tri_hop')}")


def example_6_2() -> None:
    banner("Example 6.2 — aggregation: min_cost_hop (GROUPBY/MIN)")
    db = Database()
    db.insert_rows("link", [("a", "b", 1), ("b", "c", 2), ("b", "e", 5),
                            ("a", "d", 2), ("d", "c", 1)])
    maintainer = ViewMaintainer.from_source(
        "hop(S, D, C1 + C2) :- link(S, I, C1), link(I, D, C2).\n"
        "min_cost_hop(S, D, M) :- GROUPBY(hop(S, D, C), [S, D], "
        "M = MIN(C)).\n",
        db,
    ).initialize()
    show("min_cost_hop", maintainer.relation("min_cost_hop"))
    print("paper: inserting hop(a,b,10) can only change the a→b group, and "
          "only if the previous minimum exceeded 10")
    report = maintainer.apply(
        Changeset().insert("link", ("a", "x", 5)).insert("link", ("x", "c", 5))
    )
    print("  (new a→c path costs 10 > 3: no change to the minimum)")
    show("Δ(min_cost_hop)", report.delta("min_cost_hop"))
    report = maintainer.apply(
        Changeset().insert("link", ("a", "y", 1)).insert("link", ("y", "c", 1))
    )
    print("  (new a→c path costs 2 < 3: the group updates)")
    show("Δ(min_cost_hop)", report.delta("min_cost_hop"))


def main() -> None:
    example_1_1()
    example_4_1()
    example_4_2_and_5_1()
    example_6_1()
    example_6_2()
    print("\nall examples reproduced ✔")


if __name__ == "__main__":
    main()
