"""Active rules: trigger alerts when a maintained view changes.

Section 1 lists active databases among the applications of view
maintenance: "a rule may fire when a particular tuple is inserted into a
view."  The maintenance algorithms compute exact per-view deltas, so
triggers come for free — this example wires them to a fraud-style
monitoring scenario:

* ``exposure(Account, Total)`` — SUM of open positions per account;
* ``over_limit(Account)``     — accounts whose exposure exceeds their
  limit (join + comparison);
* a subscriber fires an "alert" whenever ``over_limit`` gains a tuple
  and an "all-clear" when it loses one.

Transactions stage multi-row updates so each business event is one
maintenance pass (and one round of trigger firings).

Run with::

    python examples/active_rules.py
"""

from repro import Database, ViewMaintainer

VIEWS = """
exposure(A, T)  :- GROUPBY(position(A2, P, V), [A2], T = SUM(V)), A = A2.
over_limit(A)   :- exposure(A, T), limit(A, L), T > L.
"""


def main() -> None:
    db = Database()
    db.insert_rows("position", [
        ("acme", "bonds", 400),
        ("acme", "fx", 300),
        ("zenith", "bonds", 150),
    ])
    db.insert_rows("limit", [("acme", 1000), ("zenith", 500)])

    monitor = ViewMaintainer.from_source(VIEWS, db).initialize()

    def on_over_limit(view, delta):
        for (account,), count in sorted(delta.items()):
            if count > 0:
                print(f"  🔔 ALERT: {account} is over its limit")
            else:
                print(f"  ✅ all-clear: {account} is back under its limit")

    monitor.subscribe("over_limit", on_over_limit)

    print("initial exposure:", sorted(monitor.relation("exposure").rows()))
    print("over limit:", sorted(monitor.relation("over_limit").rows()))

    print("\nacme opens a 500 equity position:")
    with monitor.transaction() as txn:
        txn.insert("position", ("acme", "equity", 500))
    # exposure(acme) = 1200 > 1000 → the subscriber fires.

    print("\nacme unwinds its fx book (two rows, one transaction):")
    with monitor.transaction() as txn:
        txn.delete("position", ("acme", "fx", 300))
        txn.update("position", ("acme", "equity", 500),
                   ("acme", "equity", 450))
    # exposure(acme) = 850 → all-clear fires once, not per row.

    print("\nad-hoc queries against the maintained state:")
    print("  exposure(acme, T):", monitor.query("exposure(acme, T)"))
    print("  anyone over limit?", monitor.ask("over_limit(A)"))

    monitor.consistency_check()
    print("\nstate verified against recomputation ✔")


if __name__ == "__main__":
    main()
