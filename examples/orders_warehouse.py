"""Order-processing warehouse: SQL views under bag semantics.

SQL systems "require duplicates to be retained for semantic correctness"
(Section 5), so this example runs the counting algorithm in duplicate
(bag) mode over views defined with the SQL front-end:

* ``regional_sales`` — join of orders and customers;
* ``region_stats``   — GROUP BY aggregates (COUNT/SUM/MIN);
* ``big_spenders``   — selection with arithmetic.

A stream of order insertions/cancellations is maintained incrementally;
the stored counts are exact bag multiplicities throughout.

Run with::

    python examples/orders_warehouse.py
"""

from repro import Changeset, Database
from repro.sql import Catalog, create_views

SCHEMA = (
    Catalog()
    .declare_table("orders", ["order_id", "customer", "amount"])
    .declare_table("customers", ["customer", "region"])
)

VIEWS = """
CREATE VIEW regional_sales AS
SELECT c.region, o.order_id, o.amount
FROM orders o, customers c
WHERE o.customer = c.customer;

CREATE VIEW region_stats AS
SELECT r.region, COUNT(*) AS orders, SUM(r.amount) AS revenue,
       MIN(r.amount) AS smallest
FROM regional_sales r
GROUP BY r.region;

CREATE VIEW big_spenders AS
SELECT o.customer, o.amount FROM orders o WHERE o.amount > 400;
"""

CUSTOMERS = [
    ("ada", "north"),
    ("bob", "north"),
    ("cyd", "south"),
    ("dee", "south"),
]

ORDERS = [
    (1, "ada", 120),
    (2, "ada", 450),
    (3, "bob", 80),
    (4, "cyd", 300),
    (5, "dee", 520),
]


def show_stats(maintainer) -> None:
    for region, orders, revenue, smallest in sorted(
        maintainer.relation("region_stats").rows()
    ):
        print(
            f"  {region:<6} orders={orders:<3} revenue={revenue:<6} "
            f"smallest={smallest}"
        )


def main() -> None:
    db = Database()
    db.insert_rows("customers", CUSTOMERS)
    db.insert_rows("orders", ORDERS)

    warehouse = create_views(VIEWS, SCHEMA, db, semantics="duplicate")
    warehouse.initialize()

    print("initial region statistics:")
    show_stats(warehouse)
    print("big spenders:", sorted(warehouse.relation("big_spenders").rows()))

    # --- New orders arrive ------------------------------------------------
    new_orders = Changeset()
    new_orders.insert("orders", (6, "bob", 610))
    new_orders.insert("orders", (7, "cyd", 45))
    report = warehouse.apply(new_orders)
    print(
        f"\nafter 2 new orders (maintained in {report.seconds * 1e3:.2f} ms,"
        f" strategy={report.strategy}):"
    )
    show_stats(warehouse)
    print("big spenders:", sorted(warehouse.relation("big_spenders").rows()))

    # --- An order is cancelled; note the MIN recompute case ---------------
    cancellation = Changeset().delete("orders", (7, "cyd", 45))
    report = warehouse.apply(cancellation)
    print("\nafter cancelling order 7 (the south region's smallest):")
    show_stats(warehouse)
    print("stats delta:", {
        row: count for row, count in report.delta("region_stats").items()
    })

    # --- A customer moves regions: update = delete + insert ---------------
    move = Changeset().update(
        "customers", ("dee", "south"), ("dee", "north")
    )
    warehouse.apply(move)
    print("\nafter dee moves to the north region:")
    show_stats(warehouse)

    warehouse.consistency_check()
    print("\nbag-semantics state verified against recomputation ✔")


if __name__ == "__main__":
    main()
