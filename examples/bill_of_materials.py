"""Bill of materials: derivation counts ARE the part quantities.

A classic deductive-database workload that makes the counting machinery
tangible.  Model ``uses(assembly, part)`` as a bag relation whose
*multiplicity is the per-assembly quantity* (a bike uses 2 wheels).
Then in the transitive view::

    contains(X, Y) :- uses(X, Y).
    contains(X, Y) :- contains(X, Z), uses(Z, Y).

each derivation of ``contains(bike, spoke)`` is one *path* through the
assembly DAG, and its count — the number of derivations weighted by the
bag multiplicities, exactly what duplicate-semantics counting computes —
is the product of quantities along the path, summed over paths: the
total number of spokes a bike needs.

Incremental maintenance then gives live quantity rollups: change one
sub-assembly's quantity and every affected total updates via
:class:`~repro.core.recursive_counting.RecursiveCountingView` (the BOM
graph is a DAG, so counts are finite — checked up front with the §8
finiteness test).

Run with::

    python examples/bill_of_materials.py
"""

from repro import Changeset, Database
from repro.core.recursive_counting import RecursiveCountingView
from repro.datalog.parser import parse_program

PROGRAM = parse_program("""
contains(X, Y) :- uses(X, Y).
contains(X, Y) :- contains(X, Z), uses(Z, Y).
""")

#: (assembly, part, quantity per assembly)
STRUCTURE = [
    ("bike", "frame", 1),
    ("bike", "wheel", 2),
    ("bike", "brake", 2),
    ("wheel", "rim", 1),
    ("wheel", "spoke", 32),
    ("wheel", "hub", 1),
    ("brake", "pad", 2),
    ("brake", "cable", 1),
    ("hub", "bearing", 2),
]


def rollup(view, assembly: str) -> dict:
    return {
        part: count
        for (top, part), count in sorted(view.views["contains"].items())
        if top == assembly
    }


def main() -> None:
    db = Database()
    for assembly, part, quantity in STRUCTURE:
        db.insert("uses", (assembly, part), count=quantity)

    bom = RecursiveCountingView(PROGRAM, db)
    assert bom.counts_are_finite(), "assembly graph must be a DAG"
    bom.initialize()

    print("bike requires (total quantities = derivation counts):")
    for part, quantity in rollup(bom, "bike").items():
        print(f"  {part:<8} ×{quantity}")
    # spokes: 2 wheels × 32 = 64; bearings: 2 wheels × 1 hub × 2 = 4.

    print("\nengineering change: wheels move to 36 spokes")
    bom.apply(
        Changeset()
        .delete("uses", ("wheel", "spoke"), count=32)
        .insert("uses", ("wheel", "spoke"), count=36)
    )
    print(f"  bike now needs ×{bom.views['contains'].count(('bike', 'spoke'))} "
          f"spokes (was ×64)")

    print("\nnew model: a tandem built from two bike drivetrains")
    bom.apply(Changeset().insert("uses", ("tandem", "bike"), count=2))
    print("tandem requires:")
    for part, quantity in rollup(bom, "tandem").items():
        print(f"  {part:<8} ×{quantity}")

    # Cross-check one number by hand: tandem spokes = 2 × 2 × 36.
    assert bom.views["contains"].count(("tandem", "spoke")) == 144
    print("\nquantities verified ✔")


if __name__ == "__main__":
    main()
