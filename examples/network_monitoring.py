"""Network monitoring: recursive reachability + min-cost routes, live.

The scenario the paper's introduction motivates: a link-state network
where the monitoring system keeps materialized views of

* ``reach(X, Y)``      — which routers can reach which (recursive);
* ``best_route(X, Y)`` — the cheapest known path cost (aggregation over
  recursion — the combination DRed is the first algorithm to maintain);
* ``isolated(X, Y)``   — pairs that cannot communicate (negation).

Link up/down events arrive as changesets; DRed maintains all three views
without recomputation, and the script prints what each event changed.

Run with::

    python examples/network_monitoring.py
"""

import random

from repro import Changeset, Database, ViewMaintainer
from repro.workloads import random_graph, with_costs

VIEWS = """
path(X, Y, C)      :- link(X, Y, C).
path(X, Y, C1 + C2) :- path(X, Z, C1), link(Z, Y, C2), C1 + C2 < 100.

reach(X, Y)        :- path(X, Y, C).

router(X)          :- link(X, Y, C).
router(Y)          :- link(X, Y, C).
isolated(X, Y)     :- router(X), router(Y), not reach(X, Y).

best_route(X, Y, M) :- GROUPBY(path(X, Y, C), [X, Y], M = MIN(C)).
"""


def main() -> None:
    rng = random.Random(2026)
    topology = with_costs(random_graph(12, 26, seed=7), low=1, high=9, seed=7)

    db = Database()
    db.insert_rows("link", topology)
    monitor = ViewMaintainer.from_source(VIEWS, db, strategy="dred")
    monitor.initialize()

    print(f"topology: {len(topology)} links across 12 routers")
    print(f"reachable pairs: {len(monitor.relation('reach'))}")
    print(f"isolated pairs:  {len(monitor.relation('isolated'))}")
    print(f"routes tracked:  {len(monitor.relation('best_route'))}")

    # --- Replay a stream of link events ----------------------------------
    live_links = list(topology)
    for event in range(5):
        changes = Changeset()
        if live_links and rng.random() < 0.6:
            failed = live_links.pop(rng.randrange(len(live_links)))
            changes.delete("link", failed)
            description = f"link {failed[0]}→{failed[1]} DOWN"
        else:
            while True:
                a, b = rng.randrange(12), rng.randrange(12)
                if a != b and all((a, b) != (s, d) for s, d, _ in live_links):
                    break
            fresh = (a, b, rng.randint(1, 9))
            live_links.append(fresh)
            changes.insert("link", fresh)
            description = f"link {a}→{b} UP (cost {fresh[2]})"

        report = monitor.apply(changes)
        stats = report.dred.stats
        reroutes = len(report.delta("best_route"))
        print(
            f"\nevent {event + 1}: {description}\n"
            f"  maintained in {report.seconds * 1e3:.1f} ms "
            f"(overestimated {stats.overestimated}, "
            f"rederived {stats.rederived}, inserted {stats.inserted})\n"
            f"  reachability changes: {len(report.delta('reach'))}, "
            f"route changes: {reroutes}, "
            f"isolation changes: {len(report.delta('isolated'))}"
        )

    monitor.consistency_check()
    print("\nfinal state verified against recomputation ✔")


if __name__ == "__main__":
    main()
