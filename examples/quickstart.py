"""Quickstart: the paper's Example 1.1, end to end.

Defines the ``hop`` view over a ``link`` relation, materializes it with
derivation counts, deletes ``link(a, b)``, and shows how the counting
algorithm removes exactly the tuples that lost their last derivation —
then does the same with DRed to show the delete/rederive behaviour.

Run with::

    python examples/quickstart.py
"""

from repro import Changeset, Database, ViewMaintainer


def main() -> None:
    # --- Base data: the five links of Example 1.1 ------------------------
    db = Database()
    db.insert_rows(
        "link",
        [("a", "b"), ("b", "c"), ("b", "e"), ("a", "d"), ("d", "c")],
    )

    # --- A view in Datalog (SQL works too; see orders_warehouse.py) ------
    maintainer = ViewMaintainer.from_source(
        "hop(X, Y) :- link(X, Z), link(Z, Y).", db
    ).initialize()

    hop = maintainer.relation("hop")
    print("hop after materialization:")
    for row, count in sorted(hop.items()):
        print(f"  hop{row}  count={count}")
    # hop(a, c) has two derivations (via b and via d); hop(a, e) has one.

    # --- Delete link(a, b) and maintain incrementally --------------------
    report = maintainer.apply(Changeset().delete("link", ("a", "b")))
    print(f"\nmaintained with strategy={report.strategy} "
          f"in {report.seconds * 1e3:.2f} ms")
    print("delta applied to hop:", dict(report.delta('hop').items()))
    print("hop now:", sorted(maintainer.relation("hop").rows()))
    # Counting knew hop(a,c) had a second derivation: only hop(a,e) died.

    # --- The same deletion through DRed ----------------------------------
    db2 = Database()
    db2.insert_rows(
        "link",
        [("a", "b"), ("b", "c"), ("b", "e"), ("a", "d"), ("d", "c")],
    )
    dred = ViewMaintainer.from_source(
        "hop(X, Y) :- link(X, Z), link(Z, Y).", db2, strategy="dred"
    ).initialize()
    report = dred.apply(Changeset().delete("link", ("a", "b")))
    stats = report.dred.stats
    print(
        f"\nDRed: overestimated {stats.overestimated} tuples, "
        f"rederived {stats.rederived}, net deletions {stats.deleted}"
    )
    print("hop via DRed:", sorted(dred.relation("hop").rows()))

    # --- Sanity: both agree with recomputation ---------------------------
    maintainer.consistency_check()
    dred.consistency_check()
    print("\nconsistency checks passed ✔")


if __name__ == "__main__":
    main()
