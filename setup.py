"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that environments without the ``wheel`` package (where PEP 660 editable
installs fail) can still do ``python setup.py develop`` or
``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
