"""Tests for irrelevant-update detection ([BCL89] pre-filter)."""

import pytest

from repro.core.irrelevance import RelevanceFilter
from repro.core.maintenance import ViewMaintainer
from repro.datalog.parser import parse_program
from repro.storage.changeset import Changeset
from repro.storage.database import Database

from conftest import database_with

CHEAP_SRC = "cheap(X, Y, C) :- link(X, Y, C), C < 5."


class TestRelevanceFilter:
    def test_comparison_rejects_row(self):
        relevance = RelevanceFilter(parse_program(CHEAP_SRC))
        assert relevance.is_relevant("link", ("a", "b", 3))
        assert not relevance.is_relevant("link", ("a", "b", 50))

    def test_unreferenced_relation_is_irrelevant(self):
        relevance = RelevanceFilter(parse_program(CHEAP_SRC))
        assert not relevance.is_relevant("noise", ("x",))

    def test_constant_pattern_rejects_row(self):
        relevance = RelevanceFilter(
            parse_program("from_a(Y) :- link(a, Y).")
        )
        assert relevance.is_relevant("link", ("a", "q"))
        assert not relevance.is_relevant("link", ("b", "q"))

    def test_multiple_occurrences_any_accepting_wins(self):
        source = """
        low(X) :- reading(X, V), V < 10.
        high(X) :- reading(X, V), V > 90.
        """
        relevance = RelevanceFilter(parse_program(source))
        assert relevance.is_relevant("reading", ("s1", 5))
        assert relevance.is_relevant("reading", ("s1", 95))
        assert not relevance.is_relevant("reading", ("s1", 50))

    def test_cross_subgoal_comparisons_conservative(self):
        # C < D involves another subgoal's variable: undeterminable from
        # the link occurrence alone → the row must stay relevant.
        source = "v(X) :- link(X, C), bound(D), C < D."
        relevance = RelevanceFilter(parse_program(source))
        assert relevance.is_relevant("link", ("a", 1_000_000))

    def test_negated_occurrence_counts(self):
        source = "v(X, Y) :- t(X, Y), not link(X, Y)."
        relevance = RelevanceFilter(parse_program(source))
        assert relevance.is_relevant("link", ("a", "b"))

    def test_aggregate_inner_pattern(self):
        source = "m(S, M) :- GROUPBY(link(S, fixed, C), [S], M = SUM(C))."
        relevance = RelevanceFilter(parse_program(source))
        assert relevance.is_relevant("link", ("a", "fixed", 3))
        assert not relevance.is_relevant("link", ("a", "other", 3))

    def test_incomparable_types_stay_relevant(self):
        relevance = RelevanceFilter(parse_program(CHEAP_SRC))
        assert relevance.is_relevant("link", ("a", "b", "not-a-number"))

    def test_split_changeset(self):
        relevance = RelevanceFilter(parse_program(CHEAP_SRC))
        changes = (
            Changeset()
            .insert("link", ("a", "b", 1))
            .insert("link", ("a", "c", 99))
            .delete("link", ("d", "e", 77))
        )
        relevant, skipped = relevance.split(changes)
        assert skipped == 2
        assert relevant.delta("link").to_dict() == {("a", "b", 1): 1}


class TestMaintenanceIntegration:
    def test_irrelevant_rows_skipped_but_stored(self):
        db = database_with([("a", "b", 1)])
        maintainer = ViewMaintainer.from_source(CHEAP_SRC, db).initialize()
        report = maintainer.apply(
            Changeset()
            .insert("link", ("x", "y", 99))
            .insert("link", ("x", "z", 2))
        )
        stats = report.counting.stats
        assert stats.irrelevant_skipped == 1
        # The irrelevant row is still in the base relation.
        assert ("x", "y", 99) in maintainer.relation("link")
        # The relevant one made it into the view.
        assert ("x", "z", 2) in maintainer.relation("cheap")
        maintainer.consistency_check()

    def test_results_identical_with_mixed_relevance(self):
        db = database_with([("a", "b", 1), ("b", "c", 9)])
        maintainer = ViewMaintainer.from_source(CHEAP_SRC, db).initialize()
        maintainer.apply(
            Changeset()
            .delete("link", ("b", "c", 9))   # irrelevant (was 9 ≥ 5)
            .delete("link", ("a", "b", 1))   # relevant
            .insert("link", ("q", "r", 3))
        )
        assert maintainer.relation("cheap").as_set() == {("q", "r", 3)}
        maintainer.consistency_check()

    def test_fully_irrelevant_batch_touches_no_stratum(self):
        db = database_with([("a", "b", 1)])
        maintainer = ViewMaintainer.from_source(CHEAP_SRC, db).initialize()
        report = maintainer.apply(
            Changeset().insert("link", ("p", "q", 50), count=1)
        )
        assert report.counting.stats.strata_reached == 0
        assert report.total_changes() == 0
        maintainer.consistency_check()
