"""Property-based tests (hypothesis) on the core invariants.

The big ones:

* ⊎ is a commutative group action on counted relations (Section 3);
* Theorem 4.1 — counting's delta equals the recount oracle's ground
  truth on arbitrary graphs and changesets, under both semantics;
* Theorem 7.1 — DRed's result equals recomputation on arbitrary graphs
  and changesets;
* maintenance followed by the inverse changeset restores the original
  materialization.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.recount import true_view_deltas
from repro.core.maintenance import ViewMaintainer
from repro.datalog.parser import parse_program, parse_rule
from repro.eval.stratified import materialize
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.storage.relation import CountedRelation

from conftest import HOP_TRI_SRC, ONLY_TRI_SRC, TC_SRC, database_with

# ---------------------------------------------------------------- strategies

rows = st.tuples(st.integers(0, 7), st.integers(0, 7))
counted_entries = st.dictionaries(rows, st.integers(-4, 4).filter(bool),
                                  max_size=12)

edge_lists = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
        lambda e: e[0] != e[1]
    ),
    min_size=1,
    max_size=24,
    unique=True,
)


def _relation(entries) -> CountedRelation:
    relation = CountedRelation("r")
    for row, count in entries.items():
        relation.add(row, count)
    return relation


@st.composite
def graph_and_changes(draw):
    """A graph plus a valid changeset over it (dels ⊆ edges, fresh ins)."""
    edges = draw(edge_lists)
    delete_count = draw(st.integers(0, min(3, len(edges))))
    deletions = edges[:delete_count]
    insertions = draw(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
                lambda e: e[0] != e[1] and e not in edges
            ),
            max_size=3,
            unique=True,
        )
    )
    changes = Changeset()
    for edge in deletions:
        changes.delete("link", edge)
    for edge in insertions:
        changes.insert("link", edge)
    return edges, changes


# -------------------------------------------------------------- ⊎ algebra


@given(counted_entries, counted_entries)
def test_merge_commutative(left_entries, right_entries):
    left_first = _relation(left_entries).merged(_relation(right_entries))
    right_first = _relation(right_entries).merged(_relation(left_entries))
    assert left_first.to_dict() == right_first.to_dict()


@given(counted_entries, counted_entries, counted_entries)
def test_merge_associative(a, b, c):
    left = _relation(a).merged(_relation(b)).merged(_relation(c))
    right = _relation(a).merged(_relation(b).merged(_relation(c)))
    assert left.to_dict() == right.to_dict()


@given(counted_entries)
def test_merge_inverse_cancels(entries):
    relation = _relation(entries)
    inverse = CountedRelation("inv")
    for row, count in relation.items():
        inverse.add(row, -count)
    assert relation.merged(inverse).to_dict() == {}


@given(counted_entries)
def test_no_zero_counts_stored(entries):
    relation = _relation(entries)
    assert all(count != 0 for _row, count in relation.items())


@given(counted_entries)
def test_set_view_idempotent(entries):
    relation = _relation(entries)
    once = relation.set_view()
    twice = once.set_view()
    assert once.to_dict() == twice.to_dict()


@given(counted_entries, st.lists(st.integers(0, 1), min_size=1, max_size=2))
def test_index_consistent_after_mutations(entries, positions):
    relation = _relation(entries)
    key_positions = tuple(sorted(set(positions)))
    relation.ensure_index(key_positions)
    relation.add((0, 0), 1)
    relation.discard((1, 1))
    for row in relation.rows():
        key = tuple(row[p] for p in key_positions)
        assert row in set(relation.lookup(key_positions, key))


# ------------------------------------------------------ maintenance theorems


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow],
          deadline=None)
@given(graph_and_changes(), st.sampled_from(["set", "duplicate"]))
def test_theorem_4_1_counting_matches_oracle(case, semantics):
    edges, changes = case
    program = parse_program(HOP_TRI_SRC)
    db = database_with(edges)
    truth = true_view_deltas(program, db, changes, semantics)
    maintainer = ViewMaintainer.from_source(
        HOP_TRI_SRC, db, semantics=semantics
    ).initialize()
    report = maintainer.apply(changes.copy())
    for view in ("hop", "tri_hop"):
        expected = truth[view].to_dict() if view in truth else {}
        assert report.delta(view).to_dict() == expected


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow],
          deadline=None)
@given(graph_and_changes())
def test_counting_with_negation_matches_recompute(case):
    edges, changes = case
    maintainer = ViewMaintainer.from_source(
        ONLY_TRI_SRC, database_with(edges)
    ).initialize()
    maintainer.apply(changes.copy())
    maintainer.consistency_check()


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow],
          deadline=None)
@given(graph_and_changes())
def test_theorem_7_1_dred_matches_recompute(case):
    edges, changes = case
    maintainer = ViewMaintainer.from_source(
        TC_SRC, database_with(edges), strategy="dred"
    ).initialize()
    maintainer.apply(changes.copy())
    db = database_with(edges)
    db.apply_changeset(changes)
    oracle = materialize(parse_program(TC_SRC), db)
    assert maintainer.relation("tc").as_set() == oracle["tc"].as_set()


@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow],
          deadline=None)
@given(graph_and_changes())
def test_apply_then_inverse_restores_views(case):
    edges, changes = case
    maintainer = ViewMaintainer.from_source(
        HOP_TRI_SRC, database_with(edges)
    ).initialize()
    before = {
        view: maintainer.relation(view).to_dict()
        for view in maintainer.view_names()
    }
    maintainer.apply(changes.copy())
    maintainer.apply(changes.inverted())
    after = {
        view: maintainer.relation(view).to_dict()
        for view in maintainer.view_names()
    }
    assert before == after


@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow],
          deadline=None)
@given(graph_and_changes())
def test_counting_modes_agree(case):
    edges, changes = case
    results = {}
    for mode in ("expansion", "factored"):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, database_with(edges), counting_mode=mode
        ).initialize()
        maintainer.apply(changes.copy())
        results[mode] = {
            view: maintainer.relation(view).to_dict()
            for view in maintainer.view_names()
        }
    assert results["expansion"] == results["factored"]


# ------------------------------------------------------------ parser roundtrip


simple_rules = st.sampled_from([
    "hop(X, Y) :- link(X, Z), link(Z, Y).",
    "p(X) :- q(X), not r(X).",
    "m(S, M) :- GROUPBY(u(S, C), [S], M = MIN(C)).",
    "t(X, Y, C1 + C2) :- a(X, C1), b(Y, C2), C1 < C2.",
    "f(1, 'two').",
])


@given(simple_rules)
def test_parse_str_roundtrip(source):
    rule = parse_rule(source)
    assert parse_rule(str(rule)) == rule
