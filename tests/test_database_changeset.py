"""Tests for the database store and changeset builder."""

import pytest

from repro.errors import MaintenanceError, SchemaError, UnknownRelationError
from repro.storage.changeset import Changeset, changeset_from_deltas
from repro.storage.database import Database


class TestDatabase:
    def test_create_and_fetch(self):
        db = Database()
        db.create_relation("link", 2)
        assert db.relation("link").arity == 2

    def test_create_duplicate_rejected(self):
        db = Database()
        db.create_relation("link")
        with pytest.raises(SchemaError):
            db.create_relation("link")

    def test_missing_relation_raises(self):
        with pytest.raises(UnknownRelationError):
            Database().relation("nope")

    def test_ensure_relation_idempotent(self):
        db = Database()
        first = db.ensure_relation("p", 2)
        second = db.ensure_relation("p")
        assert first is second

    def test_insert_rows(self):
        db = Database()
        db.insert_rows("link", [("a", "b"), ("b", "c")])
        assert len(db.relation("link")) == 2

    def test_delete_more_than_stored_rejected(self):
        db = Database()
        db.insert("link", ("a", "b"))
        with pytest.raises(MaintenanceError):
            db.delete("link", ("a", "b"), count=2)

    def test_drop_relation(self):
        db = Database()
        db.create_relation("p")
        db.drop_relation("p")
        assert "p" not in db

    def test_copy_is_independent(self):
        db = Database()
        db.insert("p", ("a",))
        clone = db.copy()
        clone.insert("p", ("b",))
        assert len(db.relation("p")) == 1

    def test_equality(self):
        db1, db2 = Database(), Database()
        db1.insert("p", ("a",))
        db2.insert("p", ("a",))
        assert db1 == db2
        db2.insert("p", ("b",))
        assert db1 != db2

    def test_total_rows(self):
        db = Database()
        db.insert_rows("p", [("a",), ("b",)])
        db.insert_rows("q", [("c",)])
        assert db.total_rows() == 3


class TestApplyChangeset:
    def test_apply_inserts_and_deletes(self):
        db = Database()
        db.insert_rows("link", [("a", "b"), ("b", "c")])
        changes = Changeset().delete("link", ("a", "b")).insert("link", ("x", "y"))
        db.apply_changeset(changes)
        assert db.relation("link").as_set() == {("b", "c"), ("x", "y")}

    def test_apply_validates_before_mutating(self):
        """A failing changeset must leave the database untouched."""
        db = Database()
        db.insert("link", ("a", "b"))
        changes = (
            Changeset()
            .insert("link", ("x", "y"))
            .delete("link", ("missing", "row"))
        )
        with pytest.raises(MaintenanceError):
            db.apply_changeset(changes)
        assert db.relation("link").as_set() == {("a", "b")}

    def test_apply_creates_new_relation_for_inserts(self):
        db = Database()
        db.apply_changeset(Changeset().insert("fresh", ("a",)))
        assert db.relation("fresh").count(("a",)) == 1

    def test_multiplicity_deletion_validated(self):
        db = Database()
        db.insert("p", ("a",), 2)
        db.apply_changeset(Changeset().delete("p", ("a",), 2))
        assert ("a",) not in db.relation("p")


class TestChangeset:
    def test_builder_fluent(self):
        changes = Changeset().insert("p", ("a",)).delete("p", ("b",))
        assert changes.delta("p").to_dict() == {("a",): 1, ("b",): -1}

    def test_update_is_delete_plus_insert(self):
        changes = Changeset().update("p", ("a", 1), ("a", 2))
        assert changes.delta("p").to_dict() == {("a", 1): -1, ("a", 2): 1}

    def test_insert_then_delete_cancels(self):
        changes = Changeset().insert("p", ("a",)).delete("p", ("a",))
        assert changes.is_empty()

    def test_nonpositive_counts_rejected(self):
        with pytest.raises(ValueError):
            Changeset().insert("p", ("a",), 0)
        with pytest.raises(ValueError):
            Changeset().delete("p", ("a",), -1)

    def test_counts(self):
        changes = (
            Changeset()
            .insert("p", ("a",), 2)
            .insert("q", ("b",))
            .delete("p", ("c",), 3)
        )
        assert changes.insertion_count() == 3
        assert changes.deletion_count() == 3

    def test_inverted_roundtrip(self):
        changes = Changeset().insert("p", ("a",), 2).delete("p", ("b",))
        merged = changes.copy()
        for name, delta in changes.inverted():
            merged.add_delta(name, delta)
        assert merged.is_empty()

    def test_relations_lists_nonempty_only(self):
        changes = Changeset().insert("p", ("a",)).delete("p", ("a",))
        changes.insert("q", ("b",))
        assert changes.relations() == ("q",)

    def test_copy_independent(self):
        changes = Changeset().insert("p", ("a",))
        clone = changes.copy()
        clone.insert("p", ("b",))
        assert ("b",) not in changes.delta("p")

    def test_from_deltas(self):
        changes = changeset_from_deltas({"p": {("a",): 2, ("b",): -1}})
        assert changes.delta("p").to_dict() == {("a",): 2, ("b",): -1}

    def test_repr_mentions_content(self):
        changes = Changeset().insert("p", ("a",))
        assert "p" in repr(changes)
