"""The runtime invariant sanitizer: every trap, plus the wiring."""

import threading

import pytest

from repro.analysis.sanitizer import RuntimeSanitizer, fingerprint
from repro.core.maintenance import Changeset, ViewMaintainer
from repro.errors import SanitizerError
from repro.storage.database import Database

HOP_SRC = """
hop(X, Y) :- edge(X, Z), edge(Z, Y).
"""


def sanitized_db(rows=((1, 2), (2, 3), (3, 4))):
    db = Database(sanitize=True)
    db.insert_rows("edge", rows)
    return db


class TestEnablement:
    def test_disabled_by_default(self):
        assert Database().sanitizer is None

    def test_explicit_flag_attaches_sanitizer(self):
        db = Database(sanitize=True)
        assert isinstance(db.sanitizer, RuntimeSanitizer)
        assert db.mvcc.sanitizer is db.sanitizer

    def test_explicit_false_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Database(sanitize=False).sanitizer is None

    @pytest.mark.parametrize("value", ["1", "true", "YES", "on"])
    def test_environment_enables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert Database().sanitizer is not None

    @pytest.mark.parametrize("value", ["", "0", "no", "off"])
    def test_environment_falsey_values_stay_disabled(
        self, monkeypatch, value
    ):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert Database().sanitizer is None

    def test_non_mvcc_database_has_no_sanitizer(self):
        assert Database(mvcc=False, sanitize=True).sanitizer is None

    def test_clean_workload_runs_green(self):
        db = sanitized_db()
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, db, strategy="counting"
        )
        maintainer.initialize()
        maintainer.apply(Changeset().insert("edge", (4, 5)))
        maintainer.apply(Changeset().delete("edge", (1, 2)))
        assert db.sanitizer.trapped == 0
        assert db.sanitizer.checks > 0


class TestFingerprint:
    def test_order_independent(self):
        assert fingerprint({(1,): 2, (2,): 1}) == fingerprint(
            {(2,): 1, (1,): 2}
        )

    def test_zero_counts_are_absent(self):
        assert fingerprint({(1,): 2, (2,): 0}) == fingerprint({(1,): 2})

    def test_counts_matter(self):
        assert fingerprint({(1,): 2}) != fingerprint({(1,): 1})


class TestTornPublication:
    def test_rogue_write_traps_on_pinned_read(self):
        db = sanitized_db()
        pinned = db.mvcc.pin()
        # Bypass the pre-image protocol on purpose: the fingerprint
        # recorded for `pinned` no longer matches the live rows.
        db.relation("edge")._rows[(9, 9)] = 1
        with pytest.raises(SanitizerError) as exc:
            db.mvcc.materialize("edge", pinned)
        assert exc.value.invariant == "torn-publication"
        assert exc.value.relation == "edge"
        assert exc.value.epoch == pinned
        db.mvcc.release(pinned)

    def test_concurrent_readers_all_trap(self):
        db = sanitized_db()
        pinned = db.mvcc.pin()
        db.relation("edge")._rows[(9, 9)] = 1
        go = threading.Event()
        outcomes = []

        def read():
            go.wait()
            try:
                db.mvcc.materialize("edge", pinned)
                outcomes.append(None)
            except SanitizerError as error:
                outcomes.append(error.invariant)

        threads = [threading.Thread(target=read) for _ in range(3)]
        for t in threads:
            t.start()
        go.set()
        for t in threads:
            t.join()
        assert outcomes == ["torn-publication"] * 3
        db.mvcc.release(pinned)

    def test_clean_pinned_read_passes(self):
        db = sanitized_db()
        pinned = db.mvcc.pin()
        db.insert("edge", (4, 5))  # proper autocommit, new epoch
        rel = db.mvcc.materialize("edge", pinned)
        assert (4, 5) not in rel
        db.mvcc.release(pinned)


class TestNonnegativeCounts:
    def test_negative_count_trapped_at_commit(self):
        db = sanitized_db()
        manager = db.mvcc
        manager.begin()
        db.relation("edge")._rows[(1, 2)] = -1
        with pytest.raises(SanitizerError) as exc:
            manager.commit()
        assert exc.value.invariant == "nonnegative-counts"
        assert exc.value.relation == "edge"
        # The gate fired *before* publication: still abortable once the
        # rogue write is undone.
        db.relation("edge")._rows[(1, 2)] = 1
        manager.abort()

    def test_epoch_still_abortable_after_trap(self):
        db = sanitized_db()
        epoch_before = db.epoch
        manager = db.mvcc
        manager.begin()
        db.relation("edge")._rows[(1, 2)] = -3
        with pytest.raises(SanitizerError):
            manager.commit()
        db.relation("edge")._rows[(1, 2)] = 1
        manager.abort()
        assert db.epoch == epoch_before


class TestEpochMonotonicity:
    def test_out_of_order_publish_is_trapped(self):
        sanitizer = RuntimeSanitizer()
        sanitizer.after_commit({}, 5)
        with pytest.raises(SanitizerError) as exc:
            sanitizer.before_commit({}, 5, 4)
        assert exc.value.invariant == "epoch-monotonicity"

    def test_skipped_epoch_is_trapped(self):
        sanitizer = RuntimeSanitizer()
        with pytest.raises(SanitizerError):
            sanitizer.before_commit({}, 7, 5)

    def test_thread_local_epoch_vector(self):
        sanitizer = RuntimeSanitizer()
        sanitizer.on_materialize("edge", 1, {}, 4)
        with pytest.raises(SanitizerError) as exc:
            sanitizer.on_materialize("edge", 1, {}, 3)
        assert exc.value.invariant == "epoch-monotonicity"

    def test_epoch_vector_is_per_thread(self):
        sanitizer = RuntimeSanitizer()
        sanitizer.on_materialize("edge", 1, {}, 9)
        seen = []

        def other():
            # A fresh thread starts from zero: 3 < 9 is fine here.
            sanitizer.on_materialize("edge", 1, {}, 3)
            seen.append(True)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert seen == [True]


class TestAbortReversibility:
    def test_clean_abort_passes(self):
        db = sanitized_db()
        manager = db.mvcc
        manager.begin()
        db.insert("edge", (7, 8))
        manager.abort()
        assert (7, 8) not in db.relation("edge")

    def test_unlogged_write_trapped_at_abort(self):
        db = sanitized_db()
        manager = db.mvcc
        manager.begin()
        db.relation("edge")._rows[(7, 8)] = 1  # bypasses the undo log
        with pytest.raises(SanitizerError) as exc:
            manager.abort()
        assert exc.value.invariant == "abort-reversibility"
        assert exc.value.relation == "edge"

    def test_relation_registered_mid_pass_is_exempt(self):
        db = sanitized_db()
        manager = db.mvcc
        manager.begin()
        db.insert("fresh", (1,))
        manager.abort()  # no begin-time baseline for "fresh": no trap


class TestSnapshotImmutability:
    def test_mutated_snapshot_cache_trapped_at_close(self):
        db = sanitized_db()
        snapshot = db.snapshot()
        rel = snapshot.relation("edge")
        rel._rows[(9, 9)] = 1  # caller breaks the immutability contract
        with pytest.raises(SanitizerError) as exc:
            snapshot.close()
        assert exc.value.invariant == "snapshot-immutability"
        assert exc.value.relation == "edge"

    def test_clean_snapshot_close_passes(self):
        db = sanitized_db()
        with db.snapshot() as snapshot:
            assert (1, 2) in snapshot.relation("edge")
        assert db.sanitizer.trapped == 0


class TestTheorem41:
    def build(self):
        db = sanitized_db()
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, db, strategy="counting"
        )
        maintainer.initialize()
        return db, maintainer

    def test_clean_counting_pass_holds_the_theorem(self):
        db, maintainer = self.build()
        report = maintainer.apply(Changeset().insert("edge", (4, 5)))
        assert "hop" in report.changed_views()
        assert db.sanitizer.trapped == 0

    def test_corrupted_stored_count_is_trapped(self):
        db, maintainer = self.build()
        maintainer.apply(Changeset().insert("edge", (4, 5)))
        # Corrupt one stored count through a *legitimate* epoch so only
        # the theorem check — not torn-publication — can see it.
        with db._autocommit():
            maintainer.views["hop"].add((1, 3), 7)
        with pytest.raises(SanitizerError) as exc:
            maintainer.apply(Changeset().insert("edge", (5, 6)))
        assert exc.value.invariant == "theorem-4.1"
        assert exc.value.relation == "hop"
        assert "immediate derivations" in str(exc.value)

    def test_sampling_respects_the_row_cap(self):
        db = sanitized_db()
        db.sanitizer.theorem_rows = 1
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, db, strategy="counting"
        )
        maintainer.initialize()
        checks_before = db.sanitizer.checks
        maintainer.apply(Changeset().insert("edge", (4, 5)))
        assert db.sanitizer.checks > checks_before


class TestObservability:
    def test_to_dict_shape(self):
        db = sanitized_db()
        db.insert("edge", (4, 5))
        stats = db.sanitizer.to_dict()
        assert set(stats) == {"checks", "trapped", "recorded_epochs"}
        assert stats["trapped"] == 0
        assert stats["checks"] > 0
        assert stats["recorded_epochs"] >= 1

    def test_trap_increments_the_metric(self):
        from repro.obs.metrics import get_default_registry

        db = sanitized_db()
        pinned = db.mvcc.pin()
        db.relation("edge")._rows[(9, 9)] = 1
        with pytest.raises(SanitizerError):
            db.mvcc.materialize("edge", pinned)
        db.mvcc.release(pinned)
        rendered = get_default_registry().to_prometheus()
        assert "repro_sanitizer_trapped_total" in rendered
        assert db.sanitizer.trapped == 1

    def test_history_window_is_bounded(self):
        db = Database(sanitize=True)
        db.sanitizer.history = 4
        for i in range(10):
            db.insert("edge", (i, i + 1))
        assert db.sanitizer.to_dict()["recorded_epochs"] <= 4

    def test_sever_clears_the_window(self):
        db = sanitized_db()
        for i in range(3):
            db.insert("edge", (10 + i, 11 + i))
        db.mvcc.sever()
        assert db.sanitizer.to_dict()["recorded_epochs"] == 0


class TestSoakIntegration:
    def test_run_soak_reports_sanitizer_stats(self):
        from repro.storage.mvcc_smoke import run_soak

        stats = run_soak(
            readers=2,
            passes=12,
            crash_every=0,
            journal_crash_every=0,
            breach_every=0,
            sanitize=True,
        )
        assert stats["problems"] == []
        assert stats["sanitizer"]["trapped"] == 0
        assert stats["sanitizer"]["checks"] > 0

    def test_run_soak_default_has_no_sanitizer_block(self):
        from repro.storage.mvcc_smoke import run_soak

        stats = run_soak(
            readers=1,
            passes=4,
            crash_every=0,
            journal_crash_every=0,
            breach_every=0,
        )
        assert stats["sanitizer"] is None
