"""Tests for the ViewMaintainer facade and maintenance reports."""

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.errors import (
    MaintenanceError,
    SafetyError,
    StratificationError,
    StrategyError,
    UnknownRelationError,
)
from repro.storage.changeset import Changeset
from repro.storage.database import Database

from conftest import HOP_SRC, HOP_TRI_SRC, TC_SRC, database_with


class TestStrategySelection:
    def test_auto_picks_counting_for_nonrecursive(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(HOP_SRC, example_1_1_db)
        assert maintainer.strategy == "counting"

    def test_auto_picks_bf_for_recursive(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(TC_SRC, example_1_1_db)
        assert maintainer.strategy == "bf"

    def test_unknown_strategy_rejected_up_front(self, example_1_1_db):
        # Validated before any dispatch: an unknown string must raise a
        # typed StrategyError at construction, never fall through to
        # whatever engine the dispatch defaults to.
        with pytest.raises(StrategyError, match="unknown strategy"):
            ViewMaintainer.from_source(
                TC_SRC, example_1_1_db, strategy="dredd"
            )
        with pytest.raises(StrategyError, match="'auto', 'counting'"):
            ViewMaintainer.from_source(
                HOP_SRC, example_1_1_db, strategy=""
            )

    def test_counting_on_recursive_rejected(self, example_1_1_db):
        with pytest.raises(MaintenanceError, match="recursive"):
            ViewMaintainer.from_source(
                TC_SRC, example_1_1_db, strategy="counting"
            )

    def test_dred_allowed_on_nonrecursive(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db, strategy="dred"
        ).initialize()
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert maintainer.relation("hop").as_set() == {("a", "c")}

    def test_dred_requires_set_semantics(self, example_1_1_db):
        with pytest.raises(MaintenanceError, match="set semantics"):
            ViewMaintainer.from_source(
                TC_SRC, example_1_1_db, strategy="dred", semantics="duplicate"
            )

    def test_bf_allowed_on_nonrecursive(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db, strategy="bf"
        ).initialize()
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert maintainer.relation("hop").as_set() == {("a", "c")}

    def test_bf_requires_set_semantics(self, example_1_1_db):
        with pytest.raises(StrategyError, match="set semantics"):
            ViewMaintainer.from_source(
                TC_SRC, example_1_1_db, strategy="bf", semantics="duplicate"
            )

    def test_unsafe_program_rejected_at_construction(self, example_1_1_db):
        with pytest.raises(SafetyError):
            ViewMaintainer.from_source("p(X, Y) :- link(X, Z).", example_1_1_db)

    def test_unstratified_program_rejected(self, example_1_1_db):
        with pytest.raises(StratificationError):
            ViewMaintainer.from_source(
                "p(X) :- link(X, Y), not p(X).", example_1_1_db
            )


class TestLifecycle:
    def test_apply_before_initialize_rejected(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(HOP_SRC, example_1_1_db)
        with pytest.raises(MaintenanceError, match="initialize"):
            maintainer.apply(Changeset().delete("link", ("a", "b")))

    def test_relation_before_initialize_rejected(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(HOP_SRC, example_1_1_db)
        with pytest.raises(MaintenanceError):
            maintainer.relation("hop")

    def test_initialize_returns_self(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(HOP_SRC, example_1_1_db)
        assert maintainer.initialize() is maintainer

    def test_relation_resolves_base_too(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        assert maintainer.relation("link").count(("a", "b")) == 1

    def test_unknown_relation_raises(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        with pytest.raises(UnknownRelationError):
            maintainer.relation("ghost")

    def test_view_names_hide_internal_helpers(self):
        db = database_with([("a", "b", 3)])
        maintainer = ViewMaintainer.from_source(
            "m(S, M) :- s(S), GROUPBY(link(S2, D, C), [S2], M = MIN(C)), "
            "S = S2.",
            db,
        )
        assert maintainer.view_names() == ["m"]


class TestReports:
    def test_report_fields(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        report = maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert report.strategy == "counting"
        assert report.seconds > 0
        assert report.changed_views() == ["hop"]
        assert report.total_changes() == 2
        assert report.counting is not None
        assert report.dred is None

    def test_dred_report_fields(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            TC_SRC, example_1_1_db, strategy="dred"
        ).initialize()
        report = maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert report.strategy == "dred"
        assert report.dred is not None
        assert report.counting is None

    def test_delta_for_unchanged_view_empty(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_1_1_db
        ).initialize()
        report = maintainer.apply(Changeset().insert("link", ("z1", "z2")))
        assert len(report.delta("tri_hop")) == 0


class TestConsistencyCheck:
    def test_passes_after_maintenance(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_1_1_db
        ).initialize()
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        maintainer.consistency_check()

    def test_detects_corruption(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        maintainer.views["hop"].add(("bo", "gus"), 1)
        with pytest.raises(MaintenanceError, match="diverged"):
            maintainer.consistency_check()


class TestLongSequences:
    def test_many_small_batches_stay_consistent(self):
        from repro.workloads import mixed_batch, random_graph

        edges = random_graph(20, 70, seed=8)
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, database_with(edges)
        ).initialize()
        current = edges
        for seed in range(8):
            changes, current = mixed_batch(
                "link", current, 2, 2, node_count=20, seed=seed
            )
            maintainer.apply(changes)
        maintainer.consistency_check()

    def test_apply_then_inverse_restores(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_1_1_db
        ).initialize()
        before = {
            view: maintainer.relation(view).to_dict()
            for view in maintainer.view_names()
        }
        changes = (
            Changeset().delete("link", ("a", "b")).insert("link", ("x", "y"))
        )
        maintainer.apply(changes)
        maintainer.apply(changes.inverted())
        after = {
            view: maintainer.relation(view).to_dict()
            for view in maintainer.view_names()
        }
        assert before == after
