"""Tests for range-restriction (safety) analysis."""

import pytest

from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.safety import (
    bound_variables,
    check_program_safety,
    check_rule_safety,
)
from repro.errors import SafetyError


def test_simple_join_is_safe():
    check_rule_safety(parse_rule("hop(X, Y) :- link(X, Z), link(Z, Y)."))


def test_unbound_head_variable_rejected():
    with pytest.raises(SafetyError, match="head variables"):
        check_rule_safety(parse_rule("p(X, Y) :- q(X)."))


def test_negated_subgoal_fully_bound_ok():
    check_rule_safety(
        parse_rule("only(X, Y) :- tri(X, Y), not hop(X, Y).")
    )


def test_negated_subgoal_with_free_variable_rejected():
    with pytest.raises(SafetyError, match="negated"):
        check_rule_safety(parse_rule("p(X) :- q(X), not r(X, Y)."))


def test_comparison_with_unbound_variable_rejected():
    with pytest.raises(SafetyError, match="comparison|head"):
        check_rule_safety(parse_rule("p(X) :- q(X), X < Y."))


def test_assignment_binds_variable():
    check_rule_safety(parse_rule("p(X, Y) :- q(X), Y = X + 1."))


def test_assignment_chain_binds_transitively():
    check_rule_safety(
        parse_rule("p(X, Z) :- q(X), Y = X + 1, Z = Y * 2.")
    )


def test_assignment_order_in_source_is_irrelevant():
    # Fixpoint propagation: the assignment textually precedes the binder.
    check_rule_safety(parse_rule("p(X, Y) :- Y = X + 1, q(X)."))


def test_unbound_assignment_rejected():
    with pytest.raises(SafetyError):
        check_rule_safety(parse_rule("p(Y) :- q(X), Y = Z + 1."))


def test_expression_argument_requires_bound_vars():
    # X is only used inside an expression argument, so it is never bound:
    # both the head check and the expression check legitimately fire.
    with pytest.raises(SafetyError, match="head variables|expression"):
        check_rule_safety(parse_rule("p(X) :- q(X + 1)."))


def test_expression_argument_in_nonhead_position_rejected():
    with pytest.raises(SafetyError, match="expression argument"):
        check_rule_safety(parse_rule("p(Y) :- r(Y), q(X + 1)."))


def test_expression_argument_with_binder_ok():
    check_rule_safety(parse_rule("p(X) :- r(X), q(X + 1)."))


def test_nonground_fact_rejected():
    with pytest.raises(SafetyError, match="ground"):
        check_rule_safety(parse_rule("p(X)."))


def test_ground_fact_ok():
    check_rule_safety(parse_rule("p(1, a)."))


def test_aggregate_binds_group_and_result():
    check_rule_safety(
        parse_rule("m(S, M) :- GROUPBY(h(S, C), [S], M = MIN(C)).")
    )


def test_aggregate_local_variable_leak_rejected():
    # C is local to the GROUPBY subgoal; using it in the head is unsafe
    # (reported either as a leak or as an unbound head variable).
    with pytest.raises(SafetyError, match="local|head variables"):
        check_rule_safety(
            parse_rule("m(S, C) :- GROUPBY(h(S, C), [S], M = MIN(C)).")
        )


def test_bound_variables_reports_fixpoint():
    rule = parse_rule("p(X, Z) :- q(X), Y = X + 1, Z = Y * 2.")
    assert bound_variables(rule) == {"X", "Y", "Z"}


def test_check_program_safety_walks_all_rules():
    program = parse_program("ok(X) :- q(X).\nbad(X, Y) :- q(X).")
    with pytest.raises(SafetyError):
        check_program_safety(program)
