"""Property-based tests for serialization and journal replay."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.storage.serialize import (
    changeset_from_dict,
    changeset_to_dict,
    database_from_dict,
    database_to_dict,
)

# JSON-safe-ish scalar values plus tuples (composite keys).
scalars = st.one_of(
    st.integers(-1000, 1000),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
values = st.one_of(scalars, st.tuples(scalars, scalars))
rows = st.tuples(values, values)


@given(st.dictionaries(rows, st.integers(1, 5), max_size=10))
def test_database_roundtrip_property(entries):
    db = Database()
    for row, count in entries.items():
        db.insert("t", row, count)
    assert database_from_dict(database_to_dict(db)) == db


@given(st.dictionaries(rows, st.integers(-4, 4).filter(bool), max_size=10))
def test_changeset_roundtrip_property(entries):
    changes = Changeset()
    for row, count in entries.items():
        if count > 0:
            changes.insert("t", row, count)
        else:
            changes.delete("t", row, -count)
    restored = changeset_from_dict(changeset_to_dict(changes))
    assert restored.delta("t").to_dict() == changes.delta("t").to_dict()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.dictionaries(rows, st.integers(1, 3), min_size=1, max_size=4),
        min_size=1,
        max_size=5,
    )
)
def test_journal_replay_equals_direct_application(tmp_path_factory, batches):
    from repro.storage.journal import Journal

    path = tmp_path_factory.mktemp("journal") / "log.jsonl"
    journal = Journal(str(path))
    direct = Database()
    for batch in batches:
        changes = Changeset()
        for row, count in batch.items():
            changes.insert("t", row, count)
        journal.append(changes)
        direct.apply_changeset(changes)
    replayed = Database()
    for changes in Journal(str(path)).replay():
        replayed.apply_changeset(changes)
    assert replayed == direct
