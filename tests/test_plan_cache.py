"""Plan-cache unit tests: reuse, staleness, invalidation, declared indexes.

The cache's contract has three legs:

* a cached plan is *exactly* what fresh planning would produce — the
  size-rank signature in the key forces a recompile whenever the
  relative sizes of a rule's body relations flip (join ordering breaks
  ties by size);
* ``alter()`` drops every cached artifact, so no plan or index key spec
  compiled under the old program is ever probed again;
* index key specs referenced by cached plans are *declared* on their
  relations and survive ``clear()`` / ``replace_rows()`` / ``copy()``.
"""

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.datalog.parser import parse_rule
from repro.eval.plan_cache import PlanCache
from repro.eval.rule_eval import EvalContext, Resolver, plan_body
from repro.storage.changeset import Changeset
from repro.storage.relation import CountedRelation

from conftest import EXAMPLE_1_1_LINKS, HOP_TRI_SRC, database_with


def build(plan_cache=True, source=HOP_TRI_SRC, **kwargs):
    return ViewMaintainer.from_source(
        source, database_with(EXAMPLE_1_1_LINKS), plan_cache=plan_cache,
        **kwargs,
    ).initialize()


def passes(maintainer, count=4):
    for i in range(count):
        maintainer.apply(Changeset().insert("link", (f"n{i}", "a")))
        maintainer.apply(Changeset().delete("link", (f"n{i}", "a")))


# ----------------------------------------------------------------- reuse


class TestPlanReuse:
    def test_second_pass_hits_cache(self):
        maintainer = build()
        cache = maintainer.plan_cache
        maintainer.apply(Changeset().insert("link", ("x", "a")))
        warm_misses = cache.misses
        assert warm_misses > 0  # the first pass compiled plans
        maintainer.apply(Changeset().insert("link", ("y", "a")))
        assert cache.hits > 0
        assert cache.misses == warm_misses  # nothing recompiled

    def test_steady_state_hit_rate_above_90_percent(self):
        maintainer = build()
        cache = maintainer.plan_cache
        maintainer.apply(Changeset().insert("link", ("x", "a")))
        warm_hits, warm_misses = cache.hits, cache.misses
        passes(maintainer, 5)
        steady_hits = cache.hits - warm_hits
        steady_misses = cache.misses - warm_misses
        assert steady_hits / (steady_hits + steady_misses) > 0.9

    def test_stats_surface_cache_counters(self):
        maintainer = build()
        passes(maintainer, 2)
        stats = maintainer.stats.to_dict()
        assert stats["plan_cache_hits"] == maintainer.plan_cache.hits
        assert stats["plan_cache_misses"] == maintainer.plan_cache.misses
        assert stats["index_probes"] > 0
        assert 0.0 < stats["plan_cache_hit_rate"] <= 1.0

    def test_disabled_cache_matches_enabled_results(self):
        cached = build(plan_cache=True)
        plain = build(plan_cache=False)
        assert plain.plan_cache is None
        for maintainer in (cached, plain):
            passes(maintainer, 3)
        for view in cached.view_names():
            assert cached.relation(view).to_dict() == (
                plain.relation(view).to_dict()
            ), view
        assert plain.stats.plan_cache_hits == 0
        assert plain.stats.plan_cache_misses == 0


# ------------------------------------------------------- size-rank staleness


class TestSizeSignature:
    RULE = parse_rule("p(X, Y) :- small(X, Z), big(Z, Y).")

    def _ctx(self, small_rows, big_rows):
        small = CountedRelation("small", 2)
        big = CountedRelation("big", 2)
        for i in range(small_rows):
            small.add((i, i + 1), 1)
        for i in range(big_rows):
            big.add((i, i + 1), 1)
        return EvalContext(Resolver({"small": small, "big": big}))

    def test_cached_plan_equals_fresh_plan(self):
        cache = PlanCache()
        ctx = self._ctx(small_rows=2, big_rows=8)
        compiled = cache.plan(self.RULE, None, frozenset(), ctx)
        assert list(compiled.order) == list(
            plan_body(self.RULE.body, None, ctx)
        )

    def test_size_flip_forces_recompile_matching_fresh_plan(self):
        cache = PlanCache()
        ctx = self._ctx(small_rows=2, big_rows=8)
        first = cache.plan(self.RULE, None, frozenset(), ctx)
        assert cache.misses == 1

        # Flip the relative sizes: now "small" dominates.
        flipped = self._ctx(small_rows=8, big_rows=2)
        second = cache.plan(self.RULE, None, frozenset(), flipped)
        assert cache.misses == 2  # new size-rank → new plan
        assert list(second.order) == list(
            plan_body(self.RULE.body, None, flipped)
        )
        assert first.order != second.order  # the join order really moved

        # Returning to the original ranks hits the original entry.
        again = cache.plan(self.RULE, None, frozenset(), ctx)
        assert cache.hits == 1
        assert again is first

    def test_adornment_is_part_of_the_key(self):
        cache = PlanCache()
        ctx = self._ctx(small_rows=2, big_rows=8)
        cache.plan(self.RULE, None, frozenset(), ctx)
        cache.plan(self.RULE, None, frozenset(["X"]), ctx)
        assert cache.misses == 2  # bound X indexes differently


# ------------------------------------------------------------- invalidation


class TestInvalidation:
    def test_alter_drops_cached_plans(self):
        maintainer = build(source="tc(X, Y) :- link(X, Y).")
        cache = maintainer.plan_cache
        passes(maintainer, 2)
        assert len(cache) > 0 and cache.invalidations == 0

        maintainer.alter(add=["tc(X, Y) :- link(Y, X)."])
        assert cache.invalidations > 0

        # Post-alter passes recompile under the new program and stay
        # correct — the recompute oracle agrees.
        misses_after_alter = cache.misses
        maintainer.apply(Changeset().insert("link", ("q", "r")))
        assert cache.misses > misses_after_alter
        maintainer.consistency_check()

    def test_no_stale_entries_survive_rule_removal(self):
        source = "tc(X, Y) :- link(X, Y).\ntc(X, Y) :- link(Y, X)."
        maintainer = build(source=source)
        cache = maintainer.plan_cache
        passes(maintainer, 2)
        removed = parse_rule("tc(X, Y) :- link(Y, X).")

        maintainer.alter(remove=[str(removed)])
        maintainer.apply(Changeset().insert("link", ("q", "r")))
        # Every cached plan and variant rewrite must derive from rules
        # of the *current* program: nothing mentions the removed body
        # orientation link(Y, X) anymore.
        for key in list(cache._plans) + list(cache._variants):
            for part in key:
                if hasattr(part, "head"):
                    assert part != removed
        maintainer.consistency_check()

    def test_failed_alter_also_invalidates(self):
        maintainer = build(source="tc(X, Y) :- link(X, Y).")
        cache = maintainer.plan_cache
        passes(maintainer, 2)
        with pytest.raises(Exception):
            maintainer.alter(add=["tc(X) :- not link(X, X)."])  # unsafe
        assert cache.invalidations > 0
        maintainer.apply(Changeset().insert("link", ("q", "r")))
        maintainer.consistency_check()


# --------------------------------------------------------- declared indexes


class TestDeclaredIndexes:
    def _relation(self):
        relation = CountedRelation("r", 2)
        relation.declare_index((0,))
        relation.add(("a", "b"), 1)
        relation.add(("a", "c"), 1)
        return relation

    def test_declare_survives_clear(self):
        relation = self._relation()
        relation.clear()
        assert (0,) in relation.declared_indexes()
        relation.add(("x", "y"), 1)
        assert set(relation.lookup((0,), ("x",))) == {("x", "y")}

    def test_declare_survives_replace_rows(self):
        relation = self._relation()
        relation.replace_rows({("z", "w"): 2})
        assert (0,) in relation.declared_indexes()
        assert set(relation.lookup((0,), ("z",))) == {("z", "w")}

    def test_declare_survives_copy(self):
        clone = self._relation().copy("clone")
        assert (0,) in clone.declared_indexes()
        clone.clear()
        clone.add(("p", "q"), 1)
        assert set(clone.lookup((0,), ("p",))) == {("p", "q")}

    def test_index_stays_consistent_through_mutations(self):
        relation = self._relation()
        relation.add(("d", "e"), 1)
        relation.discard(("a", "b"))
        assert set(relation.lookup((0,), ("a",))) == {("a", "c")}
        assert set(relation.lookup((0,), ("d",))) == {("d", "e")}

    def test_plan_compilation_declares_specs(self):
        maintainer = build()
        maintainer.apply(Changeset().insert("link", ("x", "a")))
        link = maintainer.database.relation("link")
        assert link.declared_indexes()  # join plans probe link by key
