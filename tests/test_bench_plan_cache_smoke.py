"""Smoke test: the plan-cache benchmark runs end-to-end and emits
well-formed ``BENCH_maintenance.json``.

Runs ``benchmarks/bench_plan_cache.py --smoke`` (toy scale — the
numbers are meaningless, only the machinery is under test) and
validates the JSON schema the full benchmark publishes.  Wired into
``make bench-smoke`` and the default ``make check``.
"""

import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO, "benchmarks", "bench_plan_cache.py")


def run_smoke(tmp_path):
    out = str(tmp_path / "bench.json")
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    completed = subprocess.run(
        [sys.executable, SCRIPT, "--smoke", "--out", out],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return out, completed.stdout


def test_smoke_emits_valid_bench_json(tmp_path):
    out, stdout = run_smoke(tmp_path)
    with open(out, encoding="utf-8") as handle:
        payload = json.load(handle)

    assert payload["benchmark"] == "plan_cache"
    assert payload["schema_version"] == 1
    assert payload["config"]["smoke"] is True

    by_name = {w["workload"]: w for w in payload["workloads"]}
    assert set(by_name) == {
        "counting-small-delta", "dred-small-delta", "batched-vs-sequential",
        "tracing-overhead", "guard-overhead", "mvcc-overhead",
        "health-overhead", "sanitize-overhead",
    }

    for name in ("counting-small-delta", "dred-small-delta"):
        workload = by_name[name]
        assert workload["cache_on_seconds"] > 0
        assert workload["cache_off_seconds"] > 0
        assert workload["speedup"] > 0
        assert 0.0 <= workload["post_warmup_hit_rate"] <= 1.0
        stats = workload["stats"]
        assert stats["passes"] == payload["config"]["passes"]
        assert stats["plan_cache_hits"] > 0
        assert stats["rules_fired"] > 0
        # Counting reports seed/propagate/apply; DRed reports
        # seed/overestimate/rederive/insert.
        assert "seed" in stats["phase_seconds"]
        assert len(stats["phase_seconds"]) >= 3

    batched = by_name["batched-vs-sequential"]
    assert batched["sequential_seconds"] > 0
    assert batched["batched_seconds"] > 0

    # The 5% no-op tracing budget held (the script exits 1 otherwise).
    overhead = by_name["tracing-overhead"]
    assert overhead["within_budget"] is True
    assert overhead["overhead_ratio"] < overhead["budget"]
    assert overhead["hook_crossings"] > 0

    # Same 5% gate for the disabled guard meter.
    guard = by_name["guard-overhead"]
    assert guard["within_budget"] is True
    assert guard["overhead_ratio"] < guard["budget"]
    assert guard["meter_crossings"] > 0

    # And for single-threaded MVCC with no snapshots open.
    mvcc = by_name["mvcc-overhead"]
    assert mvcc["within_budget"] is True
    assert mvcc["overhead_ratio"] < mvcc["budget"]
    assert mvcc["write_crossings"] > 0
    assert mvcc["rows_versioned"] > 0

    # And for the detached health layer (two is-None checks per pass).
    health = by_name["health-overhead"]
    assert health["within_budget"] is True
    assert health["overhead_ratio"] < health["budget"]
    assert health["health_crossings"] == 2 * payload["config"]["passes"]

    # And for the detached runtime sanitizer (four protocol edges per
    # pass; the gate is on the is-None noop bound, the enabled path is
    # informational).
    sanitize = by_name["sanitize-overhead"]
    assert sanitize["within_budget"] is True
    assert sanitize["overhead_ratio"] < sanitize["budget"]
    assert sanitize["sanitize_crossings"] == 4 * payload["config"]["passes"]
    assert sanitize["enabled_seconds"] > 0

    # Engine telemetry rides along in every bench document.
    assert "metrics" in payload["telemetry"]

    # Human-readable lines mirror the JSON.
    assert "counting-small-delta" in stdout
    assert "tracing-overhead" in stdout
    assert out in stdout
