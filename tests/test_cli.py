"""Tests for the interactive shell (repro.cli)."""

import pytest

from repro.cli import Shell, split_program
from repro.datalog.parser import parse_program
from repro.storage.database import Database
from repro.storage.journal import Journal

PROGRAM = """
link(a, b).
link(b, c).
link(b, e).
link(a, d).
link(d, c).
hop(X, Y) :- link(X, Z), link(Z, Y).
"""


@pytest.fixture
def shell() -> Shell:
    return Shell(PROGRAM)


class TestSplitProgram:
    def test_seed_facts_extracted(self):
        program, facts = split_program(parse_program(PROGRAM))
        assert len(facts) == 5
        assert len(program) == 1
        assert "link" in program.edb_predicates

    def test_predicate_with_rules_keeps_its_facts(self):
        source = "p(1). p(X) :- q(X)."
        program, facts = split_program(parse_program(source))
        assert facts == []
        assert len(program) == 2


class TestShellCommands:
    def test_show_view(self, shell):
        output = shell.execute("show hop")
        assert "hop('a', 'c')  ×2" in output
        assert "hop('a', 'e')" in output

    def test_stage_and_commit(self, shell):
        assert "staged" in shell.execute("+ link(c, f)")
        output = shell.execute("commit")
        assert "maintained" in output
        assert "counting" in output
        assert "hop('b', 'f')" in shell.execute("show hop")

    def test_delete_flow(self, shell):
        shell.execute("- link(a, b)")
        shell.execute("commit")
        output = shell.execute("show hop")
        assert "×2" not in output
        assert "('a', 'e')" not in output

    def test_commit_without_staged(self, shell):
        assert shell.execute("commit") == "nothing staged"

    def test_discard(self, shell):
        shell.execute("+ link(z, z2)")
        assert "discard" in shell.execute("discard")
        assert shell.execute("commit") == "nothing staged"

    def test_views_and_rules(self, shell):
        assert shell.execute("views") == "hop"
        assert "hop(X, Y) :- link(X, Z), link(Z, Y)." in shell.execute("rules")

    def test_explain_prints_delta_rules(self, shell):
        output = shell.execute("explain")
        assert "Δ:hop" in output
        assert "Δ:link" in output

    def test_check(self, shell):
        assert "consistent" in shell.execute("check")

    def test_alter_add_and_remove(self, shell):
        output = shell.execute("alter + hop(X, Y) :- link(Y, X).")
        assert "rule added" in output
        assert ("b", "a") in shell.maintainer.relation("hop")
        output = shell.execute("alter - hop(X, Y) :- link(Y, X).")
        assert "rule removed" in output
        assert ("b", "a") not in shell.maintainer.relation("hop")

    def test_error_reported_not_raised(self, shell):
        output = shell.execute("- link(nope, nope)")
        shell.execute("commit")  # may be empty or error; shell must survive
        output = shell.execute("show ghost")
        assert output.startswith("error:")

    def test_nonground_update_rejected(self, shell):
        assert "ground" in shell.execute("+ link(X, b)")

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.execute("frobnicate")

    def test_comments_and_blanks_ignored(self, shell):
        assert shell.execute("") == ""
        assert shell.execute("% comment") == ""

    def test_quit_sets_done(self, shell):
        assert shell.execute("quit") == "bye"
        assert shell.done

    def test_help(self, shell):
        assert "commit" in shell.execute("help")

    def test_save(self, shell, tmp_path):
        path = tmp_path / "snap.json"
        assert shell.execute(f"save {path}") == "saved"
        from repro.storage.serialize import load_database

        assert ("a", "b") in load_database(str(path)).relation("link")


class TestShellConstruction:
    def test_with_external_database(self):
        db = Database()
        db.insert_rows("link", [("x", "y"), ("y", "z")])
        shell = Shell("hop(X, Y) :- link(X, Z), link(Z, Y).", db)
        assert "hop('x', 'z')" in shell.execute("show hop")

    def test_strategy_forwarded(self):
        shell = Shell(PROGRAM, strategy="dred")
        assert shell.maintainer.strategy == "dred"
        shell.execute("- link(a, b)")
        assert "dred" in shell.execute("commit")


class TestDurabilityCommands:
    def _journaled(self, tmp_path, **kwargs):
        return Shell(
            PROGRAM,
            journal=Journal(str(tmp_path / "log.jsonl")),
            snapshot_path=str(tmp_path / "snap.json"),
            **kwargs,
        )

    def test_checkpoint_command(self, shell, tmp_path):
        journaled = self._journaled(tmp_path)
        journaled.execute("+ link(c, f)")
        journaled.execute("commit")
        output = journaled.execute("checkpoint")
        assert "watermark 1" in output

    def test_checkpoint_without_journal_reports_error(self, shell):
        assert shell.execute("checkpoint").startswith("error:")

    def test_status_reports_journal_and_consistency(self, shell, tmp_path):
        assert "journal: not attached" in shell.execute("status")
        journaled = self._journaled(tmp_path)
        journaled.execute("+ link(c, f)")
        journaled.execute("commit")
        output = journaled.execute("status")
        assert "journal: attached, last seq 1" in output
        assert "consistent with recomputation" in output

    def test_status_flags_divergence_and_heal_fixes_it(self, shell):
        shell.maintainer.views["hop"].add(("z", "z"), 1)
        assert "DIVERGED" in shell.execute("status")
        output = shell.execute("heal")
        assert "healed 1 view(s)" in output
        assert "consistent" in shell.execute("check")

    def test_heal_on_healthy_state(self, shell):
        assert "nothing healed" in shell.execute("heal")

    def test_recovered_shell_skips_seed_facts(self, tmp_path):
        # Session one: journaled work, snapshot written on attach.
        first = self._journaled(tmp_path)
        first.execute("+ link(c, f)")
        first.execute("commit")
        first.maintainer._journal.close()

        # Session two: rebuilt from disk; seed facts must NOT be
        # re-inserted on top of the snapshot.
        second = Shell.recovered(
            PROGRAM,
            str(tmp_path / "snap.json"),
            Journal(str(tmp_path / "log.jsonl")),
        )
        assert second.database.relation("link").count(("a", "b")) == 1
        assert "hop('b', 'f')" in second.execute("show hop")
        assert "consistent" in second.execute("check")
        # And it keeps journaling.
        second.execute("+ link(f, g)")
        second.execute("commit")
        assert second.maintainer.watermark == 2


class TestMain:
    def test_main_recover_round_trip(self, tmp_path, capsys, monkeypatch):
        import io
        import sys

        from repro.cli import main

        program_path = tmp_path / "views.dl"
        program_path.write_text(PROGRAM)
        journal = str(tmp_path / "log.jsonl")
        snapshot = str(tmp_path / "snap.json")

        monkeypatch.setattr(sys, "stdin", io.StringIO("+ link(c, f)\ncommit\nquit\n"))
        assert main([
            str(program_path), "--journal", journal, "--snapshot", snapshot,
        ]) == 0
        capsys.readouterr()

        monkeypatch.setattr(sys, "stdin", io.StringIO("show hop\nstatus\nquit\n"))
        assert main([
            str(program_path), "--journal", journal, "--snapshot", snapshot,
            "--recover",
        ]) == 0
        output = capsys.readouterr().out
        assert "hop('b', 'f')" in output
        assert "consistent with recomputation" in output

    def test_main_recover_requires_journal_and_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        program_path = tmp_path / "views.dl"
        program_path.write_text(PROGRAM)
        assert main([str(program_path), "--recover"]) == 1
        assert "--recover requires" in capsys.readouterr().err


    def test_main_script_mode(self, tmp_path, capsys, monkeypatch):
        import io
        import sys

        from repro.cli import main

        program_path = tmp_path / "views.dl"
        program_path.write_text(PROGRAM)
        monkeypatch.setattr(
            sys, "stdin", io.StringIO("+ link(c, f)\ncommit\nshow hop\nquit\n")
        )
        assert main([str(program_path)]) == 0
        output = capsys.readouterr().out
        assert "hop('b', 'f')" in output
        assert "bye" in output

    def test_main_bad_program(self, tmp_path, capsys):
        from repro.cli import main

        program_path = tmp_path / "bad.dl"
        program_path.write_text("p(X) :- q(X, Y).\np(X) :- p(X), not p(X).")
        assert main([str(program_path)]) == 1
        assert "error" in capsys.readouterr().err


class TestStatusJsonSchema:
    def test_status_document_validates(self, shell, tmp_path):
        import json

        from repro.obs.schema import validate_status

        shell.execute("+ link(c, f)")
        shell.execute("commit")
        document = json.loads(shell.execute("status --json"))
        assert validate_status(document) == []
        assert document["health"]["slo"] == {"enabled": False}
        assert document["health"]["profiler"] == {"enabled": False}

        journaled = Shell(
            PROGRAM,
            journal=Journal(str(tmp_path / "log.jsonl")),
            snapshot_path=str(tmp_path / "snap.json"),
            slos=[{"view": "hop", "objective": "freshness_lag",
                   "target": 0}],
            profile=True,
        )
        journaled.execute("+ link(c, f)")
        journaled.execute("commit")
        document = json.loads(journaled.execute("status --json"))
        assert validate_status(document) == []
        assert document["journal"]["attached"] is True
        assert document["health"]["slo"]["enabled"] is True
        assert document["health"]["slo"]["passes_evaluated"] == 1
        assert document["health"]["profiler"]["enabled"] is True

    def test_validator_rejects_malformed_documents(self, shell):
        import json

        from repro.obs.schema import validate_status

        document = json.loads(shell.execute("status --json"))
        missing = dict(document)
        del missing["health"]
        assert any("health" in p for p in validate_status(missing))

        wrong_type = dict(document)
        wrong_type["consistent"] = "yes"
        assert any("consistent" in p for p in validate_status(wrong_type))

        unknown = dict(document)
        unknown["surprise"] = 1
        assert any("surprise" in p for p in validate_status(unknown))

        bad_breaker = json.loads(shell.execute("status --json"))
        bad_breaker["guard"]["breaker"] = "molten"
        assert any("breaker" in p for p in validate_status(bad_breaker))


class TestTraceTailTruncation:
    def test_unwrapped_tail_has_no_marker(self, shell):
        import json

        shell.execute("+ link(c, f)")
        shell.execute("commit")
        lines = shell.execute("trace tail 5").splitlines()
        assert all("truncated" not in line for line in lines)
        json.loads(lines[0])  # every line is a JSON event

    def test_wrapped_tail_leads_with_truncation_marker(self):
        import json

        shell = Shell(PROGRAM, ring_capacity=4)
        for index in range(6):
            shell.execute(f"+ link(c, f{index})")
            shell.execute("commit")
        assert shell.ring.truncated
        lines = shell.execute("trace tail 3").splitlines()
        marker = json.loads(lines[0])
        assert marker["truncated"] is True
        assert marker["dropped"] == shell.ring.dropped > 0
        assert len(lines) == 4  # marker + the 3 requested events


class TestHealthCommands:
    @pytest.fixture
    def health_shell(self):
        return Shell(
            PROGRAM,
            slos=[
                {"view": "hop", "objective": "freshness_lag", "target": 0},
                {"view": "hop", "objective": "pass_duration_p99",
                 "target": 10.0},
            ],
            profile=True,
        )

    def test_health_command_reports_slos(self, health_shell):
        health_shell.execute("+ link(c, f)")
        health_shell.execute("commit")
        output = health_shell.execute("health")
        assert "1 pass(es) evaluated against 2 SLO(s)" in output
        assert "[ok] hop/freshness_lag" in output
        assert "0 alert(s) active" in output

    def test_health_without_slos(self, shell):
        assert "no SLOs configured" in shell.execute("health")

    def test_profile_command_renders_and_dumps_json(self, health_shell):
        import json

        from repro.obs.schema import validate_profile_report

        health_shell.execute("+ link(c, f)")
        health_shell.execute("commit")
        output = health_shell.execute("profile hop")
        assert "p99" in output
        assert "hop" in output
        report = json.loads(health_shell.execute("profile --json"))
        assert validate_profile_report(report) == []

    def test_profile_without_profiler(self, shell):
        assert "profiler disabled" in shell.execute("profile")

    def test_top_once_renders_plain_frame(self, health_shell):
        health_shell.execute("+ link(c, f)")
        health_shell.execute("commit")
        frame = health_shell.execute("top --once")
        assert "repro top" in frame
        assert "health (SLOs)" in frame
        assert "staleness lag" in frame
        assert "\x1b[" not in frame

    def test_top_repaints_with_ansi(self, health_shell):
        frame = health_shell.execute("top")
        assert frame.startswith("\x1b[H\x1b[2J")

    def test_main_slo_flag_loads_spec(self, tmp_path, capsys, monkeypatch):
        import io
        import json
        import sys

        from repro.cli import main

        program_path = tmp_path / "views.dl"
        program_path.write_text(PROGRAM)
        slo_path = tmp_path / "slos.json"
        slo_path.write_text(json.dumps([
            {"view": "hop", "objective": "freshness_lag", "target": 0},
        ]))
        monkeypatch.setattr(
            sys,
            "stdin",
            io.StringIO("+ link(c, f)\ncommit\nhealth\nquit\n"),
        )
        assert main([
            str(program_path), "--slo", str(slo_path), "--profile",
        ]) == 0
        output = capsys.readouterr().out
        assert "1 pass(es) evaluated against 1 SLO(s)" in output

    def test_main_bad_slo_spec(self, tmp_path, capsys):
        from repro.cli import main

        program_path = tmp_path / "views.dl"
        program_path.write_text(PROGRAM)
        bad = tmp_path / "slos.json"
        bad.write_text('[{"view": "hop", "objective": "nope"}]')
        assert main([str(program_path), "--slo", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestQueryAndWhy:
    def test_query_with_solutions(self, shell):
        output = shell.execute("? hop(a, X)")
        assert "2 solution(s)" in output
        assert "X = 'c'" in output
        assert "X = 'e'" in output

    def test_query_boolean_yes(self, shell):
        assert shell.execute("? hop(a, c)") == "yes"

    def test_query_no_solutions(self, shell):
        assert shell.execute("? hop(q, R)") == "no solutions"

    def test_query_with_negation(self, shell):
        output = shell.execute("? link(a, X), not hop(a, X)")
        assert "X = 'b'" in output
        assert "X = 'd'" in output

    def test_why_renders_tree(self, shell):
        output = shell.execute("why hop(a, c)")
        assert "hop('a', 'c')" in output
        assert "(base fact)" in output

    def test_why_non_member(self, shell):
        assert "not in the view" in shell.execute("why hop(z, z)")

    def test_why_base_fact(self, shell):
        output = shell.execute("why link(a, b)")
        assert "(base fact)" in output

    def test_why_missing_base_fact(self, shell):
        assert "not in the view" in shell.execute("why link(z, z)")
