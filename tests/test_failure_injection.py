"""Failure-injection tests: invalid inputs, corrupted state, atomicity."""

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.errors import (
    DivergenceError,
    MaintenanceError,
    ParseError,
    SafetyError,
    SchemaError,
    StratificationError,
)
from repro.storage.changeset import Changeset
from repro.storage.database import Database

from conftest import HOP_SRC, HOP_TRI_SRC, TC_SRC, database_with


class TestInvalidChangesets:
    def test_overdeletion_rejected_before_any_mutation(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        hop_before = maintainer.relation("hop").to_dict()
        link_before = example_1_1_db.relation("link").to_dict()
        changes = (
            Changeset()
            .insert("link", ("new", "edge"))
            .delete("link", ("a", "b"), count=5)
        )
        with pytest.raises(MaintenanceError):
            maintainer.apply(changes)
        # Nothing may have leaked into the stored state.
        assert example_1_1_db.relation("link").to_dict() == link_before
        assert maintainer.relation("hop").to_dict() == hop_before
        maintainer.consistency_check()

    def test_dred_overdeletion_keeps_state_usable(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            TC_SRC, example_1_1_db, strategy="dred"
        ).initialize()
        with pytest.raises(MaintenanceError):
            maintainer.apply(Changeset().delete("link", ("no", "pe")))
        maintainer.apply(Changeset().insert("link", ("e", "f")))
        maintainer.consistency_check()

    def test_derived_relation_change_rejected(self, example_1_1_db):
        for strategy in ("counting", "dred"):
            maintainer = ViewMaintainer.from_source(
                HOP_SRC, example_1_1_db.copy(), strategy=strategy
            ).initialize()
            with pytest.raises(MaintenanceError, match="derived"):
                maintainer.apply(Changeset().insert("hop", ("x", "y")))


class TestBadPrograms:
    def test_parse_error(self, example_1_1_db):
        with pytest.raises(ParseError):
            ViewMaintainer.from_source("hop(X Y) :- link.", example_1_1_db)

    def test_unsafe_rule(self, example_1_1_db):
        with pytest.raises(SafetyError):
            ViewMaintainer.from_source(
                "hop(X, Y) :- link(X, Z).", example_1_1_db
            )

    def test_unstratified_negation(self, example_1_1_db):
        with pytest.raises(StratificationError):
            ViewMaintainer.from_source(
                "win(X) :- move(X, Y), not win(Y)."
                "win(X) :- win(X).",
                example_1_1_db,
            )

    def test_arity_conflict(self, example_1_1_db):
        with pytest.raises(SchemaError, match="arity"):
            ViewMaintainer.from_source(
                "a(X) :- link(X, Y). b(X) :- link(X).", example_1_1_db
            )


class TestCorruptionDetection:
    def test_negative_stored_count_detected(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        # Corrupt the stored view, then run a maintenance pass whose
        # deltas drive the count below zero.
        maintainer.views["hop"].set_count(("a", "c"), 1)
        maintainer.views["hop"].add(("a", "e"), -2)  # now −1
        with pytest.raises(MaintenanceError, match="negative"):
            maintainer.views["hop"].assert_nonnegative()

    def test_consistency_check_reports_view_name(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_1_1_db
        ).initialize()
        maintainer.views["tri_hop"].add(("zz", "ww"), 1)
        with pytest.raises(MaintenanceError, match="tri_hop"):
            maintainer.consistency_check()


class TestDivergenceRecovery:
    def test_divergence_reported_with_guidance(self):
        from repro.core.recursive_counting import RecursiveCountingView
        from repro.datalog.parser import parse_program

        view = RecursiveCountingView(
            parse_program(TC_SRC),
            database_with([("a", "b"), ("b", "a")]),
            max_rounds=16,
        )
        with pytest.raises(DivergenceError, match="DRed"):
            view.initialize()

    def test_dred_handles_what_counting_cannot(self):
        # The same cyclic graph maintained fine by DRed.
        maintainer = ViewMaintainer.from_source(
            TC_SRC, database_with([("a", "b"), ("b", "a")]), strategy="dred"
        ).initialize()
        maintainer.apply(Changeset().delete("link", ("b", "a")))
        assert maintainer.relation("tc").as_set() == {("a", "b")}


class TestEdgeCaseData:
    def test_empty_database(self):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, Database()
        ).initialize()
        report = maintainer.apply(Changeset().insert("link", ("a", "b")))
        assert report.total_changes() == 0
        maintainer.apply(Changeset().insert("link", ("b", "c")))
        assert maintainer.relation("hop").as_set() == {("a", "c")}

    def test_self_loop_edges(self):
        maintainer = ViewMaintainer.from_source(
            TC_SRC, database_with([("a", "a")]), strategy="dred"
        ).initialize()
        assert maintainer.relation("tc").as_set() == {("a", "a")}
        maintainer.apply(Changeset().delete("link", ("a", "a")))
        assert len(maintainer.relation("tc")) == 0

    def test_heterogeneous_value_types(self):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, database_with([(1, "x"), ("x", (2, 3))])
        ).initialize()
        assert maintainer.relation("hop").as_set() == {(1, (2, 3))}

    def test_wide_rows(self):
        db = Database()
        db.insert("wide", tuple(range(10)))
        source = (
            "projected(A, J) :- "
            "wide(A, B, C, D, E, F, G, H, I, J)."
        )
        maintainer = ViewMaintainer.from_source(source, db).initialize()
        assert maintainer.relation("projected").as_set() == {(0, 9)}

    def test_unit_arity_relations(self):
        db = Database()
        db.insert_rows("seen", [("a",), ("b",)])
        maintainer = ViewMaintainer.from_source(
            "pair(X, Y) :- seen(X), seen(Y), X != Y.", db
        ).initialize()
        assert maintainer.relation("pair").as_set() == {
            ("a", "b"), ("b", "a"),
        }
        maintainer.apply(Changeset().insert("seen", ("c",)))
        assert len(maintainer.relation("pair")) == 6
