"""Tests for the error hierarchy and the benchmark CLI entry point."""

import pytest

from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ParseError",
            "SafetyError",
            "StratificationError",
            "SchemaError",
            "UnknownRelationError",
            "EvaluationError",
            "MaintenanceError",
            "DivergenceError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_unknown_relation_is_schema_error(self):
        assert issubclass(errors.UnknownRelationError, errors.SchemaError)

    def test_divergence_is_maintenance_error(self):
        assert issubclass(errors.DivergenceError, errors.MaintenanceError)

    def test_parse_error_position_formatting(self):
        error = errors.ParseError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3
        assert error.column == 7

    def test_parse_error_without_position(self):
        error = errors.ParseError("bad")
        assert str(error) == "bad"

    def test_catching_base_class_catches_everything(self):
        from repro import Database, ViewMaintainer

        with pytest.raises(errors.ReproError):
            ViewMaintainer.from_source("p(X :-", Database())


class TestBenchCLI:
    def test_selected_experiment_runs(self, capsys, monkeypatch):
        from repro.bench import __main__ as bench_main
        from repro.bench.harness import ExperimentResult

        def fake_experiment():
            result = ExperimentResult("E1", "Fake", "claim", ["a"])
            result.add_row(a=1)
            return result

        monkeypatch.setattr(
            bench_main, "EXPERIMENTS", {"E1": fake_experiment}
        )
        assert bench_main.main(["E1"]) == 0
        output = capsys.readouterr().out
        assert "### E1 — Fake" in output

    def test_unknown_experiment_rejected(self, capsys, monkeypatch):
        from repro.bench import __main__ as bench_main

        with pytest.raises(SystemExit):
            bench_main.main(["E999"])

    def test_out_appends_to_file(self, tmp_path, monkeypatch, capsys):
        from repro.bench import __main__ as bench_main
        from repro.bench.harness import ExperimentResult

        def fake_experiment():
            result = ExperimentResult("E2", "Fake2", "claim", ["a"])
            result.add_row(a=2)
            return result

        monkeypatch.setattr(
            bench_main, "EXPERIMENTS", {"E2": fake_experiment}
        )
        target = tmp_path / "out.md"
        target.write_text("existing\n")
        assert bench_main.main(["E2", "--out", str(target)]) == 0
        content = target.read_text()
        assert content.startswith("existing")
        assert "### E2 — Fake2" in content

    def test_all_experiments_default_order(self, monkeypatch, capsys):
        from repro.bench import __main__ as bench_main
        from repro.bench.harness import ExperimentResult

        ran = []

        def make(experiment_id):
            def runner():
                ran.append(experiment_id)
                return ExperimentResult(experiment_id, "t", "c", ["x"])

            return runner

        monkeypatch.setattr(
            bench_main,
            "EXPERIMENTS",
            {"E2": make("E2"), "E10": make("E10"), "E1": make("E1")},
        )
        assert bench_main.main([]) == 0
        assert ran == ["E1", "E2", "E10"]  # numeric, not lexicographic
