"""White-box tests of DRed's per-step machinery (§7)."""

import pytest

from repro.core.dred import DRedMaintenance
from repro.core.maintenance import ViewMaintainer
from repro.core.normalize import normalize_program
from repro.datalog.parser import parse_program
from repro.datalog.stratify import stratify
from repro.eval.stratified import materialize
from repro.storage.changeset import Changeset
from repro.storage.database import Database

from conftest import TC_SRC, database_with


def _setup(source, base_rows):
    normalized = normalize_program(parse_program(source))
    strat = stratify(normalized.program)
    db = Database()
    for name, rows in base_rows.items():
        db.insert_rows(name, rows)
    views = {
        name: relation.set_view(name)
        for name, relation in materialize(
            normalized.program, db, "set", strat
        ).items()
    }
    return normalized, strat, db, views


class TestBaseChangeCanonicalization:
    def test_duplicate_insert_dropped(self):
        normalized, strat, db, views = _setup(TC_SRC, {"link": [(0, 1)]})
        run = DRedMaintenance(normalized, strat, db, views, {})
        run.run(Changeset().insert("link", (0, 1)))
        assert run.stats.inserted == 0
        assert db.relation("link").count((0, 1)) == 1

    def test_old_state_saved_before_base_mutation(self):
        normalized, strat, db, views = _setup(TC_SRC, {"link": [(0, 1)]})
        run = DRedMaintenance(normalized, strat, db, views, {})
        run.run(Changeset().insert("link", (1, 2)))
        assert (1, 2) not in run._old["link"]
        assert (1, 2) in db.relation("link")

    def test_multiplicity_in_changeset_collapses_to_set(self):
        normalized, strat, db, views = _setup(TC_SRC, {"link": [(0, 1)]})
        run = DRedMaintenance(normalized, strat, db, views, {})
        run.run(Changeset().insert("link", (5, 6), count=3))
        assert db.relation("link").count((5, 6)) == 1


class TestOverestimateGuard:
    def test_overestimate_stays_inside_materialization(self):
        """The trailing guard literal keeps δ⁻(p) ⊆ P."""
        edges = [(0, 1), (1, 2), (2, 3), (10, 11)]
        normalized, strat, db, views = _setup(TC_SRC, {"link": edges})
        tc_size = len(views["tc"])
        run = DRedMaintenance(normalized, strat, db, views, {})
        run.run(Changeset().delete("link", (1, 2)))
        assert run.stats.overestimated <= tc_size

    def test_unrelated_component_untouched(self):
        edges = [(0, 1), (1, 2), (10, 11), (11, 12)]
        normalized, strat, db, views = _setup(TC_SRC, {"link": edges})
        run = DRedMaintenance(normalized, strat, db, views, {})
        run.run(Changeset().delete("link", (0, 1)))
        # The 10-11-12 component is unaffected.
        assert (10, 12) in views["tc"]
        assert (10, 11) in views["tc"]


class TestStratumByStratum:
    SRC = TC_SRC + """
    node(X) :- link(X, Y).
    node(Y) :- link(X, Y).
    unreachable(X, Y) :- node(X), node(Y), not tc(X, Y).
    """

    def test_old_copies_kept_for_upper_strata(self):
        # Node 2 keeps an outgoing edge, so it stays in `node` and the
        # broken reachability surfaces in `unreachable`.
        normalized, strat, db, views = _setup(
            self.SRC, {"link": [(0, 1), (1, 2), (2, 3)]}
        )
        run = DRedMaintenance(normalized, strat, db, views, {})
        run.run(Changeset().delete("link", (1, 2)))
        # tc was updated before unreachable's stratum ran; the old copy
        # must still hold the pre-change closure.
        assert (0, 2) in run._old["tc"]
        assert (0, 2) not in views["tc"]
        assert (0, 2) in views["unreachable"]

    def test_net_deltas_filtered_per_predicate(self):
        normalized, strat, db, views = _setup(
            self.SRC, {"link": [(0, 1), (1, 2), (2, 3)]}
        )
        run = DRedMaintenance(normalized, strat, db, views, {})
        result = run.run(Changeset().delete("link", (1, 2)))
        assert set(result.deletions["tc"].rows()) == {
            (1, 2), (0, 2), (1, 3), (0, 3),
        }
        assert (0, 2) in result.insertions["unreachable"]
        # Every node still has an incident edge: node is unchanged.
        assert "node" not in result.deletions


class TestResultDelta:
    def test_delta_merges_both_directions(self):
        maintainer = ViewMaintainer.from_source(
            TC_SRC, database_with([(0, 1)]), strategy="dred"
        ).initialize()
        report = maintainer.apply(
            Changeset().delete("link", (0, 1)).insert("link", (1, 2))
        )
        assert report.delta("tc").to_dict() == {(0, 1): -1, (1, 2): 1}

    def test_overdeletion_ratio_property(self):
        maintainer = ViewMaintainer.from_source(
            TC_SRC, database_with([(0, 1), (1, 2), (0, 2)]), strategy="dred"
        ).initialize()
        report = maintainer.apply(Changeset().delete("link", (0, 1)))
        stats = report.dred.stats
        assert stats.overdeletion_ratio >= 1.0
