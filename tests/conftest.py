"""Shared fixtures: the paper's example databases and small graphs."""

from __future__ import annotations

import pytest

from repro.storage.database import Database

#: Example 1.1's link relation.
EXAMPLE_1_1_LINKS = [("a", "b"), ("b", "c"), ("b", "e"), ("a", "d"), ("d", "c")]

#: Example 4.2's initial link relation.
EXAMPLE_4_2_LINKS = [
    ("a", "b"),
    ("a", "d"),
    ("d", "c"),
    ("b", "c"),
    ("c", "h"),
    ("f", "g"),
]

#: Example 6.1's link relation.
EXAMPLE_6_1_LINKS = [
    ("a", "b"),
    ("a", "e"),
    ("a", "f"),
    ("a", "g"),
    ("b", "c"),
    ("c", "d"),
    ("c", "k"),
    ("e", "d"),
    ("f", "d"),
    ("g", "h"),
    ("h", "k"),
]

HOP_SRC = "hop(X, Y) :- link(X, Z), link(Z, Y)."

HOP_TRI_SRC = """
hop(X, Y) :- link(X, Z), link(Z, Y).
tri_hop(X, Y) :- hop(X, Z), link(Z, Y).
"""

ONLY_TRI_SRC = HOP_TRI_SRC + (
    "only_tri_hop(X, Y) :- tri_hop(X, Y), not hop(X, Y).\n"
)

TC_SRC = """
tc(X, Y) :- link(X, Y).
tc(X, Y) :- tc(X, Z), link(Z, Y).
"""


def database_with(edges, relation="link") -> Database:
    db = Database()
    db.insert_rows(relation, edges)
    return db


@pytest.fixture
def example_1_1_db() -> Database:
    return database_with(EXAMPLE_1_1_LINKS)


@pytest.fixture
def example_4_2_db() -> Database:
    return database_with(EXAMPLE_4_2_LINKS)


@pytest.fixture
def example_6_1_db() -> Database:
    return database_with(EXAMPLE_6_1_LINKS)
