"""Shared fixtures: the paper's example databases and small graphs.

Also installs a per-test wall-clock fence for the ``faults`` and
``soak`` markers: a crash-injection or soak test that hangs (e.g. a
recovery loop replaying a corrupt journal forever) is killed by
``SIGALRM`` after ``FAULTS_TIMEOUT``/``SOAK_TIMEOUT`` seconds instead
of wedging the whole run until the coarse ``make`` fence fires.
POSIX-only (no-op where ``signal.SIGALRM`` is unavailable or off the
main thread); ``pytest-timeout`` isn't in the image, so this is the
dependency-free equivalent.
"""

from __future__ import annotations

import signal
import threading

import pytest

from repro.storage.database import Database

#: Per-test wall-clock budgets (seconds) by marker.
FAULTS_TIMEOUT = 120
SOAK_TIMEOUT = 300


def _marker_timeout(item) -> int:
    if item.get_closest_marker("soak") is not None:
        return SOAK_TIMEOUT
    if item.get_closest_marker("faults") is not None:
        return FAULTS_TIMEOUT
    return 0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    seconds = _marker_timeout(item)
    usable = (
        seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expired(_signum, _frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded its {seconds}s marker timeout"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)

#: Example 1.1's link relation.
EXAMPLE_1_1_LINKS = [("a", "b"), ("b", "c"), ("b", "e"), ("a", "d"), ("d", "c")]

#: Example 4.2's initial link relation.
EXAMPLE_4_2_LINKS = [
    ("a", "b"),
    ("a", "d"),
    ("d", "c"),
    ("b", "c"),
    ("c", "h"),
    ("f", "g"),
]

#: Example 6.1's link relation.
EXAMPLE_6_1_LINKS = [
    ("a", "b"),
    ("a", "e"),
    ("a", "f"),
    ("a", "g"),
    ("b", "c"),
    ("c", "d"),
    ("c", "k"),
    ("e", "d"),
    ("f", "d"),
    ("g", "h"),
    ("h", "k"),
]

HOP_SRC = "hop(X, Y) :- link(X, Z), link(Z, Y)."

HOP_TRI_SRC = """
hop(X, Y) :- link(X, Z), link(Z, Y).
tri_hop(X, Y) :- hop(X, Z), link(Z, Y).
"""

ONLY_TRI_SRC = HOP_TRI_SRC + (
    "only_tri_hop(X, Y) :- tri_hop(X, Y), not hop(X, Y).\n"
)

TC_SRC = """
tc(X, Y) :- link(X, Y).
tc(X, Y) :- tc(X, Z), link(Z, Y).
"""


def database_with(edges, relation="link") -> Database:
    db = Database()
    db.insert_rows(relation, edges)
    return db


@pytest.fixture
def example_1_1_db() -> Database:
    return database_with(EXAMPLE_1_1_LINKS)


@pytest.fixture
def example_4_2_db() -> Database:
    return database_with(EXAMPLE_4_2_LINKS)


@pytest.fixture
def example_6_1_db() -> Database:
    return database_with(EXAMPLE_6_1_LINKS)
