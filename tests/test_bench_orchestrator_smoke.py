"""Smoke test: the orchestrator benchmark runs end-to-end and emits
well-formed ``BENCH_orchestrator.json``.

Runs ``benchmarks/bench_orchestrator.py --smoke`` (toy scale — the
numbers are meaningless and the overhead gate is not enforced; only the
machinery and the JSON schema are under test) and validates the
document the full benchmark publishes.
"""

import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO, "benchmarks", "bench_orchestrator.py")


def run_smoke(tmp_path):
    out = str(tmp_path / "bench.json")
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    completed = subprocess.run(
        [sys.executable, SCRIPT, "--smoke", "--out", out],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return out, completed.stdout


def test_smoke_emits_valid_bench_json(tmp_path):
    out, stdout = run_smoke(tmp_path)
    assert "scheduler overhead" in stdout
    assert "lag conformance" in stdout

    with open(out, encoding="utf-8") as handle:
        doc = json.load(handle)
    assert doc["benchmark"] == "orchestrator"
    assert doc["smoke"] is True

    overhead = doc["workloads"]["scheduler-overhead"]
    for key in ("manual_seconds", "orchestrated_seconds",
                "overhead_ratio", "budget", "within_budget"):
        assert key in overhead
    assert overhead["manual_seconds"] > 0
    assert overhead["orchestrated_seconds"] > 0
    assert overhead["budget"] == 0.05

    lag = doc["workloads"]["lag-conformance"]
    assert lag["target_lag_seconds"] == 30.0
    assert lag["refreshes"] >= 1
    # Batching is the point: strictly fewer refreshes than stream
    # passes, and the observed lag stays under target + one tick.
    assert lag["refreshes"] < lag["stream_passes"]
    assert lag["within_target"] is True
    assert lag["max_observed_lag_seconds"] <= lag["bound_seconds"]
