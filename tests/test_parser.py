"""Tests for the Datalog lexer and parser."""

import pytest

from repro.datalog.ast import Aggregate, Comparison, Literal
from repro.datalog.lexer import tokenize
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.terms import BinaryOp, Constant, Variable
from repro.errors import ParseError


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("p(X, 1).")]
        assert kinds == ["IDENT", "PUNCT", "VARIABLE", "PUNCT", "NUMBER",
                         "PUNCT", "PUNCT", "EOF"]

    def test_comments_ignored(self):
        tokens = tokenize("% a comment\np(a). # another\n")
        assert [t.text for t in tokens if t.kind == "IDENT"] == ["p", "a"]

    def test_multi_char_punct(self):
        texts = [t.text for t in tokenize(":- != <= >= //")]
        assert texts[:-1] == [":-", "!=", "<=", ">=", "//"]

    def test_float_vs_rule_dot(self):
        tokens = tokenize("p(1.5).")
        numbers = [t for t in tokens if t.kind == "NUMBER"]
        assert numbers[0].value == 1.5
        assert tokens[-2].text == "."

    def test_string_with_escape(self):
        tokens = tokenize(r"p('it\'s').")
        strings = [t for t in tokens if t.kind == "STRING"]
        assert strings[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("p('oops).")

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected"):
            tokenize("p(@).")

    def test_positions_tracked(self):
        token = tokenize("p(a).\nq(b).")[5]
        assert token.line == 2
        assert token.column == 1


class TestParseRule:
    def test_simple_rule(self):
        rule = parse_rule("hop(X, Y) :- link(X, Z), link(Z, Y).")
        assert rule.head.predicate == "hop"
        assert len(rule.body) == 2

    def test_fact(self):
        rule = parse_rule("link(a, b).")
        assert rule.is_fact
        assert rule.head.args == (Constant("a"), Constant("b"))

    def test_ampersand_conjunction(self):
        rule = parse_rule("p(X) :- q(X) & r(X).")
        assert len(rule.body) == 2

    def test_negation_keyword(self):
        rule = parse_rule("p(X, Y) :- t(X, Y), not h(X, Y).")
        assert rule.body[1].negated

    def test_negation_bang(self):
        rule = parse_rule("p(X) :- q(X), ! h(X).")
        assert rule.body[1].negated

    def test_comparison_subgoal(self):
        rule = parse_rule("p(X) :- q(X, Y), Y < 10.")
        comparison = rule.body[1]
        assert isinstance(comparison, Comparison)
        assert comparison.op == "<"

    def test_head_arithmetic(self):
        rule = parse_rule("hop(S, D, C1 + C2) :- link(S, I, C1), link(I, D, C2).")
        assert isinstance(rule.head.args[2], BinaryOp)

    def test_groupby_subgoal(self):
        rule = parse_rule(
            "m(S, D, M) :- GROUPBY(hop(S, D, C), [S, D], M = MIN(C))."
        )
        aggregate = rule.body[0]
        assert isinstance(aggregate, Aggregate)
        assert aggregate.function == "MIN"
        assert aggregate.group_by == (Variable("S"), Variable("D"))
        assert aggregate.result == Variable("M")

    def test_groupby_case_insensitive(self):
        rule = parse_rule("m(S, M) :- groupby(h(S, C), [S], M = sum(C)).")
        assert rule.body[0].function == "SUM"

    def test_groupby_empty_groups(self):
        rule = parse_rule("total(M) :- GROUPBY(sales(X, C), [], M = SUM(C)).")
        assert rule.body[0].group_by == ()

    def test_unknown_aggregate_function(self):
        with pytest.raises(ParseError, match="unknown aggregate"):
            parse_rule("m(S, M) :- GROUPBY(h(S, C), [S], M = MEDIAN(C)).")

    def test_lowercase_ident_as_constant_argument(self):
        rule = parse_rule("p(X) :- q(X, abc).")
        assert rule.body[0].args[1] == Constant("abc")

    def test_negative_number(self):
        rule = parse_rule("p(X) :- q(X, Y), Y > -5.")
        comparison = rule.body[1]
        assert comparison.right.evaluate({}) == -5

    def test_parenthesized_expression(self):
        rule = parse_rule("p((X + 1) * 2) :- q(X).")
        assert rule.head.args[0].evaluate({"X": 2}) == 6

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_rule("p(X) :- q(X). extra")

    def test_missing_period_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) :- q(X)")

    def test_equality_assignment(self):
        rule = parse_rule("p(X, Y) :- q(X), Y = X + 1.")
        assert isinstance(rule.body[1], Comparison)
        assert rule.body[1].op == "="


class TestParseProgram:
    def test_multiple_rules(self):
        program = parse_program(
            "hop(X, Y) :- link(X, Z), link(Z, Y).\n"
            "tri(X, Y) :- hop(X, Z), link(Z, Y).\n"
        )
        assert len(program) == 2
        assert program.idb_predicates == {"hop", "tri"}

    def test_base_declaration(self):
        program = parse_program("base extra/2.\np(X) :- q(X).")
        assert "extra" in program.edb_predicates

    def test_base_declaration_multiple(self):
        program = parse_program("base a/1, b/2.\np(X) :- q(X).")
        assert {"a", "b"} <= program.edb_predicates

    def test_declared_base_parameter(self):
        program = parse_program("p(X) :- q(X).", declared_base=("zed",))
        assert "zed" in program.edb_predicates

    def test_empty_program(self):
        assert len(parse_program("")) == 0

    def test_facts_and_rules_mix(self):
        program = parse_program("p(1).\nq(X) :- p(X).")
        assert program.rules[0].is_fact

    def test_error_has_position(self):
        with pytest.raises(ParseError) as info:
            parse_program("p(X) :- q(X)\nr(Y).")
        assert info.value.line >= 1
