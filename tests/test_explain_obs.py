"""Tests for explain provenance tooling and the telemetry CLI commands.

The explain side exercises Example 4.1 from the paper (the hop view over
the five-edge ``link`` relation): the support tree must reproduce the
stored derivation count (Theorem 4.1) and survive a maintenance pass.
The CLI side drives ``status --json``, ``metrics``, ``trace``, and
``explain view(args)`` through the shell exactly as a user would.
"""

import json

import pytest

from repro.cli import Shell
from repro.core.maintenance import ViewMaintainer
from repro.obs import (
    pass_tree,
    render_pass,
    rule_totals,
    RingSink,
    support_tree,
    Tracer,
    validate_prometheus,
    validate_trace_jsonl,
)
from repro.storage.changeset import Changeset
from repro.storage.database import Database

# Example 4.1: link = {(a,b),(b,c),(b,e),(a,d),(d,c)}; hop(a,c) has two
# derivations (via b and via d), every other hop tuple has one.
EXAMPLE_41 = """
link(a, b).
link(b, c).
link(b, e).
link(a, d).
link(d, c).
hop(X, Y) :- link(X, Z), link(Z, Y).
"""

CHAIN_SRC = (
    "hop(X,Y) :- link(X,Z), link(Z,Y).\n"
    "trihop(X,Y) :- hop(X,Z), link(Z,Y)."
)


def example_maintainer(strategy="counting"):
    db = Database()
    db.insert_rows(
        "link", [("a", "b"), ("b", "c"), ("b", "e"), ("a", "d"), ("d", "c")]
    )
    m = ViewMaintainer.from_source(
        "hop(X, Y) :- link(X, Z), link(Z, Y).", db, strategy=strategy
    )
    m.initialize()
    return m


# ----------------------------------------------------------------- explain


class TestExplainExample41:
    def test_support_tree_reproduces_stored_count(self):
        maintainer = example_maintainer()
        node = support_tree(maintainer, "hop", ("a", "c"))
        assert node.stored_count == 2
        assert node.derivation_count == 2
        assert node.stored_count == node.derivation_count

    def test_single_derivation_tuple(self):
        maintainer = example_maintainer()
        node = support_tree(maintainer, "hop", ("a", "e"))
        assert node.stored_count == 1
        assert node.derivation_count == 1

    def test_count_check_survives_maintenance(self):
        maintainer = example_maintainer()
        # Deleting link(a, b) kills the via-b derivation: count 2 -> 1.
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        node = support_tree(maintainer, "hop", ("a", "c"))
        assert node.stored_count == 1
        assert node.derivation_count == 1

    def test_explain_report_text(self):
        maintainer = example_maintainer()
        report = maintainer.explain("hop", ("a", "c"))
        assert "stored count 2 == 2 immediate derivation(s)" in report
        assert "Theorem 4.1" in report
        assert "link('a', 'b')" in report and "link('a', 'd')" in report

    def test_explain_report_missing_tuple(self):
        maintainer = example_maintainer()
        report = maintainer.explain("hop", ("e", "a"))
        assert "not in the view" in report

    def test_explain_under_dred_reports_derivations(self):
        maintainer = example_maintainer(strategy="dred")
        report = maintainer.explain("hop", ("a", "c"))
        assert "set semantics (DRed)" in report
        assert "2 immediate derivation(s)" in report


class TestPassReplay:
    def test_pass_tree_and_flame_render(self):
        ring = RingSink()
        db = Database()
        db.insert_rows("link", [("a", "b"), ("b", "c"), ("c", "d")])
        maintainer = ViewMaintainer.from_source(
            CHAIN_SRC, db, tracer=Tracer(ring)
        )
        maintainer.initialize()
        maintainer.apply(Changeset().insert("link", ("d", "e")))
        root = pass_tree(list(ring.events))
        assert root is not None
        assert root.kind == "pass"
        text = render_pass(root)
        assert "pass" in text and "stratum" in text
        totals = rule_totals([root])
        assert totals  # at least one rule fired and was attributed


# --------------------------------------------------------------------- CLI


@pytest.fixture
def shell():
    return Shell(EXAMPLE_41)


class TestTelemetryCli:
    def test_explain_view_tuple(self, shell):
        output = shell.execute("explain hop(a, c)")
        assert "stored count 2 == 2 immediate derivation(s)" in output
        assert "Theorem 4.1" in output

    def test_bare_explain_still_prints_delta_rules(self, shell):
        output = shell.execute("explain")
        assert "hop" in output  # the delta program, not a support tree

    def test_status_json(self, shell):
        shell.execute("+ link(c, f)")
        shell.execute("commit")
        payload = json.loads(shell.execute("status --json"))
        assert payload["strategy"] == "counting"
        assert payload["lifetime"]["passes"] == 1
        assert payload["consistent"] is True
        assert payload["last_pass"]["passes"] == 1
        assert payload["plan_cache"]["entries"] >= 0

    def test_metrics_prom_valid_after_commit(self, shell):
        shell.execute("+ link(c, f)")
        shell.execute("commit")
        text = shell.execute("metrics --prom")
        assert validate_prometheus(text) == []
        assert "repro_passes_total" in text

    def test_metrics_json(self, shell):
        shell.execute("+ link(c, f)")
        shell.execute("commit")
        payload = json.loads(shell.execute("metrics --json"))
        assert payload["repro_passes_total"]["kind"] == "counter"

    def test_trace_flame_after_commit(self, shell):
        shell.execute("+ link(c, f)")
        shell.execute("commit")
        output = shell.execute("trace")
        assert "pass" in output
        assert "stratum" in output

    def test_trace_tail(self, shell):
        shell.execute("+ link(c, f)")
        shell.execute("commit")
        output = shell.execute("trace tail 3")
        assert len(output.splitlines()) == 3

    def test_trace_dump(self, shell, tmp_path):
        shell.execute("+ link(c, f)")
        shell.execute("commit")
        path = str(tmp_path / "trace.jsonl")
        shell.execute(f"trace dump {path}")
        with open(path, encoding="utf-8") as handle:
            assert validate_trace_jsonl(handle.read()) == []

    def test_jsonl_trace_file(self, tmp_path):
        path = str(tmp_path / "live.jsonl")
        shell = Shell(EXAMPLE_41, trace_path=path)
        shell.execute("+ link(c, f)")
        shell.execute("commit")
        shell.maintainer.tracer.close()
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        assert validate_trace_jsonl(text) == []
        kinds = {json.loads(line)["kind"] for line in text.splitlines()}
        assert {"pass", "stratum", "phase", "rule"} <= kinds
