"""Tests for the smaller API conveniences: refresh, explain, CLI --data."""

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.datalog.parser import parse_program
from repro.datalog.stratify import stratify
from repro.storage.changeset import Changeset
from repro.storage.database import Database

from conftest import HOP_TRI_SRC, TC_SRC, database_with, EXAMPLE_1_1_LINKS


class TestRefresh:
    def test_repairs_external_mutation(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_1_1_db
        ).initialize()
        # External (untracked) mutation of the base relation:
        example_1_1_db.relation("link").discard(("a", "b"))
        with pytest.raises(Exception):
            maintainer.consistency_check()
        maintainer.refresh()
        maintainer.consistency_check()
        assert maintainer.relation("hop").to_dict() == {("a", "c"): 1}

    def test_refresh_is_chainable(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_1_1_db
        ).initialize()
        assert maintainer.refresh() is maintainer

    def test_maintenance_works_after_refresh(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_1_1_db
        ).initialize()
        maintainer.refresh()
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        maintainer.consistency_check()


class TestStratificationExplain:
    def test_explain_lists_strata(self):
        strat = stratify(parse_program(
            "hop(X,Y) :- link(X,Z), link(Z,Y)."
            "tri(X,Y) :- hop(X,Z), link(Z,Y)."
        ))
        text = strat.explain()
        assert "base: link" in text
        assert "stratum 1: hop" in text
        assert "stratum 2: tri" in text

    def test_explain_marks_recursion(self):
        strat = stratify(parse_program(TC_SRC))
        assert "tc (recursive)" in strat.explain()


class TestCliDataFlag:
    def test_loads_snapshot(self, tmp_path, capsys, monkeypatch):
        import io
        import sys

        from repro.cli import main
        from repro.storage.serialize import save_database

        snapshot = tmp_path / "snap.json"
        save_database(database_with(EXAMPLE_1_1_LINKS), str(snapshot))
        program = tmp_path / "views.dl"
        program.write_text("hop(X, Y) :- link(X, Z), link(Z, Y).")
        monkeypatch.setattr(sys, "stdin", io.StringIO("show hop\nquit\n"))
        assert main([str(program), "--data", str(snapshot)]) == 0
        assert "hop('a', 'c')  ×2" in capsys.readouterr().out

    def test_strategy_and_semantics_flags(self, tmp_path, capsys, monkeypatch):
        import io
        import sys

        from repro.cli import main

        program = tmp_path / "views.dl"
        program.write_text(
            "link(a, b).\nlink(b, c).\n"
            "tc(X, Y) :- link(X, Y).\ntc(X, Y) :- tc(X, Z), link(Z, Y)."
        )
        monkeypatch.setattr(
            sys, "stdin", io.StringIO("- link(a, b)\ncommit\nquit\n")
        )
        assert main([str(program), "--strategy", "dred"]) == 0
        assert "dred" in capsys.readouterr().out


class TestProvenanceWithConstantsInHead:
    def test_constant_head_argument(self):
        db = database_with([("a", "b")])
        maintainer = ViewMaintainer.from_source(
            "flag(found, X) :- link(X, Y).", db
        ).initialize()
        derivations = maintainer.explain_tuple("flag", ("found", "a"))
        assert len(derivations) == 1

    def test_computed_head_argument(self):
        db = Database()
        db.insert_rows("reading", [("s1", 4)])
        maintainer = ViewMaintainer.from_source(
            "doubled(S, V * 2) :- reading(S, V).", db
        ).initialize()
        derivations = maintainer.explain_tuple("doubled", ("s1", 8))
        assert len(derivations) == 1
        assert maintainer.explain_tuple("doubled", ("s1", 9)) == []

    def test_aggregate_view_derivations(self):
        db = Database()
        db.insert_rows("u", [("a", 3), ("a", 5)])
        maintainer = ViewMaintainer.from_source(
            "m(S, M) :- GROUPBY(u(S, C), [S], M = MIN(C)).", db
        ).initialize()
        derivations = maintainer.explain_tuple("m", ("a", 3))
        assert len(derivations) == 1
        # The body atom is the group pseudo-atom.
        assert derivations[0].body[0][0].endswith("/groups")
