"""The static analyzer: diagnostics framework, checks, advisor, CLI.

Organized bottom-up, mirroring ``src/repro/analysis``:

* the diagnostics framework — the stable-code catalogue, severities,
  suppression, the text/JSON renderers and the v1 schema validator;
* one trigger case per check, ``RV001`` … ``RV202``, asserting the code
  and (where the source carries one) the position;
* the strategy advisor — Definition 4.1 variant counts, per-stratum
  recommendations, and the guard-budget risk prediction;
* :func:`repro.analysis.analyze` over every accepted target shape
  (source text, ``Program``, live maintainer) and both failure modes
  (parse and schema errors);
* the engine integration — strategy mismatches raise ``StrategyError``
  carrying the analyzer diagnostic;
* the ``repro lint`` CLI — formats, ``--fail-on``, ``--suppress``,
  stdin, and exit codes.
"""

import contextlib
import io
import json

import pytest

from repro.analysis import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    analyze,
    advise,
)
from repro.analysis.advisor import variant_counts
from repro.analysis.diagnostics import (
    count_by_severity,
    make_diagnostic,
    max_severity,
    render_json,
    render_text,
    suppress,
    validate_document,
)
from repro.cli import lint_main
from repro.core.maintenance import ViewMaintainer
from repro.datalog.ast import Span
from repro.datalog.parser import parse_program
from repro.datalog.safety import check_rule_safety, rule_safety_issues
from repro.datalog.stratify import stratify
from repro.errors import MaintenanceError, SafetyError, StrategyError

from conftest import TC_SRC, database_with

GOOD_SRC = "hop(X, Y) :- link(X, Z), link(Z, Y).\n"
EDGES = [(1, 2), (2, 3)]


# ----------------------------------------------------------- the framework


class TestCatalogue:
    def test_every_code_is_fully_documented(self):
        for code, info in CODES.items():
            assert code == info.code
            assert code.startswith("RV") and len(code) == 5, code
            assert info.title and info.paper and info.hint, code

    def test_code_bands_match_severities(self):
        # RV0xx are errors; RV1xx advisory warnings or infos; RV2xx
        # advisory except the structural spec error RV210; RV3xx
        # (concurrency discipline) spans all three severities — the
        # bands are a stable part of the contract (docs/analysis.md).
        for code, info in CODES.items():
            band = code[2]
            if band == "0":
                assert info.severity is Severity.ERROR, code
            elif band == "1":
                assert info.severity in (Severity.WARNING, Severity.INFO), code
            elif band == "2":
                expected = (
                    (Severity.ERROR,)
                    if code == "RV210"
                    else (Severity.WARNING, Severity.INFO)
                )
                assert info.severity in expected, code
            else:
                assert band == "3", code
                assert info.severity in (
                    Severity.ERROR, Severity.WARNING, Severity.INFO
                ), code

    def test_severity_ordering_and_labels(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert Severity.from_name("Warning") is Severity.WARNING
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.from_name("fatal")

    def test_make_diagnostic_defaults_from_catalogue(self):
        d = make_diagnostic("RV101", "lonely X")
        assert d.severity is Severity.WARNING
        assert d.hint == CODES["RV101"].hint
        assert d.paper == CODES["RV101"].paper
        demoted = make_diagnostic("RV101", "x", severity=Severity.INFO)
        assert demoted.severity is Severity.INFO

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            make_diagnostic("RV999", "nope")


class TestFiltering:
    def _diags(self):
        return [
            make_diagnostic("RV001", "e"),
            make_diagnostic("RV101", "w"),
            make_diagnostic("RV201", "i"),
        ]

    def test_suppress_is_case_insensitive_and_trims(self):
        kept = suppress(self._diags(), [" rv001 ", "RV201"])
        assert [d.code for d in kept] == ["RV101"]

    def test_max_severity_and_counts(self):
        diags = self._diags()
        assert max_severity(diags) is Severity.ERROR
        assert max_severity([]) is None
        assert count_by_severity(diags) == {
            "errors": 1, "warnings": 1, "infos": 1,
        }


class TestRenderers:
    def test_text_includes_location_code_and_hint(self):
        d = make_diagnostic("RV001", "X is unbound", span=Span(3, 7))
        text = render_text([d], "views.dl")
        assert "views.dl:3:7: error[RV001]: X is unbound" in text
        assert "hint:" in text and CODES["RV001"].paper in text
        assert "hint:" not in render_text([d], show_hints=False)

    def test_json_document_validates(self):
        d = make_diagnostic("RV101", "lonely", span=Span(1, 4))
        document = json.loads(render_json([d], "views.dl"))
        validate_document(document)
        (entry,) = document["diagnostics"]
        assert entry["code"] == "RV101"
        assert entry["line"] == 1 and entry["column"] == 4
        assert document["summary"]["warnings"] == 1

    def test_validator_rejects_malformed_documents(self):
        good = json.loads(render_json([make_diagnostic("RV101", "w")]))
        missing = dict(good)
        del missing["summary"]
        with pytest.raises(ValueError, match="missing key"):
            validate_document(missing)
        bad_code = json.loads(json.dumps(good))
        bad_code["diagnostics"][0]["code"] = "RV999"
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            validate_document(bad_code)
        skewed = json.loads(json.dumps(good))
        skewed["summary"]["warnings"] = 5
        with pytest.raises(ValueError, match="disagrees"):
            validate_document(skewed)


# ------------------------------------------------- one trigger per check


def codes_of(source, **kwargs):
    return analyze(source, **kwargs).codes()


class TestSafetyChecks:
    def test_rv001_unbound_head_variable(self):
        report = analyze("p(X, Y) :- q(X).")
        (d,) = report.errors()
        assert d.code == "RV001" and "Y" in d.message
        assert d.span is not None

    def test_rv002_unsafe_negation(self):
        assert "RV002" in codes_of("p(X) :- q(X), not r(X, W).")

    def test_rv003_unsafe_comparison(self):
        assert "RV003" in codes_of("p(X) :- q(X), Y < 3.")

    def test_rv004_unsafe_expression_argument(self):
        assert "RV004" in codes_of("p(X) :- q(X), r(Y + 1).")

    def test_rv005_non_ground_fact(self):
        assert "RV005" in codes_of("p(X).")
        assert "RV005" not in codes_of("p(1, 2).")

    def test_rv006_aggregate_leak(self):
        src = "p(X, Y) :- GROUPBY(q(X, Y), [X], M = COUNT(Y))."
        assert "RV006" in codes_of(src)

    def test_satellite_all_unsafe_variables_in_one_error(self):
        # One rule, three distinct safety violations: check_rule_safety
        # must report them all in a single exception, with positions.
        (rule,) = parse_program("p(X, W) :- q(X), not r(Z), Y < 3.")
        issues = rule_safety_issues(rule)
        assert {i.kind for i in issues} == {"head", "negation", "comparison"}
        assert all(i.span is not None for i in issues)
        with pytest.raises(SafetyError) as excinfo:
            check_rule_safety(rule)
        message = str(excinfo.value)
        for variable in ("W", "Z", "Y"):
            assert variable in message
        assert len(excinfo.value.issues) == 3


class TestStratificationCheck:
    def test_rv007_reports_the_offending_cycle(self):
        report = analyze("s(X) :- q(X), not s(X).")
        (d,) = [d for d in report.errors() if d.code == "RV007"]
        assert tuple(d.data["cycle"]) == ("s", "s")
        assert report.stratification is None and report.advice is None

    def test_rv007_longer_cycle_through_negation(self):
        src = "a(X) :- c(X).\nb(X) :- a(X).\nc(X) :- q(X), not b(X).\n"
        (d,) = [d for d in analyze(src).errors() if d.code == "RV007"]
        cycle = list(d.data["cycle"])
        assert cycle[0] == cycle[-1] and len(cycle) == 4
        assert set(cycle) == {"a", "b", "c"}


class TestStructuralChecks:
    def test_rv101_singleton_but_not_underscore(self):
        assert "RV101" in codes_of("p(X) :- q(X, Y).")
        assert "RV101" not in codes_of("p(X) :- q(X, _).")

    def test_rv102_cartesian_product(self):
        assert "RV102" in codes_of("p(X, Y) :- q(X), r(Y).")
        assert "RV102" not in codes_of("p(X, Y) :- q(X), r(X, Y).")

    def test_rv103_duplicate_subgoal(self):
        assert "RV103" in codes_of("p(X) :- q(X), q(X).")

    def test_rv104_duplicate_rule(self):
        assert "RV104" in codes_of("p(X) :- q(X).\np(X) :- q(X).\n")
        assert "RV104" not in codes_of("p(X) :- q(X).\np(X) :- r(X).\n")

    def test_rv105_min_max_but_not_count(self):
        aggregate = "a(G, M) :- GROUPBY(q(G, V), [G], M = {fn}(V))."
        assert "RV105" in codes_of(aggregate.format(fn="MIN"))
        assert "RV105" in codes_of(aggregate.format(fn="MAX"))
        assert "RV105" not in codes_of(aggregate.format(fn="COUNT"))
        assert "RV105" not in codes_of(aggregate.format(fn="SUM"))

    def test_rv106_recursion_without_base_case(self):
        assert "RV106" in codes_of("u(X) :- u(X).")

    def test_rv107_rule_over_always_empty_predicate(self):
        src = "u(X) :- u(X).\nw(X) :- q(X).\nw(X) :- u(X), q(X).\n"
        report = analyze(src)
        dead = [d for d in report.diagnostics if d.code == "RV107"]
        assert len(dead) == 1 and "u" in dead[0].message

    def test_rv108_delta_rule_fanout(self):
        body = ", ".join(f"q(X{i}, X{i + 1})" for i in range(8))
        src = f"p(X0, X8) :- {body}."
        (d,) = [d for d in analyze(src).diagnostics if d.code == "RV108"]
        assert d.data["subgoals"] == 8
        assert d.data["expansion_variants"] == 2 ** 8 - 1
        assert "RV108" not in codes_of(GOOD_SRC)

    def test_rv109_undefined_predicate_with_declarations(self):
        src = "base link/2.\nhop(X, Y) :- link(X, Z), mystery(Z, Y).\n"
        (d,) = [d for d in analyze(src).diagnostics if d.code == "RV109"]
        assert d.predicate == "mystery"
        # Without any `base` declaration the check stays silent: the
        # program has no declared vocabulary to validate against.
        assert "RV109" not in codes_of(GOOD_SRC)

    def test_rv110_unused_base_declaration(self):
        src = "base link/2.\nbase spare/3.\nhop(X, Y) :- link(X, Y).\n"
        (d,) = [d for d in analyze(src).diagnostics if d.code == "RV110"]
        assert d.predicate == "spare"
        assert d.severity is Severity.INFO


# ------------------------------------------------------------ the advisor


class TestAdvisor:
    def test_variant_counts_definition_4_1(self):
        # 3 deltable subgoals: 3 factored delta rules, 2^3 - 1 expansion
        # variants; the comparison subgoal is not deltable.
        program = parse_program(
            "p(X, W) :- q(X, Y), r(Y, Z), s(Z, W), X < W."
        )
        assert variant_counts(program) == (3, 7)

    def test_variant_counts_aggregate_rule_counts_once(self):
        program = parse_program(
            "a(G, M) :- GROUPBY(q(G, V), [G], M = COUNT(V))."
        )
        assert variant_counts(program) == (1, 1)

    def test_overall_matches_auto_selection(self):
        for src, expected in [(GOOD_SRC, "counting"), (TC_SRC, "bf")]:
            advice = advise(stratify(parse_program(src)))
            maintainer = ViewMaintainer.from_source(
                src, database_with(EDGES)
            )
            assert advice.overall == expected == maintainer.strategy

    def test_per_stratum_refinement_on_mixed_program(self):
        # tc is recursive (B/F stratum); the negation view above it is
        # nonrecursive and could be maintained by counting on its own.
        src = TC_SRC + "miss(X, Y) :- link(X, Y), not tc(Y, X).\n"
        advice = advise(stratify(parse_program(src)))
        assert advice.overall == "bf"
        by_predicate = {
            p: a for a in advice.per_stratum for p in a.predicates
        }
        assert by_predicate["tc"].strategy == "bf"
        assert by_predicate["miss"].strategy == "counting"
        (rv201,) = [
            d for d in advice.diagnostics if d.code == "RV201"
        ]
        assert "counting" in rv201.message  # mentions the refinement

    def test_rv202_matches_counting_engine_metering(self):
        # The counting engine meters ONE firing per maintained rule per
        # pass (not one per Definition 4.1 variant), so a single-rule
        # program trips a zero budget but not a budget of 1.
        zero = type("B", (), {"max_rule_firings": 0})()
        report = analyze(GOOD_SRC, budget=zero)
        (d,) = [d for d in report.diagnostics if d.code == "RV202"]
        assert d.data["per_pass_firings"] == 1
        assert d.data["strategy"] == "counting"
        one = type("B", (), {"max_rule_firings": 1})()
        assert "RV202" not in codes_of(GOOD_SRC, budget=one)
        # Per-rule, not per-variant: 3 subgoals still meter 1 firing.
        wide = "p(X, W) :- q(X, Y), r(Y, Z), s(Z, W).\n"
        assert "RV202" not in codes_of(wide, budget=one)

    def test_rv202_dred_meters_factored_variants(self):
        # DRed ticks per factored delta rule in delete + insert, plus
        # one per rule rederived: TC has 2 rules / 3 factored variants,
        # so a full pass meters 2*3 + 2 = 8 firings.
        tight = type("B", (), {"max_rule_firings": 7})()
        report = analyze(TC_SRC, budget=tight)
        (d,) = [d for d in report.diagnostics if d.code == "RV202"]
        assert d.data["per_pass_firings"] == 8
        roomy = type("B", (), {"max_rule_firings": 8})()
        assert "RV202" not in codes_of(TC_SRC, budget=roomy)

    def test_rv202_prediction_agrees_with_real_guard(self):
        # The whole point of the prediction: RV202 present ⟺ the live
        # engine breaches on a pass that touches every rule.
        from repro.errors import BudgetExceeded
        from repro.guard import GuardPolicy, MaintenanceBudget
        from repro.storage.changeset import Changeset

        for firings, predicted in [(0, True), (1, False)]:
            budget = MaintenanceBudget(max_rule_firings=firings)
            assert (
                "RV202" in codes_of(GOOD_SRC, budget=budget)
            ) is predicted
            maintainer = ViewMaintainer.from_source(
                GOOD_SRC, database_with(EDGES),
                guard=GuardPolicy(budget=budget, fallback="raise"),
            ).initialize()
            changes = Changeset().insert("link", (3, 4))
            if predicted:
                with pytest.raises(BudgetExceeded):
                    maintainer.apply(changes)
            else:
                maintainer.apply(changes)


# ---------------------------------------------------------- analyze() API


class TestAnalyze:
    def test_clean_program_report(self):
        report = analyze(GOOD_SRC, path="views.dl")
        assert report.ok and not report.errors()
        assert report.codes() == ["RV201"]
        assert report.program is not None
        assert report.stratification is not None
        assert report.advice.overall == "counting"
        assert report.path == "views.dl"

    def test_accepts_parsed_program(self):
        report = analyze(parse_program(GOOD_SRC))
        assert report.ok and report.advice.overall == "counting"

    def test_accepts_live_maintainer_and_reads_its_config(self):
        maintainer = ViewMaintainer.from_source(
            GOOD_SRC, database_with(EDGES), semantics="duplicate",
            strategy="counting",
        )
        report = analyze(maintainer)
        assert report.ok
        # A duplicate-semantics maintainer forced onto DRed would be a
        # mismatch; read from the maintainer, semantics='duplicate' with
        # counting is fine, so no RV009 appears.
        assert "RV009" not in report.codes()

    def test_rejects_unknown_targets(self):
        with pytest.raises(TypeError, match="expects Datalog source"):
            analyze(42)

    def test_parse_error_becomes_rv000_with_position(self):
        report = analyze("p(X :- q(X).")
        (d,) = report.diagnostics
        assert d.code == "RV000" and d.span is not None
        assert report.program is None and report.advice is None
        assert report.exit_code() == 1

    def test_schema_error_becomes_rv010(self):
        report = analyze("p(X) :- q(X).\np(X, Y) :- q(X), q(Y).\n")
        (d,) = report.diagnostics
        assert d.code == "RV010"

    def test_forced_counting_on_recursive_is_rv008(self):
        report = analyze(TC_SRC, strategy="counting")
        (d,) = report.errors()
        assert d.code == "RV008"
        assert tuple(d.data["cycle"]) == ("tc", "tc")
        # auto (and dred) stay clean: the advisor handles the dispatch.
        assert analyze(TC_SRC).ok
        assert analyze(TC_SRC, strategy="dred").ok

    def test_forced_dred_under_duplicates_is_rv009(self):
        report = analyze(GOOD_SRC, strategy="dred", semantics="duplicate")
        (d,) = report.errors()
        assert d.code == "RV009"

    def test_suppression_and_exit_codes(self):
        noisy = "p(X) :- q(X, Y).\n"  # RV101 warning + RV201 info
        report = analyze(noisy)
        assert report.exit_code() == 0
        assert report.exit_code("warning") == 1
        assert report.exit_code(Severity.INFO) == 1
        quiet = analyze(noisy, suppress_codes=["RV101"])
        assert quiet.exit_code("warning") == 0

    def test_diagnostics_sorted_errors_first_then_position(self):
        src = "p(X) :- q(X, Y).\nbad(X, W) :- q(X, V).\n"
        report = analyze(src)
        severities = [int(d.severity) for d in report.diagnostics]
        assert severities == sorted(severities, reverse=True)

    def test_report_render_text_has_summary_and_advice(self):
        text = analyze(GOOD_SRC).render_text()
        assert "0 error(s)" in text
        assert "strategy advisor: counting" in text

    def test_report_to_dict_validates_and_carries_advice(self):
        document = analyze(GOOD_SRC).to_dict()
        validate_document(document)
        assert document["advice"]["overall"] == "counting"
        round_trip = json.loads(analyze(GOOD_SRC).to_json())
        validate_document(round_trip)


# ------------------------------------------------- engine integration


class TestStrategyErrors:
    def test_counting_on_recursive_raises_typed_error(self):
        with pytest.raises(StrategyError) as excinfo:
            ViewMaintainer.from_source(
                TC_SRC, database_with(EDGES), strategy="counting"
            )
        error = excinfo.value
        assert isinstance(error, MaintenanceError)  # old handlers survive
        assert error.diagnostic is not None
        assert error.diagnostic.code == "RV008"
        assert tuple(error.diagnostic.data["cycle"]) == ("tc", "tc")
        assert "RV008" in str(error)

    def test_dred_under_duplicates_raises_typed_error(self):
        with pytest.raises(StrategyError) as excinfo:
            ViewMaintainer.from_source(
                GOOD_SRC, database_with(EDGES), strategy="dred",
                semantics="duplicate",
            )
        assert excinfo.value.diagnostic.code == "RV009"


# --------------------------------------------------------------- the CLI


def run_lint(tmp_path, source, *argv):
    path = tmp_path / "views.dl"
    path.write_text(source)
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = lint_main([str(path), *argv])
    return code, stdout.getvalue()


class TestLintCli:
    def test_text_output_and_exit_zero(self, tmp_path):
        code, out = run_lint(tmp_path, GOOD_SRC)
        assert code == 0
        assert "info[RV201]" in out
        assert "0 error(s)" in out

    def test_error_exit_and_position(self, tmp_path):
        code, out = run_lint(tmp_path, "p(X, Y) :- q(X).")
        assert code == 1
        assert "error[RV001]" in out
        assert "views.dl:1:1" in out

    def test_json_document_validates(self, tmp_path):
        code, out = run_lint(tmp_path, GOOD_SRC, "--format", "json")
        assert code == 0
        document = json.loads(out)
        validate_document(document)
        assert document["advice"]["overall"] == "counting"
        assert document["path"].endswith("views.dl")

    def test_fail_on_warning_and_suppress(self, tmp_path):
        noisy = "p(X) :- q(X, Y).\n"
        code, _ = run_lint(tmp_path, noisy, "--fail-on", "warning")
        assert code == 1
        code, out = run_lint(
            tmp_path, noisy, "--fail-on", "warning",
            "--suppress", "RV101,RV110",
        )
        assert code == 0 and "RV101" not in out

    def test_forced_strategy_flags_mismatch(self, tmp_path):
        code, out = run_lint(tmp_path, TC_SRC, "--strategy", "counting")
        assert code == 1 and "RV008" in out

    def test_no_hints_drops_hint_lines(self, tmp_path):
        _, out = run_lint(tmp_path, "p(X) :- q(X, Y).\n")
        assert "hint:" in out
        _, out = run_lint(tmp_path, "p(X) :- q(X, Y).\n", "--no-hints")
        assert "hint:" not in out

    def test_reads_stdin_dash(self, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO(GOOD_SRC))
        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            code = lint_main(["-", "--format", "json"])
        assert code == 0
        assert json.loads(stdout.getvalue())["path"] == "<stdin>"

    def test_missing_file_exits_2(self, capsys):
        assert lint_main(["/nonexistent/views.dl"]) == 2
        assert "views.dl" in capsys.readouterr().err

    def test_main_dispatches_lint_subcommand(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "views.dl"
        path.write_text(GOOD_SRC)
        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            code = main(["lint", str(path)])
        assert code == 0 and "RV201" in stdout.getvalue()


# ------------------------------------------------------- report structure


def test_analysis_report_is_immutable():
    report = analyze(GOOD_SRC)
    assert isinstance(report, AnalysisReport)
    with pytest.raises(Exception):
        report.diagnostics = ()
    assert all(isinstance(d, Diagnostic) for d in report.diagnostics)
