"""Unit tests for the Datalog AST: literals, rules, programs."""

import pytest

from repro.datalog.ast import (
    Aggregate,
    Comparison,
    Literal,
    Program,
    Rule,
    atom,
    fact,
    rule,
)
from repro.datalog.terms import Constant, Variable
from repro.errors import SchemaError


class TestLiteral:
    def test_atom_builder_coerces(self):
        literal = atom("link", "X", "b")
        assert literal.args == (Variable("X"), Constant("b"))

    def test_negate_flips(self):
        literal = atom("p", "X")
        assert literal.negate().negated
        assert literal.negate().negate() == literal

    def test_variables(self):
        literal = atom("p", "X", "Y", "c")
        assert literal.variables() == frozenset({"X", "Y"})

    def test_with_predicate_keeps_args_and_sign(self):
        literal = atom("p", "X", negated=True)
        renamed = literal.with_predicate("Δ:p")
        assert renamed.predicate == "Δ:p"
        assert renamed.negated
        assert renamed.args == literal.args

    def test_substitute(self):
        literal = atom("p", "X", "Y")
        result = literal.substitute({"X": Constant(1)})
        assert result.args == (Constant(1), Variable("Y"))

    def test_str_forms(self):
        assert str(atom("p", "X")) == "p(X)"
        assert str(atom("p", "X", negated=True)) == "not p(X)"


class TestComparison:
    def test_unknown_operator_rejected(self):
        with pytest.raises(SchemaError):
            Comparison("~", Variable("X"), Constant(1))

    def test_variables(self):
        comparison = Comparison("<", Variable("X"), Variable("Y"))
        assert comparison.variables() == frozenset({"X", "Y"})

    def test_substitute(self):
        comparison = Comparison("=", Variable("X"), Constant(1))
        assert comparison.substitute({"X": "Z"}).left == Variable("Z")


class TestAggregate:
    def _aggregate(self):
        return Aggregate(
            atom("hop", "S", "D", "C"),
            (Variable("S"), Variable("D")),
            Variable("M"),
            "MIN",
            Variable("C"),
        )

    def test_exported_variables(self):
        assert self._aggregate().variables() == frozenset({"S", "D", "M"})

    def test_negated_inner_rejected(self):
        with pytest.raises(SchemaError):
            Aggregate(
                atom("hop", "S", "C", negated=True),
                (Variable("S"),),
                Variable("M"),
                "MIN",
                Variable("C"),
            )

    def test_unknown_function_rejected(self):
        with pytest.raises(SchemaError):
            Aggregate(
                atom("hop", "S", "C"),
                (Variable("S"),),
                Variable("M"),
                "MEDIAN",
                Variable("C"),
            )

    def test_group_var_must_occur_in_relation(self):
        with pytest.raises(SchemaError):
            Aggregate(
                atom("hop", "S", "C"),
                (Variable("Q"),),
                Variable("M"),
                "MIN",
                Variable("C"),
            )

    def test_argument_vars_must_occur_in_relation(self):
        with pytest.raises(SchemaError):
            Aggregate(
                atom("hop", "S", "C"),
                (Variable("S"),),
                Variable("M"),
                "MIN",
                Variable("Z"),
            )

    def test_grouped_predicate(self):
        assert self._aggregate().predicate == "hop"

    def test_str_mentions_groupby(self):
        assert "GROUPBY" in str(self._aggregate())


class TestRule:
    def test_negated_head_rejected(self):
        with pytest.raises(SchemaError):
            Rule(atom("p", "X", negated=True), (atom("q", "X"),))

    def test_fact_detection(self):
        assert fact("p", 1, 2).is_fact
        assert not rule(atom("p", "X"), atom("q", "X")).is_fact

    def test_body_literals_includes_negated(self):
        r = rule(atom("p", "X"), atom("q", "X"), atom("r", "X", negated=True))
        assert [l.predicate for l in r.body_literals()] == ["q", "r"]

    def test_referenced_predicates_includes_aggregate_relation(self):
        aggregate = Aggregate(
            atom("u", "S", "C"),
            (Variable("S"),),
            Variable("M"),
            "SUM",
            Variable("C"),
        )
        r = Rule(atom("p", "S", "M"), (aggregate,))
        assert r.referenced_predicates() == frozenset({"u"})

    def test_str_roundtrippable_shape(self):
        r = rule(atom("p", "X"), atom("q", "X", "Y"), Comparison(
            "<", Variable("Y"), Constant(3)))
        assert str(r) == "p(X) :- q(X, Y), Y < 3."


class TestProgram:
    def test_idb_edb_split(self):
        program = Program([rule(atom("p", "X"), atom("q", "X"))])
        assert program.idb_predicates == frozenset({"p"})
        assert program.edb_predicates == frozenset({"q"})

    def test_declared_base_included(self):
        program = Program(
            [rule(atom("p", "X"), atom("q", "X"))], declared_base=["extra"]
        )
        assert "extra" in program.edb_predicates

    def test_declared_base_conflicting_with_idb_rejected(self):
        with pytest.raises(SchemaError):
            Program(
                [rule(atom("p", "X"), atom("q", "X"))], declared_base=["p"]
            )

    def test_arity_conflict_rejected(self):
        with pytest.raises(SchemaError, match="arity"):
            Program(
                [
                    rule(atom("p", "X"), atom("q", "X")),
                    rule(atom("r", "X"), atom("q", "X", "Y")),
                ]
            )

    def test_rules_for(self):
        r1 = rule(atom("p", "X"), atom("q", "X"))
        r2 = rule(atom("p", "X"), atom("s", "X"))
        program = Program([r1, r2])
        assert program.rules_for("p") == (r1, r2)
        assert program.rules_for("missing") == ()

    def test_with_rules_adds_and_removes(self):
        r1 = rule(atom("p", "X"), atom("q", "X"))
        r2 = rule(atom("p", "X"), atom("s", "X"))
        program = Program([r1])
        changed = program.with_rules(added=[r2], removed=[r1])
        assert list(changed) == [r2]

    def test_with_rules_missing_removal_rejected(self):
        r1 = rule(atom("p", "X"), atom("q", "X"))
        r2 = rule(atom("p", "X"), atom("s", "X"))
        with pytest.raises(SchemaError):
            Program([r1]).with_rules(removed=[r2])

    def test_arity_of(self):
        program = Program([rule(atom("p", "X", "Y"), atom("q", "X", "Y"))])
        assert program.arity_of("p") == 2
        assert program.arity_of("nope") is None

    def test_equality_and_hash(self):
        r1 = rule(atom("p", "X"), atom("q", "X"))
        assert Program([r1]) == Program([r1])
        assert hash(Program([r1])) == hash(Program([r1]))
