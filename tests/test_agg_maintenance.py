"""Unit tests for AggregateView (Algorithm 6.1)."""

import pytest

from repro.core.agg_maintenance import AggregateView
from repro.datalog.parser import parse_rule
from repro.errors import MaintenanceError
from repro.storage.relation import CountedRelation, relation_from_rows

MIN_RULE = "m(S, M) :- GROUPBY(u(S, C), [S], M = MIN(C))."
SUM_RULE = "t(S, M) :- GROUPBY(u(S, C), [S], M = SUM(C))."


def _view(rule_source=MIN_RULE, unit=True) -> AggregateView:
    return AggregateView(parse_rule(rule_source), unit_counts=unit)


def _delta(entries) -> CountedRelation:
    delta = CountedRelation("Δu")
    for row, count in entries.items():
        delta.add(row, count)
    return delta


class TestConstruction:
    def test_requires_normalized_rule(self):
        with pytest.raises(MaintenanceError, match="normalized"):
            AggregateView(
                parse_rule("p(S, M) :- q(S), GROUPBY(u(S, C), [S], "
                           "M = MIN(C))."),
                unit_counts=True,
            )

    def test_initialize_builds_groups(self):
        view = _view()
        relation = view.initialize(
            relation_from_rows("u", [("a", 5), ("a", 2), ("b", 7)])
        )
        assert relation.to_dict() == {("a", 2): 1, ("b", 7): 1}
        assert view.group_count() == 2


class TestMaintain:
    def test_insert_changes_minimum(self):
        view = _view()
        grouped = relation_from_rows("u", [("a", 5)])
        view.initialize(grouped)
        delta_t = view.maintain(grouped, _delta({("a", 3): 1}))
        assert delta_t.to_dict() == {("a", 5): -1, ("a", 3): 1}

    def test_insert_not_changing_minimum_yields_empty_delta(self):
        view = _view()
        grouped = relation_from_rows("u", [("a", 5)])
        view.initialize(grouped)
        delta_t = view.maintain(grouped, _delta({("a", 9): 1}))
        assert delta_t.to_dict() == {}
        assert view.incremental_updates == 1
        assert view.recomputes == 0

    def test_new_group_appears(self):
        view = _view()
        grouped = relation_from_rows("u", [("a", 5)])
        view.initialize(grouped)
        delta_t = view.maintain(grouped, _delta({("b", 4): 1}))
        assert delta_t.to_dict() == {("b", 4): 1}

    def test_group_disappears(self):
        view = _view()
        grouped = relation_from_rows("u", [("a", 5)])
        view.initialize(grouped)
        delta_t = view.maintain(grouped, _delta({("a", 5): -1}))
        assert delta_t.to_dict() == {("a", 5): -1}
        assert view.group_count() == 0

    def test_extremum_delete_triggers_recompute(self):
        view = _view()
        grouped = relation_from_rows("u", [("a", 2), ("a", 5)])
        view.initialize(grouped)
        delta_t = view.maintain(grouped, _delta({("a", 2): -1}))
        assert delta_t.to_dict() == {("a", 2): -1, ("a", 5): 1}
        assert view.recomputes == 1

    def test_nonextremum_delete_is_incremental(self):
        view = _view()
        grouped = relation_from_rows("u", [("a", 2), ("a", 5)])
        view.initialize(grouped)
        delta_t = view.maintain(grouped, _delta({("a", 5): -1}))
        assert delta_t.to_dict() == {}
        assert view.recomputes == 0

    def test_sum_over_multiplicities_bag_mode(self):
        view = _view(SUM_RULE, unit=False)
        grouped = CountedRelation("u")
        grouped.add(("a", 10), 2)
        view.initialize(grouped)
        delta = CountedRelation("Δu")
        delta.add(("a", 10), 1)  # a third copy
        delta_t = view.maintain(grouped, delta)
        assert delta_t.to_dict() == {("a", 20): -1, ("a", 30): 1}

    def test_unit_mode_ignores_multiplicities(self):
        view = _view(SUM_RULE, unit=True)
        grouped = CountedRelation("u")
        grouped.add(("a", 10), 2)
        relation = view.initialize(grouped)
        assert relation.to_dict() == {("a", 10): 1}

    def test_untouched_groups_not_visited(self):
        view = _view()
        grouped = relation_from_rows(
            "u", [("a", 1), ("b", 2), ("c", 3)]
        )
        view.initialize(grouped)
        view.maintain(grouped, _delta({("a", 0): 1}))
        # Only group 'a' was maintained.
        assert view.incremental_updates + view.recomputes == 1

    def test_lazy_initialization_on_first_maintain(self):
        view = _view()
        grouped = relation_from_rows("u", [("a", 5)])
        delta_t = view.maintain(grouped, _delta({("a", 3): 1}))
        assert delta_t.to_dict() == {("a", 5): -1, ("a", 3): 1}


class TestInnerLiteralPatterns:
    def test_constant_in_inner_literal_filters_rows(self):
        rule = "m(M) :- GROUPBY(u(fixed, C), [], M = SUM(C))."
        view = AggregateView(parse_rule(rule), unit_counts=True)
        grouped = relation_from_rows(
            "u", [("fixed", 1), ("other", 100), ("fixed", 2)]
        )
        relation = view.initialize(grouped)
        assert relation.to_dict() == {(3,): 1}

    def test_changes_to_filtered_rows_ignored(self):
        rule = "m(M) :- GROUPBY(u(fixed, C), [], M = SUM(C))."
        view = AggregateView(parse_rule(rule), unit_counts=True)
        grouped = relation_from_rows("u", [("fixed", 1)])
        view.initialize(grouped)
        delta_t = view.maintain(grouped, _delta({("other", 50): 1}))
        assert delta_t.to_dict() == {}

    def test_expression_argument(self):
        rule = "m(S, M) :- GROUPBY(u(S, C), [S], M = SUM(C * 2))."
        view = AggregateView(parse_rule(rule), unit_counts=True)
        relation = view.initialize(relation_from_rows("u", [("a", 3)]))
        assert relation.to_dict() == {("a", 6): 1}

    def test_empty_group_by_single_global_group(self):
        rule = "total(M) :- GROUPBY(u(S, C), [], M = COUNT(C))."
        view = AggregateView(parse_rule(rule), unit_counts=True)
        relation = view.initialize(
            relation_from_rows("u", [("a", 1), ("b", 2)])
        )
        assert relation.to_dict() == {(2,): 1}
