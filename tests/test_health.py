"""Tests for the health layer: SLO engine, continuous profiler, top.

Unit-level coverage drives :class:`HealthEngine` and
:class:`ContinuousProfiler` with stub reports (deterministic pass-count
windows, no wall clock); the integration tests go through a real
:class:`ViewMaintainer` — committed, recompute-fallback, and
quarantined passes all reach the hooks, and ``top_frame`` renders the
live state.
"""

import json
import logging

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.errors import PoisonChangesetError
from repro.guard import GuardPolicy
from repro.obs import (
    SLO,
    CallbackAlertSink,
    ContinuousProfiler,
    HealthEngine,
    JsonlAlertSink,
    LogAlertSink,
    MetricsRegistry,
    RingSink,
    Tracer,
    load_slos,
    render_profile,
    top_frame,
    validate_profile_report,
)
from repro.storage.changeset import Changeset
from repro.storage.database import Database

HOP_SRC = "hop(X,Y) :- link(X,Z), link(Z,Y)."
EDGES = [("a", "b"), ("b", "c"), ("c", "d")]


def maintainer_with(source=HOP_SRC, **kwargs):
    db = Database()
    db.insert_rows("link", EDGES)
    return ViewMaintainer.from_source(source, db, **kwargs).initialize()


class _StubStats:
    def __init__(self, phase_seconds):
        self.phase_seconds = phase_seconds


class _StubReport:
    """A MaintenanceReport stand-in with just what the hooks read."""

    def __init__(
        self,
        strategy="counting",
        seconds=0.01,
        views=("hop",),
        tuples=2,
        span_id=None,
        phase_seconds=None,
    ):
        self.strategy = strategy
        self.seconds = seconds
        self.span_id = span_id
        self.view_deltas = {view: object() for view in views}
        self._tuples = tuples
        self._phases = phase_seconds or {"propagate": seconds}

    def engine_stats(self):
        return _StubStats(self._phases)

    def total_changes(self):
        return self._tuples

    def changed_views(self):
        return list(self.view_deltas)


class _StubMaintainer:
    def __init__(self, lag=0):
        self._lag = lag

    def lag(self):
        return {"changesets": self._lag, "seconds": 0.0}


BURNY = dict(compliance=0.8, fast_window=3, slow_window=6,
             burn_threshold=1.5)


# ------------------------------------------------------------------- spec


class TestSLOSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLO("hop", "uptime", 0)
        with pytest.raises(ValueError):
            SLO("hop", "error_rate", 0.0, compliance=1.0)
        with pytest.raises(ValueError):
            SLO("hop", "error_rate", 0.0, fast_window=0)
        with pytest.raises(ValueError):
            SLO("hop", "error_rate", 0.0, fast_window=9, slow_window=3)
        with pytest.raises(ValueError):
            SLO("hop", "error_rate", 0.0, burn_threshold=0.0)
        with pytest.raises(ValueError):
            SLO("hop", "error_rate", -1.0)

    def test_budget_is_complement_of_compliance(self):
        assert SLO("hop", "error_rate", 0.0, compliance=0.8).budget == (
            pytest.approx(0.2)
        )

    def test_dict_round_trip(self):
        slo = SLO("hop", "freshness_lag", 2, **BURNY)
        assert SLO.from_dict(slo.to_dict()) == slo

    def test_from_dict_rejects_unknown_and_missing_keys(self):
        with pytest.raises(ValueError):
            SLO.from_dict({"view": "hop", "objective": "error_rate",
                           "target": 0, "color": "red"})
        with pytest.raises(ValueError):
            SLO.from_dict({"view": "hop", "objective": "error_rate"})

    def test_load_slos_accepts_json_text_dicts_and_instances(self):
        spec = [{"view": "hop", "objective": "freshness_lag", "target": 0}]
        from_list = load_slos(spec)
        from_json = load_slos(json.dumps(spec))
        from_doc = load_slos({"slos": spec})
        from_instances = load_slos(from_list)
        assert from_list == from_json == from_doc == from_instances
        with pytest.raises(ValueError):
            load_slos("42")


# ----------------------------------------------------------------- engine


class TestHealthEngine:
    def engine(self, **kwargs):
        return HealthEngine(
            [SLO("hop", "error_rate", 0.0, **BURNY)],
            metrics=MetricsRegistry(),
            **kwargs,
        )

    def drive(self, engine, strategies, lag=0):
        alerts = []
        maintainer = _StubMaintainer(lag=lag)
        for strategy in strategies:
            alerts.extend(
                engine.observe_pass(maintainer, _StubReport(strategy))
            )
        return alerts

    def test_duplicate_slo_rejected(self):
        slo = SLO("hop", "error_rate", 0.0)
        with pytest.raises(ValueError):
            HealthEngine([slo, slo], metrics=MetricsRegistry())

    def test_healthy_passes_never_alert(self):
        engine = self.engine()
        assert self.drive(engine, ["counting"] * 10) == []
        (state,) = engine.states()
        assert state["good_fraction"] == 1.0
        assert state["budget_remaining"] == 1.0
        assert not state["alerting"]

    def test_fire_needs_a_full_fast_window(self):
        engine = self.engine()
        # Two degraded passes: burn is hot but the fast window (3) is
        # not full yet — a cold start must not page.
        assert self.drive(engine, ["quarantined"] * 2) == []
        alerts = self.drive(engine, ["quarantined"])
        assert [a["event"] for a in alerts] == ["fire"]
        assert engine.alerts_active() == 1

    def test_fire_payload_contents(self):
        engine = self.engine()
        (alert,) = self.drive(engine, ["quarantined"] * 3)
        assert alert["event"] == "fire"
        assert alert["view"] == "hop"
        assert alert["objective"] == "error_rate"
        assert alert["window"] == {"fast": 3, "slow": 6}
        assert alert["burn_rate"]["fast"] >= alert["threshold"] == 1.5
        assert alert["pass_index"] == 3
        json.dumps(alert)  # payload must be JSON-serializable

    def test_no_refire_while_alerting(self):
        engine = self.engine()
        alerts = self.drive(engine, ["quarantined"] * 6)
        assert [a["event"] for a in alerts] == ["fire"]
        assert engine.alerts_fired == 1

    def test_clear_when_fast_window_cools(self):
        engine = self.engine()
        self.drive(engine, ["quarantined"] * 3)
        # One good pass still leaves 2/3 of the fast window bad
        # (burn 3.33 >= 1.5); three good passes cool it below threshold.
        assert self.drive(engine, ["counting"]) == []
        alerts = self.drive(engine, ["counting", "counting"])
        assert [a["event"] for a in alerts] == ["clear"]
        assert engine.alerts_active() == 0
        assert engine.alerts_cleared == 1

    def test_recompute_fallback_counts_as_degraded(self):
        engine = self.engine()
        alerts = self.drive(engine, ["recompute"] * 3)
        assert [a["event"] for a in alerts] == ["fire"]

    def test_freshness_lag_objective_reads_maintainer_lag(self):
        engine = HealthEngine(
            [SLO("hop", "freshness_lag", 0, **BURNY)],
            metrics=MetricsRegistry(),
        )
        assert self.drive(engine, ["counting"] * 3, lag=0) == []
        alerts = self.drive(engine, ["counting"] * 3, lag=2)
        assert [a["event"] for a in alerts] == ["fire"]
        (state,) = engine.states()
        assert state["last_value"] == 2.0

    def test_pass_duration_objective(self):
        engine = HealthEngine(
            [SLO("hop", "pass_duration_p99", 1.0, **BURNY)],
            metrics=MetricsRegistry(),
        )
        maintainer = _StubMaintainer()
        for _ in range(3):
            alerts = engine.observe_pass(
                maintainer, _StubReport(seconds=5.0)
            )
        assert [a["event"] for a in alerts] == ["fire"]

    def test_metrics_family_recorded(self):
        registry = MetricsRegistry()
        engine = HealthEngine(
            [SLO("hop", "error_rate", 0.0, **BURNY)], metrics=registry
        )
        engine.observe_pass(_StubMaintainer(), _StubReport("quarantined"))
        assert registry.get("repro_slo_compliance").value(
            view="hop", objective="error_rate"
        ) == 0.0
        assert registry.get("repro_slo_burn_rate").value(
            view="hop", objective="error_rate", window="fast"
        ) > 0.0
        assert registry.get(
            "repro_slo_error_budget_remaining"
        ).value(view="hop", objective="error_rate") < 1.0
        text = registry.to_prometheus()
        assert "repro_slo_alerts_active" in text

    def test_to_dict_summary(self):
        engine = self.engine()
        self.drive(engine, ["quarantined"] * 3)
        summary = engine.to_dict()
        assert summary["enabled"] is True
        assert summary["passes_evaluated"] == 3
        assert summary["alerts_active"] == 1
        assert summary["alerts_fired"] == 1
        assert len(summary["slos"]) == 1


class TestAlertSinks:
    def slo(self):
        return SLO("hop", "error_rate", 0.0, **BURNY)

    def test_callback_and_jsonl_sinks_receive_alerts(self, tmp_path):
        path = str(tmp_path / "alerts.jsonl")
        seen = []
        engine = HealthEngine(
            [self.slo()],
            metrics=MetricsRegistry(),
            sinks=[CallbackAlertSink(seen.append), JsonlAlertSink(path)],
        )
        for _ in range(3):
            engine.observe_pass(_StubMaintainer(), _StubReport("skipped"))
        engine.close()
        assert [a["event"] for a in seen] == ["fire"]
        with open(path, encoding="utf-8") as handle:
            logged = [json.loads(line) for line in handle]
        assert logged == seen

    def test_raising_sink_does_not_abort_the_pass(self):
        # A user-supplied sink that raises must never poison the
        # maintenance pass that produced the alert; healthy sinks
        # later in the list still receive it.
        def explode(_alert):
            raise RuntimeError("webhook down")

        seen = []
        registry = MetricsRegistry()
        engine = HealthEngine(
            [self.slo()],
            metrics=registry,
            sinks=[CallbackAlertSink(explode), CallbackAlertSink(seen.append)],
        )
        for _ in range(3):
            engine.observe_pass(_StubMaintainer(), _StubReport("skipped"))
        assert [a["event"] for a in seen] == ["fire"]
        assert engine.alerts_dropped == 1
        assert registry.get("repro_alerts_dropped_total").value(
            sink="CallbackAlertSink"
        ) == 1
        assert engine.to_dict()["alerts_dropped"] == 1

    def test_broken_sink_logged_once(self, caplog):
        def explode(_alert):
            raise RuntimeError("still down")

        engine = HealthEngine(
            [self.slo()],
            metrics=MetricsRegistry(),
            sinks=[CallbackAlertSink(explode)],
        )
        with caplog.at_level(logging.WARNING, logger="repro.obs.health"):
            # fire, clear, fire again: three alerts through the same
            # broken sink, one warning total.
            for strategy in ["skipped"] * 3 + ["counting"] * 3 + ["skipped"] * 3:
                engine.observe_pass(_StubMaintainer(), _StubReport(strategy))
        assert engine.alerts_dropped == 3
        dropped = [r for r in caplog.records if "dropped" in r.message]
        assert len(dropped) == 1

    def test_log_sink_warns_on_fire(self, caplog):
        engine = HealthEngine(
            [self.slo()],
            metrics=MetricsRegistry(),
            sinks=[LogAlertSink()],
        )
        with caplog.at_level(logging.WARNING, logger="repro.obs.health"):
            for _ in range(3):
                engine.observe_pass(
                    _StubMaintainer(), _StubReport("skipped")
                )
        assert any("fire" in r.message for r in caplog.records)


# --------------------------------------------------------------- profiler


class TestContinuousProfiler:
    def test_window_validated(self):
        with pytest.raises(ValueError):
            ContinuousProfiler(window=0)

    def test_quantiles_per_key(self):
        profiler = ContinuousProfiler()
        for ms in (1, 2, 3, 4, 100):
            profiler.observe_pass(_StubReport(seconds=ms / 1000.0))
        report = profiler.report()
        assert validate_profile_report(report) == []
        entry = next(
            e for e in report["profiles"]
            if e["view"] == "hop" and e["phase"] == "total"
        )
        assert entry["count"] == 5
        assert entry["p50"] == pytest.approx(0.003)
        assert entry["p50"] <= entry["p95"] <= entry["p99"]
        assert entry["p99"] > 0.05  # the fat tail dominates p99

    def test_aggregate_pseudo_view_and_phase_breakdown(self):
        profiler = ContinuousProfiler()
        profiler.observe_pass(
            _StubReport(views=("hop",),
                        phase_seconds={"seed": 0.001, "propagate": 0.002})
        )
        profiler.observe_pass(
            _StubReport(views=("trihop",),
                        phase_seconds={"seed": 0.001, "propagate": 0.002})
        )
        report = profiler.report()
        keys = {(e["view"], e["phase"]) for e in report["profiles"]}
        assert ("*", "total") in keys
        assert ("*", "propagate") in keys
        star_total = next(
            e for e in report["profiles"]
            if e["view"] == "*" and e["phase"] == "total"
        )
        assert star_total["count"] == 2
        filtered = profiler.report(view="hop")
        assert {e["view"] for e in filtered["profiles"]} == {"hop"}

    def test_degraded_zero_work_passes_not_profiled(self):
        profiler = ContinuousProfiler()
        profiler.observe_pass(
            _StubReport("quarantined", seconds=0.0, views=())
        )
        assert profiler.passes == 0
        assert len(profiler) == 0

    def test_exemplar_tracks_worst_pass(self):
        profiler = ContinuousProfiler()
        profiler.observe_pass(_StubReport(seconds=0.001, span_id=11))
        profiler.observe_pass(_StubReport(seconds=0.050, span_id=22))
        profiler.observe_pass(_StubReport(seconds=0.002, span_id=33))
        entry = next(
            e for e in profiler.report()["profiles"]
            if e["view"] == "hop" and e["phase"] == "total"
        )
        assert entry["exemplar"] == {"span_id": 22, "seconds": 0.050}
        assert profiler.worst_exemplar() == 22

    def test_window_bounds_samples_but_not_totals(self):
        profiler = ContinuousProfiler(window=4)
        for _ in range(10):
            profiler.observe_pass(_StubReport(seconds=0.001))
        entry = next(
            e for e in profiler.report()["profiles"]
            if e["view"] == "hop" and e["phase"] == "total"
        )
        assert entry["count"] == 10  # lifetime count survives eviction
        assert entry["total_seconds"] == pytest.approx(0.010)

    def test_render_empty_and_summary(self):
        profiler = ContinuousProfiler(window=16)
        assert "no passes" in render_profile(profiler)
        assert profiler.summary() == {
            "enabled": True, "passes": 0, "keys": 0, "window": 16,
        }


# ------------------------------------------------------------ integration


class TestMaintainerIntegration:
    def build(self, tmp_path, ring=None):
        maintainer = maintainer_with(
            tracer=Tracer(ring) if ring is not None else None,
            metrics=MetricsRegistry(),
            guard=GuardPolicy(
                quarantine_path=str(tmp_path / "quarantine.jsonl")
            ),
        )
        engine = maintainer.attach_health(
            [{"view": "hop", "objective": "freshness_lag", "target": 0,
              **BURNY},
             {"view": "hop", "objective": "error_rate", "target": 0.0,
              **BURNY}]
        )
        profiler = maintainer.enable_profiler()
        return maintainer, engine, profiler

    def test_committed_passes_reach_both_hooks(self, tmp_path):
        maintainer, engine, profiler = self.build(tmp_path)
        maintainer.apply(Changeset().insert("link", ("d", "e")))
        assert engine.passes_evaluated == 1
        assert profiler.passes == 1
        assert engine.alerts_active() == 0

    def test_quarantined_passes_fire_and_recovery_clears(self, tmp_path):
        maintainer, engine, profiler = self.build(tmp_path)
        alerts = []
        engine.sinks.append(CallbackAlertSink(alerts.append))
        maintainer.faults.arm(
            "admission", every_n=1,
            exception=PoisonChangesetError("poison"),
        )
        for index in range(3):
            maintainer.apply(Changeset().insert("link", ("d", f"p{index}")))
        fired = {(a["view"], a["objective"]) for a in alerts
                 if a["event"] == "fire"}
        assert fired == {("hop", "freshness_lag"), ("hop", "error_rate")}
        # Degraded passes are scored but not profiled.
        assert engine.passes_evaluated == 3
        assert profiler.passes == 0

        maintainer.faults.disarm()
        maintainer.requeue_quarantined()
        for index in range(3):
            maintainer.apply(Changeset().insert("link", ("d", f"g{index}")))
        assert engine.alerts_active() == 0
        assert {a["objective"] for a in alerts if a["event"] == "clear"} == {
            "freshness_lag", "error_rate",
        }

    def test_profiler_exemplar_resolves_in_ring(self, tmp_path):
        ring = RingSink()
        maintainer, _engine, profiler = self.build(tmp_path, ring=ring)
        maintainer.apply(Changeset().insert("link", ("d", "e")))
        exemplar = profiler.worst_exemplar()
        assert exemplar is not None
        pass_ids = {e["id"] for e in ring.events if e["kind"] == "pass"}
        assert exemplar in pass_ids
        rendered = render_profile(profiler, ring_events=list(ring.events))
        assert f"worst exemplar (span {exemplar})" in rendered

    def test_exemplar_absent_when_tracing_disabled(self, tmp_path):
        maintainer, _engine, profiler = self.build(tmp_path)
        maintainer.apply(Changeset().insert("link", ("d", "e")))
        assert profiler.worst_exemplar() is None
        report = profiler.report()
        assert validate_profile_report(report) == []
        assert all(e["exemplar"] is None for e in report["profiles"])


class TestTopFrame:
    def test_frame_sections_plain(self, tmp_path):
        maintainer, _engine, _profiler = TestMaintainerIntegration().build(
            tmp_path
        )
        maintainer.apply(Changeset().insert("link", ("d", "e")))
        frame = top_frame(maintainer, color=False, clock=0.0)
        assert "repro top" in frame
        assert "health (SLOs)" in frame
        assert "hop" in frame and "freshness_lag" in frame
        assert "staleness lag" in frame
        assert "strategy mix" in frame
        assert "breaker closed (code 0)" in frame
        assert "quarantine=0" in frame
        assert "hot phases" in frame
        assert "\x1b[" not in frame

    def test_frame_colors_alerting_slo(self, tmp_path):
        maintainer, engine, _profiler = TestMaintainerIntegration().build(
            tmp_path
        )
        maintainer.faults.arm(
            "admission", every_n=1,
            exception=PoisonChangesetError("poison"),
        )
        for index in range(3):
            maintainer.apply(Changeset().insert("link", ("d", f"p{index}")))
        assert engine.alerts_active() > 0
        colored = top_frame(maintainer, color=True, clock=0.0)
        assert "\x1b[31mALERT\x1b[0m" in colored
        plain = top_frame(maintainer, color=False, clock=0.0)
        assert "ALERT" in plain and "\x1b[" not in plain

    def test_frame_without_health_layer(self):
        maintainer = maintainer_with(metrics=MetricsRegistry())
        frame = top_frame(maintainer, color=False, clock=0.0)
        assert "no SLOs configured" in frame
        assert "journal" in frame
        assert "(not attached)" in frame
