"""Tests for dependency analysis and stratification (Definition 3.1)."""

import pytest

from repro.datalog.dependency import DependencyGraph
from repro.datalog.parser import parse_program
from repro.datalog.stratify import stratify
from repro.errors import StratificationError


class TestDependencyGraph:
    def test_edges_directions(self):
        program = parse_program("p(X) :- q(X). r(X) :- p(X).")
        graph = DependencyGraph(program)
        assert "p" in graph.successors["q"]
        assert "q" in graph.predecessors["p"]

    def test_negative_edge_recorded(self):
        program = parse_program("p(X) :- q(X), not s(X).")
        graph = DependencyGraph(program)
        assert graph.depends_negatively("p", "s")
        assert not graph.depends_negatively("p", "q")

    def test_aggregate_edge_is_negative(self):
        program = parse_program(
            "m(S, M) :- GROUPBY(u(S, C), [S], M = SUM(C))."
        )
        graph = DependencyGraph(program)
        assert graph.depends_negatively("m", "u")

    def test_scc_of_mutual_recursion(self):
        program = parse_program(
            "even(X) :- base(X). even(X) :- odd(X), step(X)."
            "odd(X) :- even(X), step(X)."
        )
        graph = DependencyGraph(program)
        components = graph.strongly_connected_components()
        mutual = [c for c in components if len(c) > 1]
        assert mutual == [frozenset({"even", "odd"})]

    def test_components_listed_dependencies_first(self):
        program = parse_program("p(X) :- q(X). r(X) :- p(X).")
        components = DependencyGraph(program).strongly_connected_components()
        order = [next(iter(c)) for c in components]
        assert order.index("q") < order.index("p") < order.index("r")

    def test_self_loop_is_recursive(self):
        program = parse_program("tc(X,Y) :- tc(X,Z), link(Z,Y).")
        graph = DependencyGraph(program)
        scc = frozenset({"tc"})
        assert graph.is_recursive_predicate("tc", scc)
        assert not graph.is_recursive_predicate("link", frozenset({"link"}))

    def test_deep_chain_no_recursion_limit(self):
        # 500 stacked views: iterative Tarjan must not blow the stack.
        rules = ["v0(X) :- base(X)."]
        for i in range(1, 500):
            rules.append(f"v{i}(X) :- v{i - 1}(X).")
        program = parse_program("\n".join(rules))
        strat = stratify(program)
        assert strat.stratum_of["v499"] == 500


class TestStratify:
    def test_paper_example_stratum_numbers(self):
        """Example 4.2: SN(hop) = 1, SN(tri_hop) = 2, base = 0."""
        program = parse_program(
            "hop(X,Y) :- link(X,Z), link(Z,Y)."
            "tri_hop(X,Y) :- hop(X,Z), link(Z,Y)."
        )
        strat = stratify(program)
        assert strat.stratum_of["link"] == 0
        assert strat.stratum_of["hop"] == 1
        assert strat.stratum_of["tri_hop"] == 2

    def test_rsn_equals_head_sn(self):
        program = parse_program(
            "hop(X,Y) :- link(X,Z), link(Z,Y)."
            "tri_hop(X,Y) :- hop(X,Z), link(Z,Y)."
        )
        strat = stratify(program)
        for rule in program:
            assert strat.rsn(rule) == strat.stratum_of[rule.head.predicate]

    def test_recursive_scc_shares_stratum(self):
        program = parse_program(
            "even(X) :- zero(X). even(X) :- odd(Y), succ(Y, X)."
            "odd(X) :- even(Y), succ(Y, X)."
        )
        strat = stratify(program)
        assert strat.stratum_of["even"] == strat.stratum_of["odd"]
        assert strat.recursive_predicates == {"even", "odd"}

    def test_negation_through_strata_allowed(self):
        program = parse_program(
            "p(X) :- q(X). r(X) :- q(X), not p(X)."
        )
        strat = stratify(program)
        assert strat.stratum_of["r"] > strat.stratum_of["p"]

    def test_negative_self_cycle_rejected(self):
        program = parse_program("p(X) :- q(X), not p(X).")
        with pytest.raises(StratificationError):
            stratify(program)

    def test_negative_cycle_through_two_predicates_rejected(self):
        program = parse_program(
            "p(X) :- q(X), not r(X). r(X) :- q(X), p(X)."
        )
        with pytest.raises(StratificationError):
            stratify(program)

    def test_aggregation_inside_recursion_rejected(self):
        program = parse_program(
            "p(X, C) :- GROUPBY(p(X, D), [X], C = SUM(D))."
        )
        with pytest.raises(StratificationError):
            stratify(program)

    def test_nonrecursive_program_flag(self):
        strat = stratify(parse_program("p(X) :- q(X)."))
        assert not strat.is_recursive

    def test_recursive_program_flag(self):
        strat = stratify(
            parse_program("tc(X,Y) :- link(X,Y). tc(X,Y) :- tc(X,Z), link(Z,Y).")
        )
        assert strat.is_recursive

    def test_rules_by_stratum_groups(self):
        program = parse_program(
            "hop(X,Y) :- link(X,Z), link(Z,Y)."
            "tri(X,Y) :- hop(X,Z), link(Z,Y)."
        )
        strat = stratify(program)
        groups = strat.rules_by_stratum()
        assert groups[0] == ()
        assert [r.head.predicate for r in groups[1]] == ["hop"]
        assert [r.head.predicate for r in groups[2]] == ["tri"]

    def test_independent_views_share_stratum(self):
        program = parse_program(
            "a(X) :- base(X). b(X) :- base(X)."
        )
        strat = stratify(program)
        assert strat.stratum_of["a"] == strat.stratum_of["b"] == 1
