"""Tests for the baseline maintainers (recompute, PF, insert-only, recount)."""

import pytest

from repro.baselines.pf import PFMaintainer
from repro.baselines.recompute import RecomputeMaintainer
from repro.baselines.recount import true_view_deltas
from repro.baselines.seminaive_insert import SemiNaiveInsertMaintainer
from repro.datalog.parser import parse_program
from repro.errors import MaintenanceError
from repro.storage.changeset import Changeset
from repro.workloads import mixed_batch, random_graph

from conftest import HOP_TRI_SRC, TC_SRC, database_with


class TestRecompute:
    def test_matches_paper_example(self, example_1_1_db):
        maintainer = RecomputeMaintainer.from_source(
            "hop(X,Y) :- link(X,Z), link(Z,Y).", example_1_1_db
        ).initialize()
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert maintainer.relation("hop").to_dict() == {("a", "c"): 1}

    def test_duplicate_semantics_supported(self, example_4_2_db):
        maintainer = RecomputeMaintainer.from_source(
            HOP_TRI_SRC, example_4_2_db, semantics="duplicate"
        ).initialize()
        assert maintainer.relation("tri_hop").count(("a", "h")) == 2

    def test_timing_recorded(self, example_1_1_db):
        maintainer = RecomputeMaintainer.from_source(
            TC_SRC, example_1_1_db
        ).initialize()
        maintainer.apply(Changeset().insert("link", ("z", "w")))
        assert maintainer.last_seconds > 0


class TestPF:
    @pytest.mark.parametrize("granularity", ["tuple", "relation"])
    def test_matches_recompute(self, granularity):
        edges = random_graph(15, 30, seed=4)
        changes, _ = mixed_batch("link", edges, 3, 3, node_count=15, seed=5)
        pf = PFMaintainer.from_source(
            TC_SRC, database_with(edges), granularity=granularity
        ).initialize()
        pf.apply(changes.copy())
        oracle = RecomputeMaintainer.from_source(
            TC_SRC, database_with(edges)
        ).initialize()
        oracle.apply(changes.copy())
        assert pf.relation("tc").as_set() == oracle.relation("tc").as_set()

    def test_tuple_granularity_fragments_per_tuple(self):
        edges = random_graph(12, 24, seed=6)
        changes, _ = mixed_batch("link", edges, 2, 3, node_count=12, seed=7)
        # An insert that re-adds a deleted row cancels inside the
        # changeset, so count the surviving delta entries.
        expected = sum(
            len(delta) for _name, delta in changes.copy()
        )
        pf = PFMaintainer.from_source(TC_SRC, database_with(edges)).initialize()
        pf.apply(changes)
        assert pf.fragments_processed == expected

    def test_relation_granularity_fragments_per_relation(self):
        edges = random_graph(12, 24, seed=6)
        changes, _ = mixed_batch("link", edges, 2, 3, node_count=12, seed=7)
        pf = PFMaintainer.from_source(
            TC_SRC, database_with(edges), granularity="relation"
        ).initialize()
        pf.apply(changes)
        assert pf.fragments_processed == 1

    def test_rederives_more_than_dred(self):
        """The §2 criticism: PF rederives again and again."""
        from repro.core.maintenance import ViewMaintainer

        edges = random_graph(20, 55, seed=8)
        changes, _ = mixed_batch("link", edges, 5, 0, node_count=20, seed=9)
        pf = PFMaintainer.from_source(TC_SRC, database_with(edges)).initialize()
        pf.apply(changes.copy())
        dred = ViewMaintainer.from_source(
            TC_SRC, database_with(edges), strategy="dred"
        ).initialize()
        report = dred.apply(changes.copy())
        assert pf.rederivation_attempts >= report.dred.stats.rederived


class TestSemiNaiveInsert:
    def test_insert_only_works(self):
        maintainer = SemiNaiveInsertMaintainer.from_source(
            TC_SRC, database_with([(0, 1), (2, 3)])
        ).initialize()
        maintainer.apply(Changeset().insert("link", (1, 2)))
        assert (0, 3) in maintainer.relation("tc")

    def test_deletions_rejected(self):
        maintainer = SemiNaiveInsertMaintainer.from_source(
            TC_SRC, database_with([(0, 1)])
        ).initialize()
        with pytest.raises(MaintenanceError, match="deletion"):
            maintainer.apply(Changeset().delete("link", (0, 1)))

    def test_negation_rejected_at_construction(self):
        with pytest.raises(MaintenanceError, match="positive"):
            SemiNaiveInsertMaintainer.from_source(
                "p(X) :- q(X), not r(X).", database_with([])
            )

    def test_aggregation_rejected_at_construction(self):
        with pytest.raises(MaintenanceError, match="positive"):
            SemiNaiveInsertMaintainer.from_source(
                "m(S, M) :- GROUPBY(q(S, C), [S], M = SUM(C)).",
                database_with([]),
            )


class TestRecountOracle:
    def test_reports_exact_deltas(self, example_1_1_db):
        program = parse_program("hop(X,Y) :- link(X,Z), link(Z,Y).")
        deltas = true_view_deltas(
            program, example_1_1_db, Changeset().delete("link", ("a", "b"))
        )
        assert deltas["hop"].to_dict() == {("a", "c"): -1, ("a", "e"): -1}

    def test_database_untouched(self, example_1_1_db):
        program = parse_program("hop(X,Y) :- link(X,Z), link(Z,Y).")
        before = example_1_1_db.copy()
        true_view_deltas(
            program, example_1_1_db, Changeset().delete("link", ("a", "b"))
        )
        assert example_1_1_db == before

    def test_unchanged_views_omitted(self, example_1_1_db):
        program = parse_program(HOP_TRI_SRC)
        deltas = true_view_deltas(
            program, example_1_1_db, Changeset().insert("other", ("x",))
        )
        assert deltas == {}
