"""Tests for the extended SQL constructs: HAVING, EXISTS, IN / NOT IN."""

import pytest

from repro.errors import ParseError, SchemaError
from repro.sql import Catalog, create_views, parse_sql, translate_sql
from repro.storage.changeset import Changeset
from repro.storage.database import Database


def _sales_db():
    db = Database()
    db.insert_rows(
        "sales",
        [("e", 50), ("e", 60), ("e", 10), ("w", 500), ("n", 1), ("n", 2),
         ("n", 3)],
    )
    return db


SALES = Catalog().declare_table("sales", ["region", "amount"])


class TestHaving:
    def test_having_filters_groups(self):
        sql = (
            "CREATE VIEW busy AS SELECT s.region, COUNT(*) AS n "
            "FROM sales s GROUP BY s.region HAVING COUNT(*) > 2;"
        )
        m = create_views(sql, SALES, _sales_db()).initialize()
        assert m.relation("busy").as_set() == {("e", 3), ("n", 3)}

    def test_having_with_aggregate_not_in_select(self):
        sql = (
            "CREATE VIEW rich AS SELECT s.region FROM sales s "
            "GROUP BY s.region HAVING SUM(s.amount) > 100;"
        )
        m = create_views(sql, SALES, _sales_db()).initialize()
        assert m.relation("rich").as_set() == {("e",), ("w",)}

    def test_having_conjunction(self):
        sql = (
            "CREATE VIEW both AS SELECT s.region FROM sales s "
            "GROUP BY s.region "
            "HAVING COUNT(*) > 2 AND SUM(s.amount) > 100;"
        )
        m = create_views(sql, SALES, _sales_db()).initialize()
        assert m.relation("both").as_set() == {("e",)}

    def test_having_or_splits_rules(self):
        sql = (
            "CREATE VIEW either AS SELECT s.region FROM sales s "
            "GROUP BY s.region "
            "HAVING COUNT(*) > 2 OR SUM(s.amount) > 400;"
        )
        program = translate_sql(SALES, sql)
        assert len(program.rules_for("either")) == 2
        m = create_views(sql, SALES, _sales_db(), strategy="dred").initialize()
        assert m.relation("either").as_set() == {("e",), ("n",), ("w",)}

    def test_having_group_column_comparison(self):
        sql = (
            "CREATE VIEW named AS SELECT s.region, COUNT(*) FROM sales s "
            "GROUP BY s.region HAVING s.region <> 'w';"
        )
        m = create_views(sql, SALES, _sales_db()).initialize()
        assert m.relation("named").as_set() == {("e", 3), ("n", 3)}

    def test_having_arithmetic_over_aggregates(self):
        sql = (
            "CREATE VIEW avgish AS SELECT s.region FROM sales s "
            "GROUP BY s.region HAVING SUM(s.amount) / COUNT(*) > 30;"
        )
        m = create_views(sql, SALES, _sales_db()).initialize()
        assert m.relation("avgish").as_set() == {("e",), ("w",)}

    def test_having_maintained_incrementally(self):
        sql = (
            "CREATE VIEW busy AS SELECT s.region, COUNT(*) AS n "
            "FROM sales s GROUP BY s.region HAVING COUNT(*) > 2;"
        )
        m = create_views(sql, SALES, _sales_db()).initialize()
        m.apply(Changeset().delete("sales", ("e", 10)))
        assert m.relation("busy").as_set() == {("n", 3)}
        m.consistency_check()

    def test_having_non_group_column_rejected(self):
        sql = (
            "CREATE VIEW bad AS SELECT s.region FROM sales s "
            "GROUP BY s.region HAVING s.amount > 3;"
        )
        with pytest.raises(SchemaError, match="grouping column"):
            translate_sql(SALES, sql)

    def test_having_subquery_rejected(self):
        sql = (
            "CREATE VIEW bad AS SELECT s.region FROM sales s "
            "GROUP BY s.region "
            "HAVING NOT EXISTS (SELECT * FROM sales q);"
        )
        with pytest.raises(SchemaError):
            translate_sql(SALES, sql)


EMP = (
    Catalog()
    .declare_table("emp", ["name", "dept"])
    .declare_table("banned", ["name"])
    .declare_table("dept", ["dept"])
)


def _emp_db():
    db = Database()
    db.insert_rows("emp", [("ada", "eng"), ("bob", "hr"), ("cyd", "eng")])
    db.insert_rows("banned", [("bob",)])
    db.insert_rows("dept", [("eng",), ("ops",)])
    return db


class TestExistsAndIn:
    def test_exists(self):
        sql = (
            "CREATE VIEW staffed AS SELECT d.dept FROM dept d "
            "WHERE EXISTS (SELECT * FROM emp e WHERE e.dept = d.dept);"
        )
        m = create_views(sql, EMP, _emp_db(), strategy="dred").initialize()
        assert m.relation("staffed").as_set() == {("eng",)}

    def test_exists_maintained(self):
        sql = (
            "CREATE VIEW staffed AS SELECT d.dept FROM dept d "
            "WHERE EXISTS (SELECT * FROM emp e WHERE e.dept = d.dept);"
        )
        m = create_views(sql, EMP, _emp_db(), strategy="dred").initialize()
        m.apply(Changeset().insert("emp", ("dee", "ops")))
        assert m.relation("staffed").as_set() == {("eng",), ("ops",)}
        m.consistency_check()

    def test_in_subquery(self):
        sql = (
            "CREATE VIEW valid AS SELECT e.name FROM emp e "
            "WHERE e.dept IN (SELECT d.dept FROM dept d);"
        )
        m = create_views(sql, EMP, _emp_db(), strategy="dred").initialize()
        assert m.relation("valid").as_set() == {("ada",), ("cyd",)}

    def test_not_in_subquery(self):
        sql = (
            "CREATE VIEW ok AS SELECT e.name FROM emp e "
            "WHERE e.name NOT IN (SELECT b.name FROM banned b);"
        )
        m = create_views(sql, EMP, _emp_db(), strategy="dred").initialize()
        assert m.relation("ok").as_set() == {("ada",), ("cyd",)}
        m.apply(Changeset().insert("banned", ("ada",)))
        assert m.relation("ok").as_set() == {("cyd",)}
        m.consistency_check()

    def test_in_with_expression_comparand(self):
        catalog = (
            Catalog()
            .declare_table("nums", ["v"])
            .declare_table("targets", ["t"])
        )
        sql = (
            "CREATE VIEW hits AS SELECT n.v FROM nums n "
            "WHERE n.v + 1 IN (SELECT t.t FROM targets t);"
        )
        db = Database()
        db.insert_rows("nums", [(1,), (2,), (3,)])
        db.insert_rows("targets", [(3,), (9,)])
        m = create_views(sql, catalog, db, strategy="dred").initialize()
        assert m.relation("hits").as_set() == {(2,)}

    def test_in_requires_single_column(self):
        sql = (
            "CREATE VIEW bad AS SELECT e.name FROM emp e "
            "WHERE e.dept IN (SELECT * FROM emp q);"
        )
        with pytest.raises(SchemaError, match="exactly one column"):
            translate_sql(EMP, sql)

    def test_not_without_exists_or_in_rejected(self):
        with pytest.raises(ParseError):
            parse_sql(
                "CREATE VIEW v AS SELECT e.name FROM emp e WHERE NOT "
                "e.name = 'x';"
            )

    def test_parse_shapes(self):
        views = parse_sql(
            "CREATE VIEW v AS SELECT e.name FROM emp e "
            "WHERE e.name IN (SELECT b.name FROM banned b) "
            "AND EXISTS (SELECT * FROM dept d);"
        )
        where = views[0].query.first.where
        assert where is not None
