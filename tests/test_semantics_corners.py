"""Semantics corner cases: comparisons in maintained rules, deep stacks,
negation Case 2, duplicate-mode negation, and computed heads."""

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.storage.changeset import Changeset
from repro.storage.database import Database

from conftest import database_with


class TestComparisonsInMaintainedRules:
    SRC = """
    cheap(X, Y, C) :- link(X, Y, C), C < 5.
    pricey(X, Y, C) :- link(X, Y, C), C >= 5.
    """

    def test_initial_partition(self):
        db = database_with([("a", "b", 3), ("b", "c", 9)])
        m = ViewMaintainer.from_source(self.SRC, db).initialize()
        assert m.relation("cheap").as_set() == {("a", "b", 3)}
        assert m.relation("pricey").as_set() == {("b", "c", 9)}

    def test_insert_routed_by_comparison(self):
        db = database_with([("a", "b", 3)])
        m = ViewMaintainer.from_source(self.SRC, db).initialize()
        m.apply(Changeset().insert("link", ("x", "y", 4)).insert(
            "link", ("x", "z", 50)))
        assert ("x", "y", 4) in m.relation("cheap")
        assert ("x", "z", 50) in m.relation("pricey")
        m.consistency_check()

    def test_update_moves_between_views(self):
        db = database_with([("a", "b", 3)])
        m = ViewMaintainer.from_source(self.SRC, db).initialize()
        m.apply(Changeset().update("link", ("a", "b", 3), ("a", "b", 7)))
        assert len(m.relation("cheap")) == 0
        assert ("a", "b", 7) in m.relation("pricey")
        m.consistency_check()


class TestComputedHeads:
    SRC = "total(X, Y, C1 + C2 * 10) :- link(X, Y, C1), weight(Y, C2)."

    def test_maintained_with_arithmetic_head(self):
        db = database_with([("a", "b", 3)])
        db.insert_rows("weight", [("b", 2)])
        m = ViewMaintainer.from_source(self.SRC, db).initialize()
        assert m.relation("total").as_set() == {("a", "b", 23)}
        m.apply(Changeset().update("weight", ("b", 2), ("b", 5)))
        assert m.relation("total").as_set() == {("a", "b", 53)}
        m.consistency_check()


class TestDeepViewStacks:
    def test_five_strata_propagation(self):
        rules = ["v1(X, Y) :- link(X, Y)."]
        for level in range(2, 6):
            rules.append(f"v{level}(X, Y) :- v{level-1}(X, Z), link(Z, Y).")
        db = database_with([(i, i + 1) for i in range(6)])
        m = ViewMaintainer.from_source("\n".join(rules), db).initialize()
        assert m.relation("v5").as_set() == {(0, 5), (1, 6)}
        m.apply(Changeset().delete("link", (2, 3)))
        assert len(m.relation("v5")) == 0
        m.consistency_check()

    def test_mid_stack_negation(self):
        source = """
        step2(X, Y) :- link(X, Z), link(Z, Y).
        blocked(X, Y) :- barrier(X, Y).
        ok2(X, Y) :- step2(X, Y), not blocked(X, Y).
        ok3(X, Y) :- ok2(X, Z), link(Z, Y).
        """
        db = database_with([("a", "b"), ("b", "c"), ("c", "d")])
        db.ensure_relation("barrier", 2)
        m = ViewMaintainer.from_source(source, db).initialize()
        assert ("a", "d") in m.relation("ok3")
        # Inserting a barrier kills ok2(a,c) and cascades to ok3.
        m.apply(Changeset().insert("barrier", ("a", "c")))
        assert ("a", "d") not in m.relation("ok3")
        m.consistency_check()
        # Removing it restores everything.
        m.apply(Changeset().delete("barrier", ("a", "c")))
        assert ("a", "d") in m.relation("ok3")
        m.consistency_check()


class TestFactoredNegationCase2:
    """§6.1 Case 2: a negated subgoal LEFT of the Δ-position reads ¬(νq)."""

    SRC = """
    hop(X, Y) :- link(X, Z), link(Z, Y).
    lonely(X, Y) :- not hop(X, Y), link(X, Y).
    """

    @pytest.mark.parametrize("mode", ["factored", "expansion"])
    def test_simultaneous_negation_and_positive_change(self, mode):
        # One changeset both inserts a link (changing the positive
        # subgoal) and changes hop (flipping the negation) — the mixed
        # case where Case 2's ν-reading matters.
        db = database_with([("a", "b"), ("b", "c")])
        m = ViewMaintainer.from_source(
            self.SRC, db, counting_mode=mode
        ).initialize()
        assert ("a", "b") in m.relation("lonely")
        m.apply(
            Changeset().insert("link", ("a", "c")).insert("link", ("c", "d"))
        )
        # hop now holds (a,c) and (b,d): link(a,c) is NOT lonely.
        assert ("a", "c") not in m.relation("lonely")
        assert ("c", "d") in m.relation("lonely")
        m.consistency_check()


class TestDuplicateModeNegation:
    SRC = """
    hop(X, Y) :- link(X, Z), link(Z, Y).
    direct_only(X, Y) :- link(X, Y), not hop(X, Y).
    """

    def test_count_drop_without_crossing_keeps_negation_false(self):
        # hop(a,c) has 2 derivations; delete one: still present, so
        # direct_only must not gain (a, c).
        db = database_with(
            [("a", "b"), ("b", "c"), ("a", "d"), ("d", "c"), ("a", "c")]
        )
        m = ViewMaintainer.from_source(
            self.SRC, db, semantics="duplicate"
        ).initialize()
        assert ("a", "c") not in m.relation("direct_only")
        m.apply(Changeset().delete("link", ("a", "b")))
        assert ("a", "c") not in m.relation("direct_only")
        m.consistency_check()

    def test_crossing_flips_negation(self):
        db = database_with([("a", "b"), ("b", "c"), ("a", "c")])
        m = ViewMaintainer.from_source(
            self.SRC, db, semantics="duplicate"
        ).initialize()
        m.apply(Changeset().delete("link", ("a", "b")))
        assert ("a", "c") in m.relation("direct_only")
        m.consistency_check()


class TestBagBasesUnderSetSemantics:
    def test_duplicate_base_rows_read_as_set(self):
        db = Database()
        db.insert("link", ("a", "b"), 3)  # bag base, set-mode maintainer
        db.insert("link", ("b", "c"), 1)
        m = ViewMaintainer.from_source(
            "hop(X, Y) :- link(X, Z), link(Z, Y).", db
        ).initialize()
        # §5.1: each base tuple counts 1 regardless of multiplicity.
        assert m.relation("hop").to_dict() == {("a", "c"): 1}
