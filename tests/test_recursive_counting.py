"""Tests for the recursive-counting extension ([GKM92], §8)."""

import pytest

from repro.core.recursive_counting import RecursiveCountingView
from repro.datalog.parser import parse_program
from repro.errors import DivergenceError, MaintenanceError
from repro.storage.changeset import Changeset
from repro.workloads import cycle, layered_dag

from conftest import TC_SRC, database_with

DIAMOND = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]


def _view(edges, max_rounds=10_000):
    return RecursiveCountingView(
        parse_program(TC_SRC), database_with(edges), max_rounds=max_rounds
    )


class TestInitialization:
    def test_diamond_path_counts(self):
        view = _view(DIAMOND).initialize()
        assert view.views["tc"].to_dict() == {
            ("a", "b"): 1, ("a", "c"): 1, ("b", "d"): 1, ("c", "d"): 1,
            ("a", "d"): 2,
        }

    def test_chain_counts_are_one(self):
        view = _view([(i, i + 1) for i in range(5)]).initialize()
        assert set(view.views["tc"].to_dict().values()) == {1}

    def test_divergence_guard_on_cycle(self):
        with pytest.raises(DivergenceError, match="converge"):
            _view(cycle(4), max_rounds=50).initialize()

    def test_negation_rejected(self):
        program = parse_program(
            "p(X) :- q(X), not r(X). p(X) :- p(X)."
        )
        with pytest.raises(MaintenanceError, match="positive"):
            RecursiveCountingView(program, database_with([]))

    def test_aggregation_rejected(self):
        program = parse_program(
            "p(X, M) :- GROUPBY(q(X, C), [X], M = SUM(C))."
        )
        with pytest.raises(MaintenanceError, match="aggregation"):
            RecursiveCountingView(program, database_with([]))


class TestMaintenance:
    def test_delete_updates_counts(self):
        view = _view(DIAMOND).initialize()
        view.apply(Changeset().delete("link", ("a", "b")))
        assert view.views["tc"].count(("a", "d")) == 1
        assert ("a", "b") not in view.views["tc"]

    def test_insert_updates_counts(self):
        view = _view(DIAMOND).initialize()
        view.apply(Changeset().insert("link", ("a", "d")))
        assert view.views["tc"].count(("a", "d")) == 3

    def test_delete_then_reinsert_restores(self):
        view = _view(DIAMOND).initialize()
        before = view.views["tc"].to_dict()
        view.apply(Changeset().delete("link", ("a", "b")))
        view.apply(Changeset().insert("link", ("a", "b")))
        assert view.views["tc"].to_dict() == before

    def test_matches_fresh_fixpoint_on_dag(self):
        edges = layered_dag(5, 6, 2, seed=1)
        view = _view(edges).initialize()
        changes = (
            Changeset()
            .delete("link", edges[0])
            .delete("link", edges[3])
            .insert("link", ((0, 0), (4, 5)))
        )
        view.apply(changes)
        fresh_db = database_with(edges)
        fresh_db.apply_changeset(
            Changeset()
            .delete("link", edges[0])
            .delete("link", edges[3])
            .insert("link", ((0, 0), (4, 5)))
        )
        fresh = RecursiveCountingView(
            parse_program(TC_SRC), fresh_db
        ).initialize()
        assert view.views["tc"].to_dict() == fresh.views["tc"].to_dict()

    def test_apply_before_initialize_rejected(self):
        view = _view(DIAMOND)
        with pytest.raises(MaintenanceError, match="initialize"):
            view.apply(Changeset().delete("link", ("a", "b")))

    def test_changing_derived_relation_rejected(self):
        view = _view(DIAMOND).initialize()
        with pytest.raises(MaintenanceError, match="derived"):
            view.apply(Changeset().insert("tc", ("x", "y")))

    def test_maintenance_divergence_guard(self):
        # Insert an edge that closes a cycle: counts blow up → guard.
        view = _view([(0, 1), (1, 2)], max_rounds=60).initialize()
        with pytest.raises(DivergenceError):
            view.apply(Changeset().insert("link", (2, 0)))

    def test_relation_accessor_falls_back_to_base(self):
        view = _view(DIAMOND).initialize()
        assert view.relation("link").count(("a", "b")) == 1
        assert view.relation("tc").count(("a", "d")) == 2


class TestFinitenessDetection:
    """§8: 'techniques to detect finiteness [MS93a] are being explored'."""

    def test_dag_is_finite(self):
        from repro.core.recursive_counting import has_finite_counts

        assert has_finite_counts(
            parse_program(TC_SRC), database_with(DIAMOND)
        )

    def test_cycle_is_infinite(self):
        from repro.core.recursive_counting import has_finite_counts

        assert not has_finite_counts(
            parse_program(TC_SRC), database_with(cycle(3))
        )

    def test_cycle_unreachable_from_recursion_is_still_infinite(self):
        from repro.core.recursive_counting import has_finite_counts

        # A disconnected 2-cycle plus a chain: the cycle atoms support
        # themselves regardless of the chain.
        edges = [("p", "q"), ("q", "p"), (1, 2), (2, 3)]
        assert not has_finite_counts(
            parse_program(TC_SRC), database_with(edges)
        )

    def test_method_matches_divergence_behaviour(self):
        view_ok = _view(layered_dag(4, 4, 2, seed=9))
        assert view_ok.counts_are_finite()
        view_ok.initialize()  # must converge

        view_bad = _view(cycle(5), max_rounds=40)
        assert not view_bad.counts_are_finite()
        with pytest.raises(DivergenceError):
            view_bad.initialize()

    def test_nonrecursive_program_always_finite(self):
        from repro.core.recursive_counting import has_finite_counts
        from repro.datalog.parser import parse_program as pp

        assert has_finite_counts(
            pp("hop(X,Y) :- link(X,Z), link(Z,Y)."),
            database_with(cycle(4)),
        )


class TestAnonymousVariables:
    def test_each_underscore_is_fresh(self):
        from repro.datalog.parser import parse_rule

        rule = parse_rule("p(X) :- q(X, _), r(_, _).")
        names = [
            arg.name
            for literal in rule.body
            for arg in literal.args
            if hasattr(arg, "name")
        ]
        assert len(set(names)) == len(names)  # no accidental equality

    def test_underscore_projection(self):
        from repro.datalog.parser import parse_program as pp
        from repro.eval import materialize

        db = database_with([("a", "b"), ("a", "c"), ("d", "a")])
        views = materialize(pp("source(X) :- link(X, _)."), db)
        assert views["source"].as_set() == {("a",), ("d",)}

    def test_underscores_in_same_literal_independent(self):
        from repro.datalog.parser import parse_program as pp
        from repro.eval import materialize

        db = database_with([("a", "b")])  # no self-loop
        views = materialize(pp("any_edge(yes) :- link(_, _)."), db)
        assert views["any_edge"].as_set() == {("yes",)}
