"""Tests for DRed (Section 7): delete, rederive, insert — per stratum."""

import random

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.errors import MaintenanceError
from repro.eval.stratified import materialize
from repro.datalog.parser import parse_program
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.workloads import chain, grid, mixed_batch, random_graph, with_costs

from conftest import HOP_SRC, TC_SRC, database_with


def _dred(source, edges, relation="link"):
    return ViewMaintainer.from_source(
        source, database_with(edges, relation), strategy="dred"
    ).initialize()


class TestExample11:
    def test_delete_then_rederive(self, example_1_1_db):
        """Example 1.1: DRed deletes hop(a,c) and hop(a,e), rederives (a,c)."""
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db, strategy="dred"
        ).initialize()
        report = maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert maintainer.relation("hop").as_set() == {("a", "c")}
        stats = report.dred.stats
        assert stats.overestimated == 2   # both hop tuples depend on (a,b)
        assert stats.rederived == 1       # (a,c) has the alternative via d
        assert stats.deleted == 1


class TestTransitiveClosure:
    def test_single_edge_deletion(self):
        maintainer = _dred(TC_SRC, chain(5))
        maintainer.apply(Changeset().delete("link", (2, 3)))
        tc = maintainer.relation("tc").as_set()
        assert (0, 2) in tc
        assert (0, 3) not in tc
        assert (3, 5) in tc

    def test_single_edge_insertion(self):
        maintainer = _dred(TC_SRC, [(0, 1), (2, 3)])
        maintainer.apply(Changeset().insert("link", (1, 2)))
        assert (0, 3) in maintainer.relation("tc")

    def test_insert_creating_cycle(self):
        maintainer = _dred(TC_SRC, chain(3))
        maintainer.apply(Changeset().insert("link", (3, 0)))
        assert (2, 1) in maintainer.relation("tc")
        maintainer.consistency_check()

    def test_delete_breaking_cycle(self):
        maintainer = _dred(TC_SRC, [(0, 1), (1, 2), (2, 0)])
        maintainer.apply(Changeset().delete("link", (2, 0)))
        assert maintainer.relation("tc").as_set() == {
            (0, 1), (0, 2), (1, 2),
        }

    def test_alternative_path_survives(self):
        edges = [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")]
        maintainer = _dred(TC_SRC, edges)
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert ("a", "d") in maintainer.relation("tc")

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_differential(self, seed):
        edges = random_graph(14, 26, seed=seed)
        maintainer = _dred(TC_SRC, edges)
        changes, _ = mixed_batch(
            "link", edges, 3, 3, node_count=14, seed=seed + 100
        )
        maintainer.apply(changes.copy())
        db = database_with(edges)
        db.apply_changeset(changes)
        oracle = materialize(parse_program(TC_SRC), db)
        assert maintainer.relation("tc").as_set() == oracle["tc"].as_set()

    def test_grid_many_alternative_derivations(self):
        maintainer = _dred(TC_SRC, grid(5, 5))
        maintainer.apply(Changeset().delete("link", ((0, 0), (1, 0))))
        maintainer.consistency_check()

    def test_sequential_batches(self):
        edges = random_graph(16, 32, seed=3)
        maintainer = _dred(TC_SRC, edges)
        current = edges
        for round_seed in range(4):
            changes, current = mixed_batch(
                "link", current, 2, 2, node_count=16, seed=round_seed
            )
            maintainer.apply(changes)
        maintainer.consistency_check()


class TestSetCanonicalization:
    def test_inserting_existing_row_is_noop(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            TC_SRC, example_1_1_db, strategy="dred"
        ).initialize()
        before = maintainer.relation("tc").to_dict()
        report = maintainer.apply(Changeset().insert("link", ("a", "b")))
        assert maintainer.relation("tc").to_dict() == before
        assert report.total_changes() == 0

    def test_deleting_missing_row_rejected(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            TC_SRC, example_1_1_db, strategy="dred"
        ).initialize()
        with pytest.raises(MaintenanceError):
            maintainer.apply(Changeset().delete("link", ("zz", "qq")))

    def test_view_counts_are_all_one(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db, strategy="dred"
        ).initialize()
        assert set(maintainer.relation("hop").to_dict().values()) == {1}


class TestNegationThroughStrata:
    SRC = TC_SRC + """
    node(X) :- link(X, Y).
    node(Y) :- link(X, Y).
    unreachable(X, Y) :- node(X), node(Y), not tc(X, Y).
    """

    def test_deletion_grows_complement(self):
        maintainer = _dred(self.SRC, chain(3))
        assert (3, 0) in maintainer.relation("unreachable")
        maintainer.apply(Changeset().delete("link", (1, 2)))
        assert (0, 3) in maintainer.relation("unreachable")
        maintainer.consistency_check()

    def test_insertion_shrinks_complement(self):
        maintainer = _dred(self.SRC, [(0, 1), (2, 3)])
        assert (0, 3) in maintainer.relation("unreachable")
        maintainer.apply(Changeset().insert("link", (1, 2)))
        assert (0, 3) not in maintainer.relation("unreachable")
        maintainer.consistency_check()

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized(self, seed):
        edges = random_graph(10, 18, seed=seed)
        maintainer = _dred(self.SRC, edges)
        changes, _ = mixed_batch(
            "link", edges, 2, 2, node_count=10, seed=seed + 40
        )
        maintainer.apply(changes)
        maintainer.consistency_check()


class TestAggregationOverRecursion:
    SRC = """
    path(X, Y, C) :- link(X, Y, C).
    path(X, Y, C1 + C2) :- path(X, Z, C1), link(Z, Y, C2), C1 + C2 < 30.
    min_path(X, Y, M) :- GROUPBY(path(X, Y, C), [X, Y], M = MIN(C)).
    """

    def test_deletion_raises_minimum(self):
        edges = [("a", "b", 1), ("b", "c", 1), ("a", "c", 9)]
        maintainer = _dred(self.SRC, edges)
        assert ("a", "c", 2) in maintainer.relation("min_path")
        maintainer.apply(Changeset().delete("link", ("a", "b", 1)))
        assert maintainer.relation("min_path").count(("a", "c", 9)) == 1
        maintainer.consistency_check()

    def test_insertion_lowers_minimum(self):
        edges = [("a", "c", 9)]
        maintainer = _dred(self.SRC, edges)
        maintainer.apply(
            Changeset().insert("link", ("a", "b", 1)).insert(
                "link", ("b", "c", 1))
        )
        assert ("a", "c", 2) in maintainer.relation("min_path")
        maintainer.consistency_check()

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized(self, seed):
        rng = random.Random(seed)
        edges = with_costs(random_graph(8, 14, seed=seed), 1, 9, seed=seed)
        maintainer = _dred(self.SRC, edges)
        changes = Changeset()
        for victim in rng.sample(edges, 2):
            changes.delete("link", victim)
        changes.insert("link", (0, 1, rng.randint(1, 9)))
        maintainer.apply(changes)
        maintainer.consistency_check()


class TestStats:
    def test_overestimate_at_least_net_deletions(self):
        edges = random_graph(15, 30, seed=5)
        maintainer = _dred(TC_SRC, edges)
        changes, _ = mixed_batch("link", edges, 4, 0, node_count=15, seed=6)
        report = maintainer.apply(changes)
        stats = report.dred.stats
        assert stats.overestimated >= stats.deleted
        assert stats.overestimated == stats.deleted + stats.rederived

    def test_insert_only_no_overestimate(self):
        maintainer = _dred(TC_SRC, chain(4))
        report = maintainer.apply(Changeset().insert("link", (4, 5)))
        assert report.dred.stats.overestimated == 0
        assert report.dred.stats.inserted > 0

    def test_report_delta_signed(self):
        maintainer = _dred(TC_SRC, chain(3))
        report = maintainer.apply(
            Changeset().delete("link", (2, 3)).insert("link", (3, 4))
        )
        delta = report.delta("tc").to_dict()
        assert delta[(2, 3)] == -1
        assert delta[(3, 4)] == 1
