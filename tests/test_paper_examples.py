"""Golden tests: every worked example of the paper, verbatim (X1–X6).

The extended abstract has no numbered tables or figures; these examples
carry its exact relation contents and counts, so they are the
reproduction's ground truth (DESIGN.md §4.1).
"""

import pytest

from repro.core import names
from repro.core.delta_rules import factored_delta_rules
from repro.core.maintenance import ViewMaintainer
from repro.datalog.parser import parse_rule
from repro.storage.changeset import Changeset

from conftest import (
    EXAMPLE_1_1_LINKS,
    EXAMPLE_4_2_LINKS,
    EXAMPLE_6_1_LINKS,
    HOP_SRC,
    HOP_TRI_SRC,
    ONLY_TRI_SRC,
    database_with,
)


class TestX1Example11:
    """Example 1.1: hop view, counts, and the deletion of link(a, b)."""

    def test_initial_extent_and_counts(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        # "hop evaluates to {(a,c), (a,e)}; hop(a,e) has a unique
        #  derivation, hop(a,c) has two."
        assert maintainer.relation("hop").to_dict() == {
            ("a", "c"): 2, ("a", "e"): 1,
        }

    def test_counting_deletes_only_ae(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        # "only deletes hop(a,e), which has no remaining derivation."
        assert maintainer.relation("hop").to_dict() == {("a", "c"): 1}

    def test_dred_deletes_both_then_rederives_ac(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db, strategy="dred"
        ).initialize()
        report = maintainer.apply(Changeset().delete("link", ("a", "b")))
        # "DRed first deletes hop(a,c) and hop(a,e) … hop(a,c) is
        #  rederived and reinserted in the second step."
        assert report.dred.stats.overestimated == 2
        assert report.dred.stats.rederived == 1
        assert maintainer.relation("hop").as_set() == {("a", "c")}


class TestX2Example41:
    """Example 4.1: the delta rules (d1), (d2) for the hop view."""

    def test_delta_rules_d1_d2(self):
        rule = parse_rule("hop(X, Y) :- link(X, Z), link(Z, Y).")
        d1, d2 = factored_delta_rules(rule)
        # (d1): Δ(hop)(X,Y) :- Δ(link)(X,Z) & link(Z,Y)
        assert d1.rule.head.predicate == names.delta("hop")
        assert [s.predicate for s in d1.rule.body] == [
            names.delta("link"), "link",
        ]
        # (d2): Δ(hop)(X,Y) :- linkⁿ(X,Z) & Δ(link)(Z,Y)
        assert [s.predicate for s in d2.rule.body] == [
            names.new("link"), names.delta("link"),
        ]


class TestX3Example42:
    """Example 4.2: the full duplicate-semantics maintenance trace."""

    CHANGES = (
        Changeset()
        .delete("link", ("a", "b"))
        .insert("link", ("d", "f"))
        .insert("link", ("a", "f"))
    )

    @pytest.fixture
    def maintainer(self, example_4_2_db):
        return ViewMaintainer.from_source(
            HOP_TRI_SRC, example_4_2_db, semantics="duplicate"
        ).initialize()

    def test_initial_state(self, maintainer):
        # "hop = {ac 2, dh, bh}.  tri_hop = {ah 2}."
        assert maintainer.relation("hop").to_dict() == {
            ("a", "c"): 2, ("d", "h"): 1, ("b", "h"): 1,
        }
        assert maintainer.relation("tri_hop").to_dict() == {("a", "h"): 2}

    def test_full_trace(self, maintainer):
        report = maintainer.apply(self.CHANGES.copy())
        # "Apply δ1(v1): Δ(hop) = {ac −1, ag, dg}; apply δ2(v1):
        #  Δ(hop) = {af}.  Combining: hopⁿ = {ac, af, ag, dg, dh, bh}."
        assert report.delta("hop").to_dict() == {
            ("a", "c"): -1, ("a", "g"): 1, ("d", "g"): 1, ("a", "f"): 1,
        }
        assert maintainer.relation("hop").to_dict() == {
            ("a", "c"): 1, ("a", "f"): 1, ("a", "g"): 1,
            ("d", "g"): 1, ("d", "h"): 1, ("b", "h"): 1,
        }
        # "Apply δ1(v2): Δ(tri_hop) = {ah −1, ag}; apply δ2(v2): {} .
        #  Combining: tri_hopⁿ = {ah, ag}."
        assert report.delta("tri_hop").to_dict() == {
            ("a", "h"): -1, ("a", "g"): 1,
        }
        assert maintainer.relation("tri_hop").to_dict() == {
            ("a", "h"): 1, ("a", "g"): 1,
        }


class TestX4Example51:
    """Example 5.1: the set-semantics optimization (statement (2))."""

    def test_count_only_changes_not_cascaded(self, example_4_2_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_4_2_db, semantics="set"
        ).initialize()
        report = maintainer.apply(TestX3Example42.CHANGES.copy())
        # "Δ(hop) = set(hopⁿ) − set(hop) = {af, ag, dg}.  The tuple
        #  hop(ac −1) does not appear and is not cascaded to tri_hop.
        #  Consequently (ah −1) will not be derived for Δ(tri_hop)."
        assert report.counting.cascaded["hop"].to_dict() == {
            ("a", "f"): 1, ("a", "g"): 1, ("d", "g"): 1,
        }
        tri_delta = report.delta("tri_hop").to_dict()
        assert ("a", "h") not in tri_delta
        assert tri_delta == {("a", "g"): 1}


class TestX5Example61:
    """Example 6.1: negation — only_tri_hop on the 11-edge graph."""

    def test_initial_relations(self, example_6_1_db):
        maintainer = ViewMaintainer.from_source(
            ONLY_TRI_SRC, example_6_1_db, semantics="duplicate"
        ).initialize()
        # "hop = {ac, ad 2, ah, bd, bk, gk}; tri_hop = {ad, ak 2};
        #  only_tri_hop = {ak 2}."
        assert maintainer.relation("hop").to_dict() == {
            ("a", "c"): 1, ("a", "d"): 2, ("a", "h"): 1,
            ("b", "d"): 1, ("b", "k"): 1, ("g", "k"): 1,
        }
        assert maintainer.relation("tri_hop").to_dict() == {
            ("a", "d"): 1, ("a", "k"): 2,
        }
        assert maintainer.relation("only_tri_hop").to_dict() == {
            ("a", "k"): 2,
        }

    def test_ad_excluded_for_any_positive_count(self, example_6_1_db):
        """'hop(a,d) is true as long as count(hop(a,d)) > 0.'"""
        maintainer = ViewMaintainer.from_source(
            ONLY_TRI_SRC, example_6_1_db, semantics="duplicate"
        ).initialize()
        # Remove one of hop(a,d)'s two derivations: count 2 → 1, still
        # positive, so only_tri_hop must not gain (a, d).
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert ("a", "d") not in maintainer.relation("only_tri_hop")
        maintainer.consistency_check()


class TestX6Example62:
    """Example 6.2: GROUPBY / MIN over cost-carrying links."""

    SRC = """
    hop(S, D, C1 + C2) :- link(S, I, C1), link(I, D, C2).
    min_cost_hop(S, D, M) :- GROUPBY(hop(S, D, C), [S, D], M = MIN(C)).
    """
    LINKS = [
        ("a", "b", 1), ("b", "c", 2), ("b", "e", 5),
        ("a", "d", 2), ("d", "c", 1),
    ]

    def test_min_cost_hop_contents(self):
        maintainer = ViewMaintainer.from_source(
            self.SRC, database_with(self.LINKS)
        ).initialize()
        assert maintainer.relation("min_cost_hop").as_set() == {
            ("a", "c", 3), ("a", "e", 6),
        }

    def test_insert_changes_group_only_if_cheaper(self):
        """'Inserting hop(a,b,10) can only change the a→b tuple; the
        change actually occurs if the previous minimum exceeded 10.'"""
        maintainer = ViewMaintainer.from_source(
            self.SRC, database_with(self.LINKS)
        ).initialize()
        report = maintainer.apply(
            Changeset().insert("link", ("a", "x", 4)).insert(
                "link", ("x", "c", 4))
        )
        # New a→c path costs 8 > 3: the minimum is unchanged.
        delta = report.delta("min_cost_hop").to_dict()
        assert ("a", "c", 3) not in delta
        assert maintainer.relation("min_cost_hop").count(("a", "c", 3)) == 1
        maintainer.consistency_check()

    def test_incremental_min_update(self):
        maintainer = ViewMaintainer.from_source(
            self.SRC, database_with(self.LINKS)
        ).initialize()
        maintainer.apply(
            Changeset().insert("link", ("a", "y", 1)).insert(
                "link", ("y", "c", 1))
        )
        assert maintainer.relation("min_cost_hop").as_set() == {
            ("a", "c", 2), ("a", "e", 6),
        }
        maintainer.consistency_check()
