"""Tests for the aggregate-function state machines ([DAJ91] taxonomy)."""

import math

import pytest

from repro.errors import EvaluationError
from repro.eval.aggregates import AGGREGATE_REGISTRY, get_aggregate_function


def _fold(function, pairs):
    state = function.initial()
    for value, count in pairs:
        state = function.insert(state, value, count)
    return state


class TestSum:
    function = AGGREGATE_REGISTRY["SUM"]

    def test_insert_delete_roundtrip(self):
        state = _fold(self.function, [(5, 1), (7, 2)])
        assert self.function.result(state) == 19
        state = self.function.delete(state, 7, 1)
        assert self.function.result(state) == 12

    def test_empty_detection(self):
        state = _fold(self.function, [(5, 1)])
        state = self.function.delete(state, 5, 1)
        assert self.function.is_empty(state)

    def test_zero_sum_nonempty_group(self):
        """A group summing to 0 still exists (multiplicity ≠ value)."""
        state = _fold(self.function, [(0, 3)])
        assert not self.function.is_empty(state)
        assert self.function.result(state) == 0


class TestCount:
    function = AGGREGATE_REGISTRY["COUNT"]

    def test_counts_multiplicities(self):
        state = _fold(self.function, [("x", 2), ("y", 1)])
        assert self.function.result(state) == 3

    def test_delete(self):
        state = _fold(self.function, [("x", 2)])
        state = self.function.delete(state, "x", 1)
        assert self.function.result(state) == 1


class TestMinMax:
    def test_min_insert_tracks_extremum(self):
        function = AGGREGATE_REGISTRY["MIN"]
        state = _fold(function, [(5, 1), (3, 1), (9, 1)])
        assert function.result(state) == 3

    def test_min_delete_nonextremum_incremental(self):
        function = AGGREGATE_REGISTRY["MIN"]
        state = _fold(function, [(5, 1), (3, 1)])
        new_state = function.delete(state, 5, 1)
        assert new_state is not None
        assert function.result(new_state) == 3

    def test_min_delete_extremum_signals_recompute(self):
        """Deleting the current MIN is not incrementally computable."""
        function = AGGREGATE_REGISTRY["MIN"]
        state = _fold(function, [(5, 1), (3, 1)])
        assert function.delete(state, 3, 1) is None

    def test_min_delete_last_row_empties(self):
        function = AGGREGATE_REGISTRY["MIN"]
        state = _fold(function, [(3, 1)])
        new_state = function.delete(state, 3, 1)
        assert function.is_empty(new_state)

    def test_max_mirror(self):
        function = AGGREGATE_REGISTRY["MAX"]
        state = _fold(function, [(5, 1), (9, 1)])
        assert function.result(state) == 9
        assert function.delete(state, 9, 1) is None
        kept = function.delete(state, 5, 1)
        assert function.result(kept) == 9

    def test_min_works_on_strings(self):
        function = AGGREGATE_REGISTRY["MIN"]
        state = _fold(function, [("pear", 1), ("apple", 1)])
        assert function.result(state) == "apple"


class TestAvg:
    function = AGGREGATE_REGISTRY["AVG"]

    def test_average(self):
        state = _fold(self.function, [(10, 1), (20, 1)])
        assert self.function.result(state) == 15

    def test_delete_incremental(self):
        state = _fold(self.function, [(10, 1), (20, 1)])
        state = self.function.delete(state, 20, 1)
        assert self.function.result(state) == 10

    def test_multiplicity_weighting(self):
        state = _fold(self.function, [(10, 3), (50, 1)])
        assert self.function.result(state) == 20


class TestVarStdDev:
    def test_variance(self):
        function = AGGREGATE_REGISTRY["VAR"]
        state = _fold(function, [(2, 1), (4, 1), (4, 1), (4, 1), (5, 1),
                                 (5, 1), (7, 1), (9, 1)])
        assert function.result(state) == pytest.approx(4.0)

    def test_stddev(self):
        function = AGGREGATE_REGISTRY["STDDEV"]
        state = _fold(function, [(2, 1), (4, 1), (4, 1), (4, 1), (5, 1),
                                 (5, 1), (7, 1), (9, 1)])
        assert function.result(state) == pytest.approx(2.0)

    def test_variance_never_negative(self):
        function = AGGREGATE_REGISTRY["VAR"]
        state = _fold(function, [(0.1, 1), (0.1, 1), (0.1, 1)])
        assert function.result(state) >= 0.0

    def test_delete_matches_recompute(self):
        function = AGGREGATE_REGISTRY["VAR"]
        state = _fold(function, [(1, 1), (2, 1), (3, 1)])
        state = function.delete(state, 2, 1)
        expected = _fold(function, [(1, 1), (3, 1)])
        assert function.result(state) == pytest.approx(
            function.result(expected)
        )


class TestRegistry:
    def test_all_functions_registered(self):
        assert set(AGGREGATE_REGISTRY) == {
            "SUM", "COUNT", "MIN", "MAX", "AVG", "VAR", "STDDEV",
        }

    def test_unknown_function_raises(self):
        with pytest.raises(EvaluationError):
            get_aggregate_function("MEDIAN")

    def test_compute_from_values(self):
        function = AGGREGATE_REGISTRY["SUM"]
        state = function.compute([(1, 2), (5, 1)])
        assert function.result(state) == 7
