"""Tests for stratified materialization, semi-naive, and the naive oracle."""

import pytest

from repro.datalog.parser import parse_program
from repro.errors import MaintenanceError
from repro.eval.naive import naive_materialize
from repro.eval.rule_eval import Resolver
from repro.eval.seminaive import seminaive
from repro.eval.stratified import materialize, materialize_into
from repro.storage.database import Database
from repro.storage.relation import CountedRelation
from repro.workloads import grid, random_graph

from conftest import (
    EXAMPLE_1_1_LINKS,
    EXAMPLE_4_2_LINKS,
    HOP_TRI_SRC,
    ONLY_TRI_SRC,
    TC_SRC,
    database_with,
)


class TestStratifiedSetSemantics:
    def test_per_stratum_duplicate_counts(self, example_1_1_db):
        """Section 5.1: stored counts = derivations with lower strata at 1."""
        views = materialize(parse_program(HOP_TRI_SRC), example_1_1_db)
        assert views["hop"].to_dict() == {("a", "c"): 2, ("a", "e"): 1}

    def test_lower_stratum_read_as_set(self, example_4_2_db):
        views = materialize(parse_program(HOP_TRI_SRC), example_4_2_db)
        # hop(a,c) has count 2, but tri_hop counts it once per §5.1.
        assert views["hop"].count(("a", "c")) == 2
        assert views["tri_hop"].count(("a", "h")) == 1

    def test_negation(self, example_6_1_db):
        views = materialize(parse_program(ONLY_TRI_SRC), example_6_1_db)
        assert views["only_tri_hop"].as_set() == {("a", "k")}

    def test_input_database_untouched(self, example_1_1_db):
        before = example_1_1_db.copy()
        materialize(parse_program(HOP_TRI_SRC), example_1_1_db)
        assert example_1_1_db == before

    def test_empty_views_present(self):
        views = materialize(parse_program("p(X) :- q(X)."), Database())
        assert views["p"].to_dict() == {}


class TestStratifiedDuplicateSemantics:
    def test_counts_cascade(self, example_4_2_db):
        views = materialize(
            parse_program(HOP_TRI_SRC), example_4_2_db, "duplicate"
        )
        assert views["tri_hop"].to_dict() == {("a", "h"): 2}

    def test_base_multiplicities_honoured(self):
        db = Database()
        db.insert("link", ("a", "b"), 2)
        db.insert("link", ("b", "c"), 3)
        views = materialize(
            parse_program("hop(X,Y) :- link(X,Z), link(Z,Y)."), db, "duplicate"
        )
        assert views["hop"].count(("a", "c")) == 6

    def test_recursion_rejected(self, example_1_1_db):
        with pytest.raises(MaintenanceError, match="infinite"):
            materialize(parse_program(TC_SRC), example_1_1_db, "duplicate")


class TestRecursion:
    def test_transitive_closure(self, example_1_1_db):
        views = materialize(parse_program(TC_SRC), example_1_1_db)
        assert ("a", "c") in views["tc"]
        assert views["tc"].as_set() == naive_materialize(
            parse_program(TC_SRC), example_1_1_db
        )["tc"].as_set()

    def test_cyclic_graph_terminates(self):
        db = database_with([("a", "b"), ("b", "a")])
        views = materialize(parse_program(TC_SRC), db)
        assert views["tc"].as_set() == {
            ("a", "a"), ("a", "b"), ("b", "a"), ("b", "b"),
        }

    def test_matches_naive_on_random_graphs(self):
        program = parse_program(TC_SRC)
        for seed in range(4):
            db = database_with(random_graph(20, 40, seed=seed))
            fast = materialize(program, db)
            slow = naive_materialize(program, db)
            assert fast["tc"].as_set() == slow["tc"].as_set()

    def test_mutual_recursion(self):
        source = """
        reach_even(X) :- start(X).
        reach_odd(Y) :- reach_even(X), edge(X, Y).
        reach_even(Y) :- reach_odd(X), edge(X, Y).
        """
        db = Database()
        db.insert("start", (0,))
        db.insert_rows("edge", [(0, 1), (1, 2), (2, 3)])
        views = materialize(parse_program(source), db)
        assert views["reach_even"].as_set() == {(0,), (2,)}
        assert views["reach_odd"].as_set() == {(1,), (3,)}

    def test_recursion_with_negation_of_lower_stratum(self):
        source = """
        blocked(X, Y) :- barrier(X, Y).
        tc(X, Y) :- link(X, Y), not blocked(X, Y).
        tc(X, Y) :- tc(X, Z), link(Z, Y), not blocked(Z, Y).
        """
        db = database_with([("a", "b"), ("b", "c"), ("c", "d")])
        db.insert("barrier", ("b", "c"))
        views = materialize(parse_program(source), db)
        assert views["tc"].as_set() == {("a", "b"), ("c", "d")}


class TestSemiNaive:
    def test_prepopulated_targets_only_grow(self):
        program = parse_program(TC_SRC)
        db = database_with([("a", "b"), ("b", "c")])
        tc = CountedRelation("tc")
        tc.add(("z", "z"), 1)  # pre-existing row must survive
        added = seminaive(list(program.rules), {"tc": tc}, Resolver(db))
        assert ("z", "z") in tc
        assert ("a", "c") in tc
        assert ("z", "z") not in added["tc"]

    def test_added_reports_new_rows_only(self):
        program = parse_program(TC_SRC)
        db = database_with([("a", "b")])
        tc = CountedRelation("tc")
        tc.add(("a", "b"), 1)
        added = seminaive(list(program.rules), {"tc": tc}, Resolver(db))
        assert added["tc"].to_dict() == {}

    def test_fire_round0_gates_full_rules(self):
        program = parse_program(TC_SRC)
        db = database_with([("a", "b"), ("b", "c")])
        tc = CountedRelation("tc")
        added = seminaive(
            list(program.rules),
            {"tc": tc},
            Resolver(db),
            fire_round0=[False, False],
        )
        assert len(tc) == 0  # nothing seeds, nothing fires

    def test_max_rounds_bound(self):
        program = parse_program(TC_SRC)
        db = database_with([(i, i + 1) for i in range(50)])
        tc = CountedRelation("tc")
        seminaive(list(program.rules), {"tc": tc}, Resolver(db), max_rounds=2)
        full = materialize(program, db)["tc"]
        assert len(tc) < len(full)

    def test_grid_matches_naive(self):
        program = parse_program(TC_SRC)
        db = database_with(grid(4, 4))
        tc = CountedRelation("tc")
        seminaive(list(program.rules), {"tc": tc}, Resolver(db))
        assert tc.as_set() == naive_materialize(program, db)["tc"].as_set()


class TestMaterializeInto:
    def test_views_stored_in_database(self, example_1_1_db):
        materialize_into(parse_program(HOP_TRI_SRC), example_1_1_db)
        assert example_1_1_db.relation("hop").count(("a", "c")) == 2

    def test_repeated_call_replaces(self, example_1_1_db):
        materialize_into(parse_program(HOP_TRI_SRC), example_1_1_db)
        example_1_1_db.relation("link").discard(("a", "b"))
        materialize_into(parse_program(HOP_TRI_SRC), example_1_1_db)
        assert example_1_1_db.relation("hop").to_dict() == {("a", "c"): 1}
