"""MVCC tests: commit epochs, pinned snapshots, GC, atomic publication.

The contract under test (docs/operations.md, "Consistent reads &
snapshots"): every maintenance pass publishes its changes as one commit
epoch — all base relations and views flip together — and a reader
pinned to an epoch sees exactly that epoch's state, forever, or gets a
typed :class:`~repro.errors.SnapshotTooOldError` once retention
reclaims it.  Crash unwind discards the uncommitted epoch; nothing a
failed pass touched is ever visible to any reader.
"""

import threading

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.errors import (
    BudgetExceeded,
    MaintenanceError,
    SnapshotTooOldError,
    StaleViewError,
)
from repro.guard import GuardPolicy, MaintenanceBudget
from repro.resilience.faults import InjectedFault
from repro.resilience.repair import repair_divergence
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.storage.journal import Journal, recover
from repro.storage.mvcc import SnapshotRead, VersionManager, autocommit
from repro.storage.mvcc_smoke import TC_SRC as SOAK_TC_SRC
from repro.storage.mvcc_smoke import run_soak

from conftest import EXAMPLE_1_1_LINKS, HOP_TRI_SRC, TC_SRC, database_with


def _maintainer(source=HOP_TRI_SRC, edges=EXAMPLE_1_1_LINKS, **kwargs):
    return ViewMaintainer.from_source(
        source, database_with(edges), **kwargs
    ).initialize()


class TestVersionManager:
    def test_database_defaults_to_mvcc(self):
        db = Database()
        assert db.mvcc is not None
        assert db.epoch == 0

    def test_direct_writes_autocommit_mini_epochs(self):
        db = Database()
        db.insert("link", ("a", "b"))
        assert db.epoch == 1
        db.delete("link", ("a", "b"))
        assert db.epoch == 2

    def test_snapshot_pins_and_releases(self):
        db = database_with(EXAMPLE_1_1_LINKS)
        snap = db.snapshot()
        assert snap.epoch == db.epoch
        assert db.mvcc.active_snapshots() == 1
        assert db.mvcc.oldest_pinned() == snap.epoch
        snap.close()
        assert db.mvcc.active_snapshots() == 0
        with pytest.raises(MaintenanceError):
            snap.relation("link")

    def test_snapshot_isolated_from_later_writes(self):
        db = database_with(EXAMPLE_1_1_LINKS)
        with db.snapshot() as snap:
            db.insert("link", ("z", "z"))
            assert ("z", "z") in db.relation("link")
            assert ("z", "z") not in snap.relation("link")
            assert snap.staleness() == 1

    def test_gc_reclaims_everything_once_unpinned(self):
        db = database_with(EXAMPLE_1_1_LINKS)
        with db.snapshot():
            for index in range(4):
                db.insert("link", ("n", index))
            assert db.mvcc.retained_entries() > 0
        # Releasing the only pin lets the floor advance to the current
        # epoch: every entry is reclaimable.
        assert db.mvcc.retained_entries() == 0

    def test_pin_future_epoch_rejected(self):
        db = database_with(EXAMPLE_1_1_LINKS)
        with pytest.raises(MaintenanceError, match="current epoch"):
            db.snapshot(epoch=db.epoch + 1)

    def test_retention_cap_fails_typed(self):
        db = Database(retain_versions=2)
        db.insert_rows("link", EXAMPLE_1_1_LINKS)
        pinned = db.epoch
        with db.snapshot() as snap:
            for index in range(6):
                db.insert("link", ("n", index))
            with pytest.raises(SnapshotTooOldError) as excinfo:
                snap.relation("link")
        assert excinfo.value.epoch == pinned
        assert excinfo.value.min_readable > pinned
        # And pinning the reclaimed epoch afresh fails the same way.
        with pytest.raises(SnapshotTooOldError):
            db.snapshot(epoch=pinned)

    def test_retain_versions_validated(self):
        with pytest.raises(ValueError):
            VersionManager(retain_versions=0)

    def test_single_writer_enforced(self):
        manager = VersionManager()
        manager.begin()
        with pytest.raises(MaintenanceError, match="single-writer"):
            manager.begin()
        manager.abort()

    def test_mvcc_off_database_has_no_snapshots(self):
        db = Database(mvcc=False)
        db.insert_rows("link", EXAMPLE_1_1_LINKS)
        assert db.mvcc is None
        assert db.epoch == 0
        with pytest.raises(MaintenanceError, match="mvcc"):
            db.snapshot()

    def test_copy_gets_a_fresh_history(self):
        db = database_with(EXAMPLE_1_1_LINKS)
        assert db.epoch > 0
        clone = db.copy()
        assert clone.epoch == 0
        assert clone.mvcc.retain_versions == db.mvcc.retain_versions
        before = db.epoch
        clone.insert("link", ("z", "z"))
        assert clone.epoch == 1
        assert db.epoch == before  # histories are independent

    def test_autocommit_noop_inside_open_epoch(self):
        manager = VersionManager()
        manager.begin()
        with autocommit(manager):
            pass
        assert manager.in_flight  # the outer epoch is still open
        manager.abort()


class TestMaintenancePublication:
    def test_pass_publishes_one_epoch(self):
        maintainer = _maintainer()
        db = maintainer.database
        before = db.epoch
        report = maintainer.apply(
            Changeset().insert("link", ("c", "a")).delete("link", ("a", "d"))
        )
        assert report.epoch == before + 1
        assert db.epoch == report.epoch

    def test_snapshot_sees_base_and_views_flip_together(self):
        maintainer = _maintainer()
        db = maintainer.database
        old_hop = maintainer.views["hop"].to_dict()
        old_link = db.relation("link").to_dict()
        with db.snapshot() as snap:
            maintainer.apply(Changeset().insert("link", ("c", "a")))
            # Live state moved on; the snapshot still reads the pinned
            # epoch for base and views alike — never a mix.
            assert maintainer.views["hop"].to_dict() != old_hop
            assert snap.relation("hop").to_dict() == old_hop
            assert snap.relation("link").to_dict() == old_link

    def test_crash_discards_the_uncommitted_epoch(self):
        maintainer = _maintainer()
        db = maintainer.database
        before_epoch = db.epoch
        before_hop = maintainer.views["hop"].to_dict()
        maintainer.faults.arm("count_merge")
        with pytest.raises(InjectedFault):
            maintainer.apply(Changeset().insert("link", ("c", "a")))
        assert db.epoch == before_epoch
        assert not db.mvcc.in_flight
        assert db.mvcc.aborts >= 1
        assert maintainer.views["hop"].to_dict() == before_hop
        # A retry after the crash publishes cleanly.
        report = maintainer.apply(Changeset().insert("link", ("c", "a")))
        assert report.epoch == before_epoch + 1

    def test_reader_pinned_across_a_crash_is_untouched(self):
        maintainer = _maintainer()
        db = maintainer.database
        with db.snapshot() as snap:
            expected = snap.relation("hop").to_dict()
            maintainer.faults.arm("count_merge")
            with pytest.raises(InjectedFault):
                maintainer.apply(Changeset().insert("link", ("c", "a")))
            assert snap.relation("hop").to_dict() == expected

    def test_budget_breach_fallback_publishes_atomically(self):
        guard = GuardPolicy(
            budget=MaintenanceBudget(max_delta_tuples=0),
            fallback="recompute",
        )
        maintainer = _maintainer(guard=guard)
        db = maintainer.database
        before = db.epoch
        report = maintainer.apply(Changeset().insert("link", ("c", "a")))
        assert maintainer.guard.breaches == 1
        assert report.epoch == before + 1
        assert db.epoch == report.epoch
        maintainer.consistency_check()

    def test_budget_breach_raise_discards_the_epoch(self):
        guard = GuardPolicy(
            budget=MaintenanceBudget(max_delta_tuples=0), fallback="raise"
        )
        maintainer = _maintainer(guard=guard)
        db = maintainer.database
        before = db.epoch
        with pytest.raises(BudgetExceeded):
            maintainer.apply(Changeset().insert("link", ("c", "a")))
        assert db.epoch == before
        assert not db.mvcc.in_flight

    def test_apply_many_is_one_epoch(self):
        maintainer = _maintainer()
        db = maintainer.database
        before = db.epoch
        report = maintainer.apply_many(
            [
                Changeset().insert("link", ("c", "a")),
                Changeset().insert("link", ("c", "f")),
                Changeset().delete("link", ("c", "f")),
            ]
        )
        assert report.epoch == before + 1
        assert db.epoch == before + 1

    def test_alter_publishes_then_severs(self):
        maintainer = _maintainer()
        db = maintainer.database
        with db.snapshot() as snap:
            report = maintainer.alter(
                add=["two_hop(X, Y) :- hop(X, Y), not link(X, Y)."]
            )
            assert report.epoch is not None
            # Rule changes replace view objects wholesale; old pins
            # cannot span that, so the read fails typed.
            with pytest.raises(SnapshotTooOldError):
                snap.relation("hop")
        maintainer.consistency_check()

    def test_refresh_severs_history(self):
        maintainer = _maintainer()
        db = maintainer.database
        with db.snapshot() as snap:
            maintainer.refresh()
            with pytest.raises(SnapshotTooOldError):
                snap.relation("hop")


class TestStrictReadModes:
    def _lagged(self, mode):
        guard = GuardPolicy(
            budget=MaintenanceBudget(max_delta_tuples=0),
            fallback="skip",
            strict_reads=mode,
        )
        maintainer = _maintainer(guard=guard)
        committed = maintainer.database.epoch
        report = maintainer.apply(Changeset().insert("link", ("c", "a")))
        assert report.strategy == "skipped"
        assert maintainer.lag()["changesets"] == 1
        return maintainer, committed

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="strict_reads"):
            GuardPolicy(strict_reads="eventually")

    def test_reject_mode_raises_on_lagging_read(self):
        maintainer, _ = self._lagged("reject")
        with pytest.raises(StaleViewError):
            maintainer.relation("hop")

    def test_serve_mode_returns_live_state(self):
        maintainer, _ = self._lagged("serve")
        assert maintainer.relation("hop") is maintainer.views["hop"]

    def test_snapshot_mode_serves_last_epoch_with_lag(self):
        maintainer, committed = self._lagged("snapshot")
        read = maintainer.relation("hop")
        assert isinstance(read, SnapshotRead)
        assert read.epoch == committed
        assert read.staleness["changesets"] == 1
        assert read.to_dict() == maintainer.views["hop"].to_dict()

    def test_snapshot_read_requires_mvcc(self):
        db = Database(mvcc=False)
        db.insert_rows("link", EXAMPLE_1_1_LINKS)
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, db
        ).initialize()
        with pytest.raises(MaintenanceError, match="mvcc=False"):
            maintainer.snapshot_read("hop")


class TestEpochSubscriptions:
    def test_three_argument_callbacks_receive_the_epoch(self):
        maintainer = _maintainer()
        seen = []
        maintainer.subscribe(
            "hop", lambda view, delta, epoch: seen.append(epoch)
        )
        report = maintainer.apply(Changeset().insert("link", ("c", "a")))
        assert seen == [report.epoch]

    def test_two_argument_callbacks_are_unaffected(self):
        maintainer = _maintainer()
        seen = []
        maintainer.subscribe(
            "hop", lambda view, delta: seen.append((view, len(delta)))
        )
        maintainer.apply(Changeset().insert("link", ("c", "a")))
        assert len(seen) == 1

    def test_dead_letters_carry_the_epoch(self):
        maintainer = _maintainer()
        maintainer._subscriptions.backoff_seconds = 0.0

        def explode(view, delta, epoch):
            raise RuntimeError("subscriber down")

        maintainer.subscribe("hop", explode)
        report = maintainer.apply(Changeset().insert("link", ("c", "a")))
        assert len(maintainer.dead_letters) == 1
        assert maintainer.dead_letters[0].epoch == report.epoch


class TestJournalEpochs:
    def test_entries_carry_the_published_epoch(self, tmp_path):
        journal = Journal(str(tmp_path / "journal.jsonl"))
        maintainer = _maintainer()
        maintainer.attach_journal(
            journal, snapshot_path=str(tmp_path / "snap.json")
        )
        first = maintainer.apply(Changeset().insert("link", ("c", "a")))
        second = maintainer.apply(Changeset().delete("link", ("c", "a")))
        entries = list(journal.replay_entries())
        assert [(seq, epoch) for seq, epoch, _ in entries] == [
            (1, first.epoch),
            (2, second.epoch),
        ]

    def test_old_journals_without_epochs_still_replay(self, tmp_path):
        journal = Journal(str(tmp_path / "journal.jsonl"))
        journal.append(Changeset().insert("link", ("c", "a")))
        seq, epoch, changes = next(iter(journal.replay_entries()))
        assert (seq, epoch) == (1, None)
        assert not changes.is_empty()

    def test_recover_restores_the_precrash_epoch(self, tmp_path):
        journal = Journal(str(tmp_path / "journal.jsonl"))
        maintainer = _maintainer()
        maintainer.attach_journal(
            journal, snapshot_path=str(tmp_path / "snap.json")
        )
        maintainer.apply(Changeset().insert("link", ("c", "a")))
        maintainer.apply(Changeset().insert("link", ("c", "f")))
        precrash = maintainer.database.epoch

        recovered = recover(
            lambda db: ViewMaintainer.from_source(HOP_TRI_SRC, db),
            str(tmp_path / "snap.json"),
            Journal(str(tmp_path / "journal.jsonl")),
        )
        assert recovered.database.epoch == precrash
        assert (
            recovered.views["hop"].to_dict()
            == maintainer.views["hop"].to_dict()
        )
        # Post-recovery commits continue the pre-crash numbering.
        report = recovered.apply(Changeset().delete("link", ("c", "f")))
        assert report.epoch == precrash + 1

    def test_shell_recover_continues_epoch_numbering(self, tmp_path):
        from repro import cli

        source = (
            "link(a, b).\nlink(b, c).\n"
            "hop(X, Y) :- link(X, Z), link(Z, Y).\n"
        )
        journal_path = str(tmp_path / "journal.jsonl")
        snap_path = str(tmp_path / "snap.json")
        shell = cli.Shell(
            source,
            journal=Journal(journal_path),
            snapshot_path=snap_path,
        )
        shell.execute("+ link(c, f)")
        shell.execute("commit")
        precrash = shell.database.epoch
        shell.maintainer._journal.close()

        recovered = cli.Shell.recovered(
            source, snap_path, Journal(journal_path)
        )
        assert recovered.database.epoch == precrash
        recovered.execute("+ link(f, g)")
        recovered.execute("commit")
        entries = list(
            Journal(journal_path).replay_entries()
        )
        assert entries[-1][1] == precrash + 1

    def test_recover_upto_epoch_is_point_in_time(self, tmp_path):
        journal = Journal(str(tmp_path / "journal.jsonl"))
        maintainer = _maintainer()
        maintainer.attach_journal(
            journal, snapshot_path=str(tmp_path / "snap.json")
        )
        first = maintainer.apply(Changeset().insert("link", ("c", "a")))
        intermediate = maintainer.views["hop"].to_dict()
        maintainer.apply(Changeset().insert("link", ("c", "f")))

        recovered = recover(
            lambda db: ViewMaintainer.from_source(HOP_TRI_SRC, db),
            str(tmp_path / "snap.json"),
            Journal(str(tmp_path / "journal.jsonl")),
            upto_epoch=first.epoch,
        )
        assert recovered.views["hop"].to_dict() == intermediate


class TestPinnedConsistencyAndHeal:
    def test_consistency_check_records_the_validated_epoch(self):
        maintainer = _maintainer()
        assert maintainer.last_validated_epoch is None
        maintainer.consistency_check()
        assert maintainer.last_validated_epoch == maintainer.database.epoch

    def test_repair_refuses_stale_evidence(self):
        maintainer = _maintainer()
        db = maintainer.database
        maintainer.views["hop"].add(("x", "x"))
        validated = db.epoch
        db.insert("link", ("q", "r"))  # a newer epoch lands mid-check
        with pytest.raises(MaintenanceError, match="refusing to repair"):
            repair_divergence(maintainer, validated_epoch=validated)
        # Re-running the check against the current epoch heals fine.
        maintainer.consistency_check(repair=True)
        maintainer.consistency_check()

    def test_repair_refuses_while_a_pass_is_in_flight(self):
        maintainer = _maintainer()
        db = maintainer.database
        maintainer.views["hop"].add(("x", "x"))
        validated = db.epoch
        db.mvcc.begin()
        try:
            with pytest.raises(MaintenanceError, match="in flight"):
                repair_divergence(maintainer, validated_epoch=validated)
        finally:
            db.mvcc.abort()

    def test_heal_publishes_one_epoch_for_the_patch(self):
        maintainer = _maintainer()
        db = maintainer.database
        maintainer.views["hop"].add(("x", "x"))
        before = db.epoch
        report = maintainer.heal(validated_epoch=before)
        assert report.healed
        assert report.epoch == before + 1
        maintainer.consistency_check()

    def test_clean_heal_commits_nothing(self):
        maintainer = _maintainer()
        before = maintainer.database.epoch
        report = maintainer.heal()
        assert report.is_clean()
        assert report.epoch is None
        assert maintainer.database.epoch == before


@pytest.mark.soak
class TestConcurrencySoak:
    """Readers race fault-injected writers; zero torn reads allowed.

    Together the three variants verify well over 10k per-view snapshot
    reads against the recompute oracle at their pinned epochs.
    """

    def test_counting_soak_zero_torn_reads(self):
        stats = run_soak(passes=300, min_reads=8000, seed=3)
        assert stats["problems"] == []
        assert stats["torn"] == []
        assert stats["reads"] >= 8000
        assert stats["crashes"] > 0
        assert stats["breaches"] > 0
        assert stats["max_retained"] <= stats["chain_cap"]

    def test_dred_soak_zero_torn_reads(self):
        stats = run_soak(
            passes=300,
            source=SOAK_TC_SRC,
            strategy="dred",
            min_reads=2000,
            seed=5,
        )
        assert stats["problems"] == []
        assert stats["torn"] == []
        assert stats["reads"] >= 2000
        assert stats["crashes"] > 0
        assert stats["max_retained"] <= stats["chain_cap"]

    def test_bf_soak_zero_torn_reads(self):
        """Snapshot readers racing fault-injected B/F passes: a crash
        at any wave must discard the uncommitted epoch wholesale."""
        stats = run_soak(
            passes=300,
            source=SOAK_TC_SRC,
            strategy="bf",
            min_reads=2000,
            seed=11,
        )
        assert stats["problems"] == []
        assert stats["torn"] == []
        assert stats["reads"] >= 2000
        assert stats["crashes"] > 0
        assert stats["max_retained"] <= stats["chain_cap"]

    def test_writer_round_trip_under_thread_interleaving(self):
        """A reader thread hammering pins while the writer commits
        serially must always see monotone epochs."""
        maintainer = _maintainer(source=TC_SRC)
        db = maintainer.database
        observed = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                with db.snapshot() as snap:
                    observed.append(snap.epoch)

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        try:
            for index in range(50):
                maintainer.apply(
                    Changeset().insert("link", ("t", index))
                )
        finally:
            stop.set()
            thread.join(timeout=30)
        assert observed == sorted(observed)
        assert db.mvcc.retained_entries() == 0
