"""B/F-specific properties: targeted deletion and no transient removal.

The differential-oracle battery already proves bf ≡ recompute at scale;
this file pins the *mechanism* of :mod:`repro.core.bf` — the things
that make B/F different from DRed rather than merely equal to it:

* unit cases on the shapes that motivate the algorithm (diamond
  alternatives, cyclic mutual support — including the exact
  mutual-support graph that defeats batch-prune-and-rederive
  verification);
* **no transient removal**: a tuple with a surviving alternative
  derivation is never discarded from the stored view, not even
  mid-pass.  Observed by recording every successful ``discard`` against
  the view relations, and contrasted with DRed on the same workload,
  which demonstrably does remove survivors before rederiving them —
  the difference test that proves the property is doing real work;
* **targeting**: B/F's examined candidate set stays inside DRed's
  overestimate on every workload (the backward check never looks at
  more tuples than DRed deletes).
"""

from contextlib import contextmanager

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.maintenance import ViewMaintainer
from repro.storage.changeset import Changeset
from repro.storage.relation import CountedRelation

from conftest import TC_SRC, database_with

NODE = st.integers(0, 6)
EDGE = st.tuples(NODE, NODE).filter(lambda e: e[0] != e[1])


def tc_maintainer(edges, strategy="bf"):
    return ViewMaintainer.from_source(
        TC_SRC, database_with(edges), strategy=strategy
    ).initialize()


def closure(edges):
    """Independent transitive-closure oracle (no engine code)."""
    reach = set(edges)
    while True:
        more = {
            (a, d)
            for (a, b) in reach
            for (c, d) in reach
            if b == c and (a, d) not in reach
        }
        if not more:
            return reach
        reach |= more


@contextmanager
def recorded_discards(*relations):
    """Record every row successfully discarded from ``relations``."""
    watched = {id(relation) for relation in relations}
    log = []
    original = CountedRelation.discard

    def recording(self, row):
        hit = original(self, row)
        if hit and id(self) in watched:
            log.append(row)
        return hit

    CountedRelation.discard = recording
    try:
        yield log
    finally:
        CountedRelation.discard = original


class TestUnitGraphs:
    def test_diamond_alternative_derivation_survives(self):
        # a→b→d and a→c→d: deleting a→b leaves tc(a,d) derivable
        # through c — the backward check must verify it, not delete it.
        maintainer = tc_maintainer(
            [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")]
        )
        report = maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert maintainer.relation("tc").as_set() == closure(
            {("b", "d"), ("a", "c"), ("c", "d")}
        )
        assert set(report.bf.deletions["tc"].rows()) == {("a", "b")}
        assert report.bf.stats.verified >= 1  # tc(a,d) was checked, kept
        maintainer.consistency_check()

    def test_mutual_support_cycle_is_fully_deleted(self):
        # The graph that defeats prune-and-rederive verification: after
        # deleting 1→0, tc(1,0) and tc(1,2) support only each other —
        # tc(1,0) "rederives" through stored tc(1,2) and vice versa.
        # The stack-blocked backward search must refuse both.
        maintainer = tc_maintainer([(1, 0), (2, 0), (0, 2)])
        maintainer.apply(Changeset().delete("link", (1, 0)))
        assert maintainer.relation("tc").as_set() == closure({(2, 0), (0, 2)})
        maintainer.consistency_check()

    def test_cycle_broken_then_restored(self):
        maintainer = tc_maintainer([("a", "b"), ("b", "a")])
        maintainer.apply(Changeset().delete("link", ("b", "a")))
        assert maintainer.relation("tc").as_set() == {("a", "b")}
        maintainer.apply(Changeset().insert("link", ("b", "a")))
        assert maintainer.relation("tc").as_set() == closure(
            {("a", "b"), ("b", "a")}
        )
        maintainer.consistency_check()

    def test_chain_delete_saturates_in_waves(self):
        edges = [(i, i + 1) for i in range(6)]
        maintainer = tc_maintainer(edges)
        report = maintainer.apply(Changeset().delete("link", (2, 3)))
        assert maintainer.relation("tc").as_set() == closure(
            set(edges) - {(2, 3)}
        )
        # Deleting mid-chain cascades: the forward loop needs >1 wave.
        assert report.bf.stats.waves > 1
        maintainer.consistency_check()

    def test_no_candidates_on_pure_insert(self):
        maintainer = tc_maintainer([("a", "b")])
        report = maintainer.apply(Changeset().insert("link", ("b", "c")))
        assert report.bf.stats.candidates == 0
        assert report.bf.stats.waves == 0
        assert maintainer.relation("tc").as_set() == closure(
            {("a", "b"), ("b", "c")}
        )


class TestNoTransientRemoval:
    """The B/F headline property, with a DRed difference test."""

    DIAMOND = [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")]

    def test_bf_never_discards_the_survivor(self):
        maintainer = tc_maintainer(self.DIAMOND, strategy="bf")
        view = maintainer.views["tc"]
        with recorded_discards(view) as removed:
            maintainer.apply(Changeset().delete("link", ("a", "b")))
        final = view.as_set()
        assert ("a", "d") in final
        assert ("a", "d") not in removed
        # Stronger: everything ever discarded stayed deleted.
        assert not set(removed) & final

    def test_dred_does_discard_the_survivor(self):
        """The same workload under DRed transiently removes tc(a,d)
        before rederiving it — the difference the property forbids."""
        maintainer = tc_maintainer(self.DIAMOND, strategy="dred")
        view = maintainer.views["tc"]
        with recorded_discards(view) as removed:
            maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert ("a", "d") in view.as_set()
        assert ("a", "d") in removed  # overdeleted, then rederived

    @settings(max_examples=60, derandomize=True, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(edges=st.lists(EDGE, min_size=1, max_size=12, unique=True),
           data=st.data())
    def test_bf_discards_exactly_its_reported_deletions(self, edges, data):
        """For any graph and any valid deletion batch: the rows B/F
        discards from the view are exactly the pass's net deletions —
        no tuple with a surviving derivation is ever touched."""
        doomed = data.draw(
            st.lists(st.sampled_from(edges), min_size=1, unique=True)
        )
        maintainer = tc_maintainer(edges, strategy="bf")
        view = maintainer.views["tc"]
        changes = Changeset()
        for edge in doomed:
            changes.delete("link", edge)
        with recorded_discards(view) as removed:
            report = maintainer.apply(changes)
        reported = set(
            report.bf.deletions.get("tc", CountedRelation()).rows()
        )
        assert set(removed) == reported
        assert len(removed) == len(reported)  # no double discard
        assert not set(removed) & view.as_set()
        assert view.as_set() == closure(set(edges) - set(doomed))


class TestTargeting:
    """B/F examines no more than DRed deletes."""

    @settings(max_examples=60, derandomize=True, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(edges=st.lists(EDGE, min_size=1, max_size=12, unique=True),
           data=st.data())
    def test_candidates_within_dred_overestimate(self, edges, data):
        doomed = data.draw(
            st.lists(st.sampled_from(edges), min_size=1, unique=True)
        )
        changes = Changeset()
        for edge in doomed:
            changes.delete("link", edge)

        bf = tc_maintainer(edges, strategy="bf")
        report = bf.apply(changes.copy())

        dred = tc_maintainer(edges, strategy="dred")
        with recorded_discards(dred.views["tc"]) as overestimate:
            dred.apply(changes.copy())

        candidates = set(
            report.bf.candidates.get("tc", CountedRelation()).rows()
        )
        assert candidates <= set(overestimate)
        assert bf.relation("tc").as_set() == dred.relation("tc").as_set()

    def test_check_ratio_reported(self):
        maintainer = tc_maintainer([("a", "b"), ("b", "c")])
        report = maintainer.apply(Changeset().delete("link", ("a", "b")))
        stats = report.bf.stats
        assert stats.candidates >= stats.deleted > 0
        assert stats.check_ratio >= 1.0
        assert stats.overestimated == 0  # B/F never overdeletes
