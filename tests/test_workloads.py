"""Tests for the synthetic workload generators."""

import pytest

from repro.workloads import (
    chain,
    cycle,
    delete_batch,
    delete_fraction,
    grid,
    insert_batch,
    layered_dag,
    mixed_batch,
    nodes_of,
    preferential_attachment,
    random_graph,
    update_sequence,
    with_costs,
)


class TestGraphs:
    def test_random_graph_size_and_simplicity(self):
        edges = random_graph(20, 50, seed=1)
        assert len(edges) == 50
        assert len(set(edges)) == 50
        assert all(a != b for a, b in edges)

    def test_random_graph_deterministic(self):
        assert random_graph(20, 50, seed=7) == random_graph(20, 50, seed=7)
        assert random_graph(20, 50, seed=7) != random_graph(20, 50, seed=8)

    def test_random_graph_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            random_graph(3, 10)

    def test_chain(self):
        assert chain(3) == [(0, 1), (1, 2), (2, 3)]

    def test_cycle(self):
        edges = cycle(4)
        assert (3, 0) in edges
        assert len(edges) == 4

    def test_grid_edge_count(self):
        edges = grid(3, 3)
        # 3×3 grid: 2 rights × 3 rows + 2 downs × 3 columns = 12.
        assert len(edges) == 12

    def test_layered_dag_is_acyclic_by_layers(self):
        edges = layered_dag(4, 5, 2, seed=2)
        assert all(src[0] + 1 == dst[0] for src, dst in edges)

    def test_preferential_attachment_hubs(self):
        edges = preferential_attachment(50, 2, seed=3)
        indegree = {}
        for _a, b in edges:
            indegree[b] = indegree.get(b, 0) + 1
        assert max(indegree.values()) > 5  # heavy tail exists

    def test_with_costs_range(self):
        edges = with_costs(chain(10), 1, 5, seed=4)
        assert all(1 <= c <= 5 for _a, _b, c in edges)

    def test_nodes_of(self):
        assert nodes_of([(1, 2), (2, 3)]) == [1, 2, 3]
        assert nodes_of([(1, 2, 9)]) == [1, 2]


class TestUpdates:
    def test_delete_batch(self):
        edges = chain(10)
        changes, remaining = delete_batch("link", edges, 3, seed=5)
        assert changes.deletion_count() == 3
        assert len(remaining) == 7
        for row, count in changes.delta("link").items():
            assert count == -1
            assert row in edges
            assert row not in remaining

    def test_delete_batch_capped_at_relation_size(self):
        changes, remaining = delete_batch("link", chain(2), 10, seed=5)
        assert changes.deletion_count() == 2
        assert remaining == []

    def test_insert_batch_avoids_existing(self):
        edges = chain(5)
        changes, result = insert_batch("link", edges, 4, 6, seed=6)
        inserted = set(changes.delta("link").rows())
        assert len(inserted) == 4
        assert not inserted & set(edges)
        assert len(result) == 9

    def test_insert_batch_with_costs(self):
        edges = with_costs(chain(5), 1, 5, seed=1)
        changes, _ = insert_batch(
            "link", edges, 3, 6, seed=7, cost_range=(1, 5)
        )
        for row in changes.delta("link").rows():
            assert len(row) == 3
            assert 1 <= row[2] <= 5

    def test_mixed_batch(self):
        edges = chain(10)
        changes, result = mixed_batch("link", edges, 2, 3, 12, seed=8)
        assert changes.deletion_count() == 2
        assert changes.insertion_count() == 3
        assert len(result) == 11

    def test_delete_fraction_full(self):
        changes, remaining = delete_fraction("link", chain(10), 1.0, seed=9)
        assert remaining == []
        assert changes.deletion_count() == 10

    def test_update_sequence_replayable(self):
        first = list(update_sequence("link", chain(20), 3, 4, 25, seed=10))
        second = list(update_sequence("link", chain(20), 3, 4, 25, seed=10))
        assert len(first) == 3
        for a, b in zip(first, second):
            assert a.delta("link").to_dict() == b.delta("link").to_dict()

    def test_update_sequence_applies_cleanly(self):
        from repro.storage.database import Database

        db = Database()
        db.insert_rows("link", chain(20))
        for changes in update_sequence("link", chain(20), 4, 4, 25, seed=11):
            db.apply_changeset(changes)  # must never over-delete
