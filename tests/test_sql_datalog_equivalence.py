"""SQL and Datalog front-ends must define identical views.

For each paired definition, materialize both over the same data and
compare extents; then run the same changesets through both maintainers
and compare again (the front-end must not affect maintenance).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.maintenance import ViewMaintainer
from repro.sql import Catalog, create_views
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.workloads import random_graph

PAIRS = [
    (
        "hop",
        "hop(X, Y) :- link(X, Z), link(Z, Y).",
        "CREATE VIEW hop AS SELECT r1.s, r2.d FROM link r1, link r2 "
        "WHERE r1.d = r2.s;",
    ),
    (
        "loops",
        "loops(X) :- link(X, X).",
        "CREATE VIEW loops AS SELECT l.s FROM link l WHERE l.s = l.d;",
    ),
    (
        "fan",
        "fan(X, Y, Z) :- link(X, Y), link(X, Z), Y != Z.",
        "CREATE VIEW fan AS SELECT a.s, a.d, b.d FROM link a, link b "
        "WHERE a.s = b.s AND a.d <> b.d;",
    ),
    (
        "deadend",
        "out(X) :- link(X, Y).\n"
        "deadend(X, Y) :- link(X, Y), not out(Y).",
        "CREATE VIEW out_nodes AS SELECT l.s FROM link l;"
        "CREATE VIEW deadend AS SELECT l.s, l.d FROM link l "
        "WHERE NOT EXISTS (SELECT * FROM link m WHERE m.s = l.d);",
    ),
]


def _edges(seed):
    return random_graph(8, 16, seed=seed)


def _sql_maintainer(sql, edges):
    db = Database()
    db.insert_rows("link", edges)
    catalog = Catalog().declare_table("link", ["s", "d"])
    return create_views(sql, catalog, db, strategy="dred").initialize()


def _datalog_maintainer(source, edges):
    db = Database()
    db.insert_rows("link", edges)
    return ViewMaintainer.from_source(
        source, db, strategy="dred"
    ).initialize()


@pytest.mark.parametrize("view,datalog,sql", PAIRS, ids=[p[0] for p in PAIRS])
def test_initial_extents_match(view, datalog, sql):
    edges = _edges(1)
    left = _datalog_maintainer(datalog, edges)
    right = _sql_maintainer(sql, edges)
    assert left.relation(view).as_set() == right.relation(view).as_set()


@pytest.mark.parametrize("view,datalog,sql", PAIRS, ids=[p[0] for p in PAIRS])
def test_maintenance_matches(view, datalog, sql):
    edges = _edges(2)
    left = _datalog_maintainer(datalog, edges)
    right = _sql_maintainer(sql, edges)
    changes = (
        Changeset()
        .delete("link", edges[0])
        .delete("link", edges[3])
        .insert("link", (0, 7))
        .insert("link", (7, 7))
    )
    left.apply(changes.copy())
    right.apply(changes.copy())
    assert left.relation(view).as_set() == right.relation(view).as_set()
    left.consistency_check()
    right.consistency_check()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)),
        min_size=1, max_size=15, unique=True,
    )
)
def test_hop_equivalence_random_graphs(edges):
    _name, datalog, sql = PAIRS[0]
    left = _datalog_maintainer(datalog, edges)
    right = _sql_maintainer(sql, edges)
    assert left.relation("hop").as_set() == right.relation("hop").as_set()


def test_group_by_equivalence():
    datalog = (
        "cheapest(S, M) :- GROUPBY(link(S2, D, C), [S2], M = MIN(C)), S = S2."
    )
    sql = (
        "CREATE VIEW cheapest AS SELECT l.s, MIN(l.c) FROM link l "
        "GROUP BY l.s;"
    )
    rows = [("a", "b", 3), ("a", "c", 1), ("b", "a", 9), ("b", "c", 9)]
    db1 = Database()
    db1.insert_rows("link", rows)
    left = ViewMaintainer.from_source(datalog, db1).initialize()
    db2 = Database()
    db2.insert_rows("link", rows)
    catalog = Catalog().declare_table("link", ["s", "d", "c"])
    right = create_views(sql, catalog, db2).initialize()
    assert left.relation("cheapest").as_set() == right.relation(
        "cheapest").as_set()
    changes = Changeset().delete("link", ("a", "c", 1)).insert(
        "link", ("b", "d", 2))
    left.apply(changes.copy())
    right.apply(changes.copy())
    assert left.relation("cheapest").as_set() == right.relation(
        "cheapest").as_set()
