"""Differential-oracle suite: maintenance ≡ recomputation, at scale.

Hypothesis generates stratified programs (joins, unions, filters,
negation, GROUPBY aggregates over a base ``link`` relation) together
with model-tracked streams of insert/delete changesets (deletions only
ever remove rows the model says exist, so every changeset is valid
against the state it meets).  Each case then runs the real maintenance
machinery — counting, DRed and B/F, batched (``apply_many``) and
unbatched, plan cache on and off, set and duplicate semantics — and
checks it against two independent oracles:

* **recount** (:func:`repro.baselines.recount.true_view_deltas`): the
  per-pass signed deltas must equal a from-scratch before/after diff
  (Theorem 4.1);
* **recompute**: the maintained views must equal a fresh
  materialization of the final database — both via the maintainer's own
  ``consistency_check()`` and against a database tracked independently
  of the maintainer (guarding against the maintainer corrupting its own
  base relations and then agreeing with them).

A third oracle covers the MVCC layer: snapshots pinned at
hypothesis-chosen points between passes must keep reading exactly the
recompute of the oracle database as it stood at acquire time
(``test_interleaved_snapshots_match_recompute_at_pinned_epoch``).

The suite runs 510 generated maintenance cases (see the
``max_examples`` settings: 25×6 counting + 15×6×2 DRed/B-F +
15×6×2 recursive DRed/B-F + 40×2 interleaved snapshots), derandomized
so CI is reproducible.  Any divergence is a real bug: the oracles share
no code path with the incremental algorithms.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import analyze
from repro.baselines.recount import true_view_deltas
from repro.core.maintenance import ViewMaintainer
from repro.errors import SafetyError, StratificationError
from repro.guard import GuardPolicy, MaintenanceBudget
from repro.datalog.parser import parse_program
from repro.datalog.safety import check_program_safety
from repro.datalog.stratify import stratify
from repro.eval.stratified import materialize
from repro.storage.changeset import Changeset
from repro.storage.database import Database

from conftest import TC_SRC, database_with

# ------------------------------------------------------------------ programs

NODE = st.integers(0, 7)
EDGE = st.tuples(NODE, NODE).filter(lambda e: e[0] != e[1])


@st.composite
def stratified_program(draw):
    """Source for a random stratified program over base ``link``.

    Views are built bottom-up, each referencing only ``link`` or an
    earlier *graph-shaped* (binary, node-valued) view — so the program
    is stratified by construction.  Every program ends with one
    negation view and one GROUPBY aggregate view, so the features the
    paper treats specially (Section 5's Δ¬ and Section 6's aggregate
    maintenance) are exercised in every single case.
    """
    graph_views = ["link"]
    rules = []

    def fresh(prefix):
        return f"{prefix}{len(rules)}"

    for _ in range(draw(st.integers(1, 3))):
        prev = draw(st.sampled_from(graph_views))
        shape = draw(st.sampled_from(["join", "union", "filter"]))
        name = fresh("v")
        if shape == "join":
            rules.append(f"{name}(X,Y) :- {prev}(X,Z), link(Z,Y).")
        elif shape == "union":
            rules.append(f"{name}(X,Y) :- {prev}(X,Y).")
            rules.append(f"{name}(X,Y) :- link(Y,X).")
        else:
            rules.append(f"{name}(X,Y) :- {prev}(X,Y), X < Y.")
        graph_views.append(name)

    negated = draw(st.sampled_from(graph_views))
    neg_name = fresh("neg")
    rules.append(f"{neg_name}(X,Y) :- link(X,Y), not {negated}(X,Y).")
    graph_views.append(neg_name)

    grouped = draw(st.sampled_from(graph_views))
    function = draw(st.sampled_from(["COUNT", "MIN", "MAX", "SUM"]))
    rules.append(
        f"agg(X, M) :- GROUPBY({grouped}(X, Y), [X], M = {function}(Y))."
    )
    return "\n".join(rules)


# The defect menu for the analyzer-soundness tests below: each entry is
# a rule (or rule pair) that the engine's own gatekeepers —
# ``check_program_safety`` / ``stratify`` — must reject.  Spanning every
# rejection family keeps the analyzer's error codes honest on both
# sides: accepted programs must lint clean of errors, rejected ones must
# produce at least one.
DEFECTS = [
    "bad(X, W) :- link(X, Y).",                      # unbound head var
    "bad(X) :- link(X, Y), not link(X, W).",         # unsafe negation
    "bad(X) :- link(X, Y), W < 3.",                  # unsafe comparison
    "bad(X).",                                       # non-ground fact
    "bad(X, Y) :- GROUPBY(link(X, Y), [X], M = COUNT(Y)).",  # agg leak
    "bad(X) :- link(X, Y), not bad(X).",             # negative self-cycle
    (
        "odd(X) :- link(X, Y), not even(X).\n"
        "even(X) :- link(X, Y), not odd(X)."         # mutual neg cycle
    ),
]


@st.composite
def rejected_program(draw):
    """A generated stratified program with one injected defect."""
    base = draw(stratified_program())
    defect = draw(st.sampled_from(DEFECTS))
    rules = base.split("\n")
    position = draw(st.integers(0, len(rules)))
    rules.insert(position, defect)
    return "\n".join(rules)


def _gatekeepers_accept(source):
    """Does the engine's own front door admit this program?"""
    program = parse_program(source)
    try:
        check_program_safety(program)
        stratify(program)
    except (SafetyError, StratificationError):
        return False
    return True


# ------------------------------------------------------- analyzer soundness


@settings(max_examples=220, derandomize=True, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=stratified_program())
def test_analyzer_has_no_error_false_positives(case):
    """Accepted program ⇒ zero error-severity diagnostics.

    Every generated program is stratified and safe by construction, so
    the engine admits it; an error-level diagnostic on any of them would
    be a false positive (warnings — singleton variables and the like —
    are allowed).  The advisor's recommendation must also equal the
    dispatch ``ViewMaintainer`` applies under ``strategy="auto"``.
    """
    assert _gatekeepers_accept(case)
    report = analyze(case)
    assert report.ok, [
        (d.code, d.message) for d in report.errors()
    ]
    expected = "bf" if report.stratification.is_recursive else "counting"
    assert report.advice.overall == expected


@settings(max_examples=120, derandomize=True, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=rejected_program())
def test_analyzer_flags_every_rejected_program(case):
    """Rejected program ⇒ at least one error-severity diagnostic.

    Each injected defect trips ``check_program_safety`` or ``stratify``,
    and the analyzer must agree — with an error code from the RV0xx
    band, so ``repro lint`` (default ``--fail-on error``) exits nonzero
    on exactly the programs the engine would refuse to load.
    """
    assert not _gatekeepers_accept(case)
    report = analyze(case)
    errors = report.errors()
    assert errors, f"analyzer missed the defect in:\n{case}"
    assert all(e.code.startswith("RV0") for e in errors)
    assert report.exit_code() == 1


# ------------------------------------------------------------------- streams


@st.composite
def update_stream(draw, set_model=False):
    """Initial edges plus a model-tracked list of valid changesets.

    The model (a row → count multiset) is updated as each changeset is
    drawn, so deletions always target rows that exist *at that point in
    the stream* — the validity contract ``Changeset`` enforces.

    With ``set_model=True`` the stream is additionally *set-valid*:
    inserts only add absent rows and deletes only remove rows with a
    single copy.  DRed canonicalizes its base relations to set
    semantics (a duplicate insert is a no-op), so only set-valid
    streams mean the same thing to DRed and to a multiset-tracked
    oracle database.
    """
    edges = draw(st.lists(EDGE, min_size=2, max_size=10, unique=True))
    model = {edge: 1 for edge in edges}

    stream = []
    for _ in range(draw(st.integers(1, 3))):
        changes = Changeset()
        net = {}
        for _ in range(draw(st.integers(1, 3))):
            present = [row for row, count in model.items()
                       if count + net.get(row, 0) > 0]
            if present and draw(st.booleans()):
                row = draw(st.sampled_from(present))
                changes.delete("link", row)
                net[row] = net.get(row, 0) - 1
            else:
                row = draw(EDGE)
                if set_model and model.get(row, 0) + net.get(row, 0) > 0:
                    continue  # would create a duplicate: skip this op
                changes.insert("link", row)
                net[row] = net.get(row, 0) + 1
        if not any(net.values()):
            continue
        for row, count in net.items():
            model[row] = model.get(row, 0) + count
        stream.append(changes)
    return edges, stream


CONFIGS = [
    pytest.param(
        cache, batched, None, id=f"cache-{cache}-batched-{batched}"
    )
    for cache in (True, False)
    for batched in (True, False)
] + [
    # The same contract must hold inside the guard envelope: with an
    # enabled (but unreachable) budget metering every pass, and with
    # every pass forced through the recompute fallback.
    pytest.param(True, False, "enabled", id="guard-enabled"),
    pytest.param(True, False, "forced", id="guard-forced"),
]


def _guard_policy(mode):
    if mode == "enabled":
        return GuardPolicy(
            budget=MaintenanceBudget(
                deadline_seconds=3600.0,
                max_delta_tuples=10**9,
                max_rule_firings=10**9,
            )
        )
    if mode == "forced":
        return GuardPolicy(force_fallback=True)
    return None


def _buckets(stream, size=2):
    return [stream[i:i + size] for i in range(0, len(stream), size)]


def _final_state_matches(maintainer, source, oracle_db, semantics):
    """Maintained views ≡ fresh materialization of the tracked database."""
    truth = materialize(parse_program(source), oracle_db, semantics=semantics)
    for view in maintainer.view_names():
        maintained = maintainer.relation(view)
        if semantics == "set":
            assert maintained.as_set() == truth[view].as_set(), view
        else:
            assert maintained.to_dict() == truth[view].to_dict(), view
    maintainer.consistency_check()


# ---------------------------------------------------------- counting ≡ oracle


@pytest.mark.parametrize("cache,batched,guard", CONFIGS)
@settings(max_examples=25, derandomize=True, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=stratified_program(), updates=update_stream(),
       semantics=st.sampled_from(["set", "duplicate"]))
def test_counting_matches_oracles(cache, batched, guard, case, updates,
                                  semantics):
    edges, stream = updates
    program = parse_program(case)
    maintainer = ViewMaintainer.from_source(
        case, database_with(edges), strategy="counting",
        semantics=semantics, plan_cache=cache, guard=_guard_policy(guard),
    ).initialize()
    oracle_db = database_with(edges)

    if batched:
        for bucket in _buckets(stream):
            maintainer.apply_many(changes.copy() for changes in bucket)
            for changes in bucket:
                oracle_db.apply_changeset(changes.copy())
    else:
        for changes in stream:
            truth = true_view_deltas(
                program, oracle_db, changes, semantics
            )
            report = maintainer.apply(changes.copy())
            for view in maintainer.view_names():
                expected = truth[view].to_dict() if view in truth else {}
                assert report.delta(view).to_dict() == expected, view
            oracle_db.apply_changeset(changes.copy())

    _final_state_matches(maintainer, case, oracle_db, semantics)


@settings(max_examples=15, derandomize=True, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=stratified_program(), updates=update_stream(),
       semantics=st.sampled_from(["set", "duplicate"]))
def test_sanitized_counting_matches_recompute(case, updates, semantics):
    """The runtime sanitizer stays silent on every correct workload.

    Same recompute oracle as above, but the maintained database runs
    with ``Database(sanitize=True)``: a single false-positive trap
    (SanitizerError) on any generated program/stream fails the case,
    and the views must still match the oracle bit-for-bit.
    """
    edges, stream = updates
    db = Database(sanitize=True)
    db.insert_rows("link", edges)
    maintainer = ViewMaintainer.from_source(
        case, db, strategy="counting", semantics=semantics,
    ).initialize()
    oracle_db = database_with(edges)
    for changes in stream:
        maintainer.apply(changes.copy())
        oracle_db.apply_changeset(changes.copy())
    _final_state_matches(maintainer, case, oracle_db, semantics)
    assert db.sanitizer.trapped == 0
    assert db.sanitizer.checks > 0


# --------------------------------------------------------- DRed/B-F ≡ oracle


@pytest.mark.parametrize("strategy", ["dred", "bf"])
@pytest.mark.parametrize("cache,batched,guard", CONFIGS)
@settings(max_examples=15, derandomize=True, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=stratified_program(), updates=update_stream(set_model=True))
def test_dred_matches_recompute(strategy, cache, batched, guard, case,
                                updates):
    edges, stream = updates
    maintainer = ViewMaintainer.from_source(
        case, database_with(edges), strategy=strategy, plan_cache=cache,
        guard=_guard_policy(guard),
    ).initialize()
    oracle_db = database_with(edges)

    if batched:
        for bucket in _buckets(stream):
            maintainer.apply_many(changes.copy() for changes in bucket)
            for changes in bucket:
                oracle_db.apply_changeset(changes.copy())
    else:
        for changes in stream:
            maintainer.apply(changes.copy())
            oracle_db.apply_changeset(changes.copy())
            _final_state_matches(maintainer, case, oracle_db, "set")

    _final_state_matches(maintainer, case, oracle_db, "set")


# ------------------------------------------------------ snapshots ≡ oracle


def _snapshot_matches(snap, frozen_db, program, view_names, semantics):
    """Pinned snapshot ≡ recompute over the oracle state at acquire time.

    ``frozen_db`` is the independently-tracked oracle database copied at
    the instant the snapshot was pinned; the snapshot's base relations
    must equal it row-for-row and its views must equal a fresh
    materialization of it — no matter how many epochs have committed
    since.
    """
    assert (
        snap.relation("link").to_dict()
        == frozen_db.relation("link").to_dict()
    )
    truth = materialize(program, frozen_db, semantics=semantics)
    for view in view_names:
        read = snap.relation(view)
        if semantics == "set":
            assert read.as_set() == truth[view].as_set(), view
        else:
            assert read.to_dict() == truth[view].to_dict(), view


@pytest.mark.parametrize("strategy", ["counting", "bf"])
@settings(max_examples=40, derandomize=True, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_interleaved_snapshots_match_recompute_at_pinned_epoch(
    strategy, data
):
    """Snapshots acquired/released at arbitrary points in the stream.

    Hypothesis shuffles snapshot acquire/release actions between the
    ``apply``/``apply_many`` calls of a generated update stream.  Each
    acquired snapshot is paired with an ``oracle_db.copy()`` frozen at
    the same instant, and re-verified against it after *every*
    subsequent pass: a later commit leaking into a pinned read — a torn
    read — fails here deterministically, without threads.  Runs on both
    the counting engine (set and duplicate semantics) and B/F (set
    semantics, set-valid streams — the semantics it is defined for).
    """
    case = data.draw(stratified_program(), label="program")
    if strategy == "bf":
        semantics = "set"
        edges, stream = data.draw(
            update_stream(set_model=True), label="updates"
        )
    else:
        semantics = data.draw(
            st.sampled_from(["set", "duplicate"]), label="semantics"
        )
        edges, stream = data.draw(update_stream(), label="updates")
    db = Database(retain_versions=64)
    db.insert_rows("link", edges)
    maintainer = ViewMaintainer.from_source(
        case, db, strategy=strategy, semantics=semantics
    ).initialize()
    oracle_db = database_with(edges)
    program = parse_program(case)
    view_names = maintainer.view_names()

    open_snaps = []

    def acquire():
        open_snaps.append((db.snapshot(), oracle_db.copy()))

    def release(index):
        snap, frozen = open_snaps.pop(index)
        _snapshot_matches(snap, frozen, program, view_names, semantics)
        snap.close()

    remaining = list(stream)
    while remaining:
        if data.draw(st.booleans(), label="acquire before pass"):
            acquire()
        if open_snaps and data.draw(st.booleans(), label="release one"):
            release(data.draw(
                st.integers(0, len(open_snaps) - 1), label="which"
            ))
        if len(remaining) >= 2 and data.draw(
            st.booleans(), label="batch two"
        ):
            batch, remaining = remaining[:2], remaining[2:]
            maintainer.apply_many(changes.copy() for changes in batch)
            for changes in batch:
                oracle_db.apply_changeset(changes.copy())
        else:
            changes, remaining = remaining[0], remaining[1:]
            maintainer.apply(changes.copy())
            oracle_db.apply_changeset(changes.copy())
        for snap, frozen in open_snaps:
            _snapshot_matches(snap, frozen, program, view_names, semantics)

    while open_snaps:
        release(len(open_snaps) - 1)
    _final_state_matches(maintainer, case, oracle_db, semantics)
    assert db.mvcc.retained_entries() == 0


@pytest.mark.parametrize("strategy", ["dred", "bf"])
@pytest.mark.parametrize("cache,batched,guard", CONFIGS)
@settings(max_examples=15, derandomize=True, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(updates=update_stream(set_model=True))
def test_dred_recursive_matches_recompute(strategy, cache, batched, guard,
                                          updates):
    """Same contract on the recursive TC program (fixpoint + rederive /
    backward check + forward waves)."""
    edges, stream = updates
    maintainer = ViewMaintainer.from_source(
        TC_SRC, database_with(edges), strategy=strategy, plan_cache=cache,
        guard=_guard_policy(guard),
    ).initialize()
    oracle_db = database_with(edges)

    if batched:
        maintainer.apply_many(changes.copy() for changes in stream)
        for changes in stream:
            oracle_db.apply_changeset(changes.copy())
    else:
        for changes in stream:
            maintainer.apply(changes.copy())
            oracle_db.apply_changeset(changes.copy())

    _final_state_matches(maintainer, TC_SRC, oracle_db, "set")
