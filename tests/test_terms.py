"""Unit tests for the term language (variables, constants, arithmetic)."""

import pytest

from repro.datalog.terms import (
    BinaryOp,
    Constant,
    UnaryMinus,
    Variable,
    iter_subterms,
    make_term,
)
from repro.errors import EvaluationError


class TestVariable:
    def test_evaluate_bound(self):
        assert Variable("X").evaluate({"X": 7}) == 7

    def test_evaluate_unbound_raises(self):
        with pytest.raises(EvaluationError, match="unbound"):
            Variable("X").evaluate({})

    def test_variables(self):
        assert Variable("X").variables() == frozenset({"X"})

    def test_not_ground(self):
        assert not Variable("X").is_ground()

    def test_substitute_to_new_name(self):
        assert Variable("X").substitute({"X": "Y"}) == Variable("Y")

    def test_substitute_to_term(self):
        assert Variable("X").substitute({"X": Constant(3)}) == Constant(3)

    def test_substitute_missing_is_identity(self):
        variable = Variable("X")
        assert variable.substitute({"Y": "Z"}) is variable

    def test_str(self):
        assert str(Variable("Abc")) == "Abc"

    def test_hashable_and_equal(self):
        assert Variable("X") == Variable("X")
        assert hash(Variable("X")) == hash(Variable("X"))
        assert Variable("X") != Variable("Y")


class TestConstant:
    def test_evaluate(self):
        assert Constant("a").evaluate({}) == "a"

    def test_ground(self):
        assert Constant(1).is_ground()

    def test_no_variables(self):
        assert Constant(1).variables() == frozenset()

    def test_substitute_identity(self):
        constant = Constant(1)
        assert constant.substitute({"X": "Y"}) is constant

    def test_str_string_repr(self):
        assert str(Constant("a")) == "'a'"
        assert str(Constant(3)) == "3"

    def test_distinct_types_not_equal(self):
        assert Constant(1) != Constant("1")


class TestBinaryOp:
    def test_addition(self):
        term = BinaryOp("+", Variable("X"), Constant(2))
        assert term.evaluate({"X": 3}) == 5

    def test_nested_expression(self):
        term = BinaryOp(
            "*", BinaryOp("+", Variable("X"), Constant(1)), Constant(10)
        )
        assert term.evaluate({"X": 2}) == 30

    @pytest.mark.parametrize(
        "op,expected",
        [("+", 7), ("-", 3), ("*", 10), ("/", 2.5), ("//", 2), ("%", 1)],
    )
    def test_all_operators(self, op, expected):
        assert BinaryOp(op, Constant(5), Constant(2)).evaluate({}) == expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(EvaluationError):
            BinaryOp("**", Constant(1), Constant(2))

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            BinaryOp("/", Constant(1), Constant(0)).evaluate({})

    def test_type_error_wrapped(self):
        with pytest.raises(EvaluationError):
            BinaryOp("-", Constant("a"), Constant(1)).evaluate({})

    def test_variables_union(self):
        term = BinaryOp("+", Variable("X"), Variable("Y"))
        assert term.variables() == frozenset({"X", "Y"})

    def test_substitute_recurses(self):
        term = BinaryOp("+", Variable("X"), Variable("Y"))
        replaced = term.substitute({"X": Constant(1)})
        assert replaced == BinaryOp("+", Constant(1), Variable("Y"))

    def test_string_concatenation_works(self):
        # '+' is polymorphic, matching SQL string concatenation dialects.
        term = BinaryOp("+", Constant("ab"), Constant("cd"))
        assert term.evaluate({}) == "abcd"


class TestUnaryMinus:
    def test_evaluate(self):
        assert UnaryMinus(Variable("X")).evaluate({"X": 4}) == -4

    def test_type_error(self):
        with pytest.raises(EvaluationError):
            UnaryMinus(Constant("a")).evaluate({})

    def test_substitute(self):
        assert UnaryMinus(Variable("X")).substitute({"X": "Y"}) == UnaryMinus(
            Variable("Y")
        )


class TestIterSubterms:
    def test_covers_nested(self):
        term = BinaryOp("+", UnaryMinus(Variable("X")), Constant(1))
        parts = list(iter_subterms(term))
        assert term in parts
        assert Variable("X") in parts
        assert Constant(1) in parts
        assert len(parts) == 4


class TestMakeTerm:
    def test_uppercase_becomes_variable(self):
        assert make_term("X") == Variable("X")
        assert make_term("_tmp") == Variable("_tmp")

    def test_lowercase_becomes_constant(self):
        assert make_term("abc") == Constant("abc")

    def test_numbers_become_constants(self):
        assert make_term(3) == Constant(3)

    def test_term_passes_through(self):
        term = Variable("X")
        assert make_term(term) is term

    def test_empty_string_is_constant(self):
        assert make_term("") == Constant("")
