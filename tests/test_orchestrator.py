"""Tests for the fault-contained DAG orchestrator.

The centerpiece is the *crash matrix*: a persistent fault injected at
every refresh phase a node's strategy actually reaches (counting on the
middle layer for insertions, B/F on the recursive top layer for
deletions), asserting for each cell that

* exactly the node's isolation cone is quarantined — the unrelated
  sibling keeps refreshing;
* the quarantined view keeps serving its last committed state (and
  ``strict="reject"`` refuses);
* once the fault clears, the recovery probe heals the cone and the DAG
  reconverges with the layer-by-layer recompute oracle.

Around the matrix: retry absorption and DEAD/revive, lag targets and
``DOWNSTREAM`` resolution under a virtual clock, suspend/resume
cascades, strict-read modes, graph/spec validation errors, schema
negatives for the ``orchestrator`` status block, and the shared
:class:`~repro.resilience.backoff.Backoff` schedule.
"""

import json
import random

import pytest

from repro.errors import (
    DivergenceError,
    OrchestrationError,
    ReproError,
    StaleViewError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_orchestrator, validate_status
from repro.obs.top import orchestrator_lines
from repro.orchestrator import (
    DOWNSTREAM,
    DependencyGraph,
    Orchestrator,
    RefreshPolicy,
    ViewNode,
)
from repro.resilience.backoff import Backoff
from repro.storage.changeset import Changeset

#: The 3-level test DAG: sources → hops → tris → reach, plus a sibling
#: that shares a source with tris but sits outside every cone.
NODES = [
    ViewNode("hops", "hop(X,Y) :- link(X,Z), link(Z,Y)."),
    ViewNode("tris", "tri(X,Y) :- hop(X,Z), link2(Z,Y)."),
    ViewNode(
        "reach",
        "reach(X,Y) :- tri(X,Y). reach(X,Y) :- tri(X,Z), reach(Z,Y).",
    ),
    ViewNode("sibling", "twol(X,Y) :- link2(X,Z), link2(Z,Y)."),
]

FAST = RefreshPolicy(
    max_attempts=2, backoff_seconds=0.0001, probe_every=1, dead_after=10
)

SEED = (
    Changeset()
    .insert("link", ("a", "b"))
    .insert("link", ("b", "c"))
    .insert("link2", ("c", "d"))
    .insert("link2", ("d", "e"))
)


def make_orchestrator(**kwargs):
    kwargs.setdefault("policy", FAST)
    kwargs.setdefault("metrics", MetricsRegistry())
    kwargs.setdefault("seed", 11)
    kwargs.setdefault("sleep", lambda _s: None)
    return Orchestrator(NODES, **kwargs)


def seeded_orchestrator(**kwargs):
    orch = make_orchestrator(**kwargs)
    orch.ingest(SEED.copy())
    orch.tick()
    return orch


class VirtualClock:
    def __init__(self, now=1_000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# --------------------------------------------------------------------------
# The crash matrix.
# --------------------------------------------------------------------------

#: (node, phase, delta) — every phase the node's refresh actually
#: reaches.  tris runs counting (insertions); reach runs B/F, whose
#: deletion pass adds the backward/forward phases.  journal_append
#: fires in the shared commit path for both.
CRASH_MATRIX = [
    ("tris", "delta_derivation", Changeset().insert("link2", ("c", "f"))),
    ("tris", "count_merge", Changeset().insert("link2", ("c", "f"))),
    ("tris", "journal_append", Changeset().insert("link2", ("c", "f"))),
    ("reach", "delta_derivation", Changeset().delete("link", ("b", "c"))),
    ("reach", "count_merge", Changeset().delete("link", ("b", "c"))),
    ("reach", "backward_check", Changeset().delete("link", ("b", "c"))),
    ("reach", "forward_delete", Changeset().delete("link", ("b", "c"))),
    ("reach", "journal_append", Changeset().delete("link", ("b", "c"))),
]


@pytest.mark.parametrize(
    "node, phase, delta",
    CRASH_MATRIX,
    ids=[f"{node}-{phase}" for node, phase, _ in CRASH_MATRIX],
)
def test_crash_matrix(node, phase, delta):
    """A persistent fault at any phase quarantines exactly the cone,
    stale reads keep serving, and recovery reconverges with the oracle.
    """
    orch = seeded_orchestrator()
    before = {
        view: sorted(orch.read(view).as_set())
        for view in ("hop", "tri", "reach", "twol")
    }
    cone = sorted(orch.graph.cone(node))
    outside = [n for n in orch.graph.order if n not in cone]

    orch.faults(node).arm(phase, every_n=1)
    orch.ingest(delta)
    fault_tick = orch.tick()

    # The armed phase really was the crash point.
    assert phase in orch.faults(node).fired
    assert fault_tick.failed == [node]
    status = orch.status()
    assert status["quarantined"] == cone
    # Cone-only: every node outside the cone is untouched and FRESH.
    for name in outside:
        assert status["views"][name]["state"] == "FRESH"
        assert status["views"][name]["quarantined_by"] == []
    assert status["views"][node]["retries"] == FAST.max_attempts
    assert status["views"][node]["last_error"]

    # Stale serving: the cone's views still answer with the last
    # committed materialization; reject mode refuses.
    for member in cone:
        for view in orch.graph.exports_of(member):
            assert sorted(orch.read(view).as_set()) == before[view]
            with pytest.raises(StaleViewError):
                orch.read(view, strict="reject")

    # Recovery: clear the fault; the probe (cadence 1) heals the root
    # and the backlog drains through the cone in the same tick.
    orch.faults(node).disarm()
    healed = orch.tick()
    assert healed.probed == [node]
    assert healed.refreshed[0] == node
    assert set(healed.refreshed) == set(cone)
    assert orch.status()["quarantined"] == []
    orch.check_convergence()


def test_fault_tick_leaves_node_database_unchanged():
    """A failed refresh rolls back bit-identically (shadow commit)."""
    orch = seeded_orchestrator()
    before = orch.runners["tris"].maintainer.relation("tri").to_dict()
    orch.faults("tris").arm("count_merge", every_n=1)
    orch.ingest(Changeset().insert("link2", ("d", "f")))
    orch.tick()
    assert orch.runners["tris"].maintainer.relation(
        "tri", strict=False
    ).to_dict() == before


# --------------------------------------------------------------------------
# Retries, death, revival.
# --------------------------------------------------------------------------


def test_transient_fault_absorbed_by_retries():
    orch = seeded_orchestrator()
    orch.faults("hops").arm("count_merge", first_k=1)
    orch.ingest(Changeset().insert("link", ("c", "f")))
    report = orch.tick()
    assert "hops" in report.refreshed and not report.failed
    view = orch.status()["views"]["hops"]
    assert view["retries"] == 1 and view["failures"] == 0
    orch.check_convergence()


def test_retries_pause_on_the_backoff_schedule():
    pauses = []
    orch = make_orchestrator(sleep=pauses.append, seed=3)
    orch.ingest(SEED.copy())
    orch.tick()
    orch.faults("hops").arm("count_merge", first_k=1)
    orch.ingest(Changeset().insert("link", ("c", "f")))
    orch.tick()
    assert len(pauses) == 1 and 0 < pauses[0] <= 2 * FAST.backoff_seconds


def test_dead_after_consecutive_failures_and_revive():
    orch = seeded_orchestrator(
        policy=RefreshPolicy(
            max_attempts=1, backoff_seconds=0.0001,
            probe_every=1, dead_after=2,
        )
    )
    orch.faults("tris").arm("count_merge", every_n=1)
    orch.ingest(Changeset().insert("link2", ("d", "f")))
    orch.tick()  # failure 1 → quarantined
    orch.tick()  # probe → failure 2 → DEAD
    status = orch.status()
    assert status["dead"] == ["tris"]
    assert status["views"]["tris"]["state"] == "DEAD"
    # DEAD nodes are out of scheduling: no more probes, no refreshes.
    assert orch.tick().probed == []
    with pytest.raises(OrchestrationError, match="DEAD"):
        orch.refresh_now("tris")
    with pytest.raises(OrchestrationError, match="not DEAD"):
        orch.revive("hops")

    orch.faults("tris").disarm()
    orch.revive("tris")
    healed = orch.tick()
    assert "tris" in healed.refreshed
    assert orch.status()["dead"] == []
    orch.check_convergence()


def test_non_retryable_exception_fails_immediately():
    orch = seeded_orchestrator()
    orch.faults("hops").arm(
        "count_merge", every_n=1, exception=ValueError("deterministic bug")
    )
    orch.ingest(Changeset().insert("link", ("c", "f")))
    report = orch.tick()
    assert report.failed == ["hops"]
    view = orch.status()["views"]["hops"]
    assert view["retries"] == 0  # no point retrying a ValueError
    assert "ValueError" in view["last_error"]


# --------------------------------------------------------------------------
# Lag targets and DOWNSTREAM resolution.
# --------------------------------------------------------------------------


def lag_pair(base_lag, rollup_lag):
    return [
        ViewNode("base", "pair(X,Y) :- edge(X,Y).", target_lag=base_lag),
        ViewNode("rollup", "fan(X) :- pair(X,Y).", target_lag=rollup_lag),
    ]


def test_target_lag_batches_until_due():
    clock = VirtualClock()
    orch = Orchestrator(
        lag_pair(30.0, 0.0), metrics=MetricsRegistry(),
        clock=clock, sleep=lambda _s: None,
    )
    orch.ingest(Changeset().insert("edge", ("x", "y")))
    assert orch.tick().refreshed == []
    orch.ingest(Changeset().insert("edge", ("x", "z")))  # batches up
    clock.advance(31.0)
    report = orch.tick()
    assert report.refreshed == ["base", "rollup"]  # rollup lag 0: same tick
    assert sorted(orch.read("fan").as_set()) == [("x",)]
    orch.check_convergence()


def test_downstream_resolves_to_min_consumer_lag():
    graph = DependencyGraph(
        [
            ViewNode("base", "pair(X,Y) :- edge(X,Y).",
                     target_lag=DOWNSTREAM),
            ViewNode("fast", "f(X) :- pair(X,Y).", target_lag=5.0),
            ViewNode("slow", "s(Y) :- pair(X,Y).", target_lag=120.0),
        ]
    )
    assert graph.effective_lag("base") == 5.0
    assert graph.effective_lag("slow") == 120.0


def test_downstream_without_consumers_is_on_demand():
    orch = Orchestrator(
        [ViewNode("base", "pair(X,Y) :- edge(X,Y).",
                  target_lag=DOWNSTREAM)],
        metrics=MetricsRegistry(), sleep=lambda _s: None,
    )
    assert orch.lags == {"base": None}
    orch.ingest(Changeset().insert("edge", ("x", "y")))
    assert orch.tick().refreshed == []  # never scheduled...
    report = orch.refresh_now("base")  # ...only refreshed on demand
    assert report is not None and report.epoch is not None
    assert sorted(orch.read("pair").as_set()) == [("x", "y")]


# --------------------------------------------------------------------------
# Suspend / resume, forced refresh, reads.
# --------------------------------------------------------------------------


def test_suspend_cascades_and_resume_drains():
    orch = seeded_orchestrator()
    assert orch.suspend("tris") == ["reach", "tris"]
    # link2(c,f) joins hop(a,c): the tri delta reaches reach on drain.
    orch.ingest(Changeset().insert("link2", ("c", "f")))
    report = orch.tick()
    # The suspended cone holds its backlog; upstream and sibling go on.
    assert "tris" not in report.refreshed
    assert orch.status()["views"]["tris"]["pending"] == 1
    assert orch.status()["views"]["sibling"]["state"] == "FRESH"
    with pytest.raises(OrchestrationError, match="suspended"):
        orch.refresh_now("tris")

    assert orch.resume("tris") == ["reach", "tris"]
    drained = orch.tick()
    assert "tris" in drained.refreshed and "reach" in drained.refreshed
    orch.check_convergence()


def test_refresh_now_refuses_inside_upstream_cone():
    orch = seeded_orchestrator()
    orch.faults("tris").arm("count_merge", every_n=1)
    orch.ingest(Changeset().insert("link2", ("d", "f")))
    orch.tick()
    with pytest.raises(OrchestrationError, match="failure cone"):
        orch.refresh_now("reach")


def test_snapshot_read_carries_epoch_and_staleness():
    orch = seeded_orchestrator()
    expected = sorted(orch.read("tri").as_set())
    orch.faults("tris").arm("count_merge", every_n=1)
    orch.ingest(Changeset().insert("link2", ("d", "f")))
    orch.tick()
    snap = orch.read("tri", strict="snapshot")
    assert sorted(snap.as_set()) == expected
    assert snap.epoch is not None
    assert snap.staleness["state"] == "QUARANTINED"
    assert snap.staleness["quarantined_by"] == ["tris"]
    assert snap.staleness["changesets"] >= 1
    assert snap.staleness["seconds"] >= 0.0


def test_reject_mode_also_rejects_plain_backlog():
    clock = VirtualClock()
    orch = Orchestrator(
        lag_pair(60.0, 60.0), strict_reads="reject",
        metrics=MetricsRegistry(), clock=clock, sleep=lambda _s: None,
    )
    orch.ingest(Changeset().insert("edge", ("x", "y")))
    with pytest.raises(StaleViewError, match="pending"):
        orch.read("pair")
    # serve mode still answers (with the stale empty view).
    assert orch.read("pair", strict="serve").as_set() == set()


def test_read_validates_view_and_mode():
    orch = make_orchestrator()
    with pytest.raises(OrchestrationError, match="no node exports"):
        orch.read("nope")
    with pytest.raises(OrchestrationError, match="strict"):
        orch.read("tri", strict="maybe")


# --------------------------------------------------------------------------
# Graph construction and spec validation.
# --------------------------------------------------------------------------


def test_topological_order_and_cones():
    graph = DependencyGraph(NODES)
    assert list(graph.order) == ["hops", "sibling", "tris", "reach"]
    assert graph.cone("tris") == frozenset({"tris", "reach"})
    assert graph.cone("sibling") == frozenset({"sibling"})
    assert list(graph.upstream["tris"]) == ["hops"]


def test_cycle_is_rejected():
    with pytest.raises(OrchestrationError, match="cycle"):
        DependencyGraph(
            [
                ViewNode("a", "p(X) :- q(X)."),
                ViewNode("b", "q(X) :- p(X)."),
            ]
        )


def test_duplicate_export_is_rejected():
    with pytest.raises(OrchestrationError, match="export"):
        DependencyGraph(
            [
                ViewNode("a", "p(X) :- r(X)."),
                ViewNode("b", "p(X) :- s(X)."),
            ]
        )


def test_ingest_rejects_unknown_and_derived_relations():
    orch = make_orchestrator()
    with pytest.raises(OrchestrationError, match="no node consumes"):
        orch.ingest(Changeset().insert("ghost", ("x",)))
    with pytest.raises(OrchestrationError, match="no node consumes"):
        # hop is derived — it is not a source relation.
        orch.ingest(Changeset().insert("hop", ("x", "y")))


def test_from_spec_round_trip_and_validation():
    spec = {
        "views": [
            {"name": "hops", "source": "hop(X,Y) :- link(X,Z), link(Z,Y).",
             "target_lag": "downstream",
             "policy": {"max_attempts": 5, "probe_every": 3}},
            {"name": "tris", "source": "tri(X,Y) :- hop(X,Z), link2(Z,Y).",
             "target_lag": 9.0},
        ],
        "default_policy": {"max_attempts": 2},
    }
    orch = Orchestrator.from_spec(
        json.dumps(spec), metrics=MetricsRegistry(), sleep=lambda _s: None
    )
    assert orch.policy_of("hops").max_attempts == 5
    assert orch.policy_of("tris").max_attempts == 2
    assert orch.lags == {"hops": 9.0, "tris": 9.0}

    with pytest.raises(OrchestrationError, match="views"):
        Orchestrator.from_spec({"nodes": []})
    with pytest.raises(OrchestrationError, match="unknown view-spec"):
        Orchestrator.from_spec(
            {"views": [{"name": "a", "source": "p(X) :- q(X).",
                        "lag": 3}]}
        )
    with pytest.raises(ValueError, match="unknown policy"):
        Orchestrator.from_spec(
            {"views": [{"name": "a", "source": "p(X) :- q(X).",
                        "policy": {"retries": 9}}]}
        )


def test_view_node_and_policy_validation():
    with pytest.raises(OrchestrationError):
        ViewNode("bad", "p(X) :- q(X).", target_lag=-1.0)
    with pytest.raises(ValueError):
        RefreshPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RefreshPolicy(probe_every=0)
    with pytest.raises(ValueError):
        RefreshPolicy(timeout_seconds=0.0)


def test_timeout_policy_builds_a_guard_budget():
    orch = Orchestrator(
        [ViewNode("base", "pair(X,Y) :- edge(X,Y).")],
        policy=RefreshPolicy(timeout_seconds=30.0),
        metrics=MetricsRegistry(), sleep=lambda _s: None,
    )
    guard = orch.runners["base"].maintainer.guard
    assert guard.to_dict()["budget_enabled"] is True
    assert guard.meter.budget.deadline_seconds == 30.0


# --------------------------------------------------------------------------
# Health wiring and the oracle.
# --------------------------------------------------------------------------


def test_slo_fires_on_quarantined_refreshes():
    alerts = []
    from repro.obs.health import CallbackAlertSink

    orch = seeded_orchestrator()
    engines = orch.attach_health(
        [{"view": "tris", "objective": "error_rate", "target": 0.0,
          "compliance": 0.8, "fast_window": 1, "slow_window": 2,
          "burn_threshold": 1.5}],
        sinks=[CallbackAlertSink(alerts.append)],
    )
    assert set(engines) == {"tris"}
    orch.faults("tris").arm("count_merge", every_n=1)
    orch.ingest(Changeset().insert("link2", ("d", "f")))
    orch.tick()
    orch.tick()  # probe fails again; fast window saturates
    assert any(
        a["event"] == "fire" and a["view"] == "tris" for a in alerts
    )
    assert orch.status()["alerts_active"] >= 1


def test_attach_health_rejects_unknown_node():
    orch = make_orchestrator()
    with pytest.raises(OrchestrationError, match="unknown node"):
        orch.attach_health(
            [{"view": "ghost", "objective": "error_rate", "target": 0.0}]
        )


def test_check_convergence_skips_behind_nodes_instead_of_misfiring():
    orch = make_orchestrator()
    orch.ingest(SEED.copy())
    # Nothing has refreshed: every node either holds pending deltas or
    # sits downstream of one.  A full-log oracle comparison would
    # "diverge" on all of them — being behind is lag, not corruption,
    # so they must be skipped and named instead.
    behind = orch.check_convergence()
    assert set(behind) == {"hops", "tris", "reach", "sibling"}
    assert list(behind) == [n for n in orch.graph.order if n in set(behind)]
    orch.tick()
    assert orch.check_convergence() == ()


def test_check_convergence_flags_real_divergence():
    orch = seeded_orchestrator()
    orch.check_convergence()
    # Corrupt one node's materialization behind the scheduler's back.
    orch.runners["hops"].maintainer.relation(
        "hop", strict=False
    ).add(("zz", "zz"))
    with pytest.raises(DivergenceError, match="hop"):
        orch.check_convergence()


# --------------------------------------------------------------------------
# Status schema (positive + negative) and the dashboard section.
# --------------------------------------------------------------------------


def test_status_block_validates_and_nests_in_status_schema():
    orch = seeded_orchestrator()
    doc = orch.status()
    assert validate_orchestrator(doc) == []
    # And as the "orchestrator" block of the full status document.
    from repro.cli import Shell

    shell = Shell("hop(X,Y) :- link(X,Z), link(Z,Y).")
    full = shell._status_dict()
    full["orchestrator"] = doc
    assert validate_status(full) == []
    full["orchestrator"] = {"ticks": -1}
    assert validate_status(full)


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda d: d.pop("ticks"), "ticks"),
        (lambda d: d.__setitem__("ticks", -1), "ticks"),
        (lambda d: d.__setitem__("views", {}), "views"),
        (lambda d: d.__setitem__("bogus", 1), "unknown"),
        (lambda d: d.__setitem__("quarantined", ["ghost"]), "ghost"),
        (lambda d: d["views"]["hops"].__setitem__("state", "NAPPING"),
         "state"),
        (lambda d: d["views"]["hops"].__setitem__("retries", -2),
         "retries"),
        (lambda d: d["views"]["hops"].__setitem__("lag_seconds", -0.5),
         "lag_seconds"),
        (lambda d: d["views"]["hops"].__setitem__("target_lag", "soonish"),
         "target_lag"),
        (lambda d: d["views"]["hops"].__setitem__("effective_lag", -3),
         "effective_lag"),
        (lambda d: d["views"]["hops"].__setitem__("quarantined_by", "tris"),
         "quarantined_by"),
        (lambda d: d["views"]["hops"].__setitem__("last_error", 17),
         "last_error"),
        (lambda d: d["views"]["hops"].pop("pending"), "pending"),
    ],
)
def test_status_schema_negatives(mutate, fragment):
    doc = seeded_orchestrator().status()
    mutate(doc)
    problems = validate_orchestrator(doc)
    assert problems and any(fragment in p for p in problems)


def test_orchestrator_lines_render_states_and_blockers():
    orch = seeded_orchestrator()
    orch.faults("tris").arm("count_merge", every_n=1)
    orch.ingest(Changeset().insert("link2", ("d", "f")))
    orch.tick()
    frame = "\n".join(orchestrator_lines(orch.status(), color=False))
    assert "QUARANTINED" in frame
    assert "2 quarantined" in frame  # tris and its consumer reach
    assert "\x1b[" not in frame
    colored = "\n".join(orchestrator_lines(orch.status(), color=True))
    assert "\x1b[" in colored


# --------------------------------------------------------------------------
# The shared backoff schedule.
# --------------------------------------------------------------------------


class TestBackoff:
    def test_deterministic_exponential_without_jitter(self):
        backoff = Backoff(0.1, factor=2.0, jitter=0.0)
        assert backoff.delay(1) == pytest.approx(0.1)
        assert backoff.delay(2) == pytest.approx(0.2)
        assert backoff.delay(4) == pytest.approx(0.8)

    def test_cap_applies_after_growth(self):
        backoff = Backoff(0.1, factor=10.0, jitter=0.0, max_seconds=0.5)
        assert backoff.delay(3) == pytest.approx(0.5)

    def test_jitter_widens_pause_upward_only(self):
        pauses = []
        backoff = Backoff(
            1.0, factor=1.0, jitter=0.5, seed=42, sleep=pauses.append
        )
        for attempt in range(1, 50):
            backoff.pause(attempt)
        assert all(1.0 <= pause <= 1.5 for pause in pauses)
        assert len(set(pauses)) > 1  # it really is jittered

    def test_pause_sleeps_the_delay_and_skips_zero(self):
        pauses = []
        backoff = Backoff(0.25, jitter=0.0, sleep=pauses.append)
        assert backoff.pause(1) == pytest.approx(0.25)
        assert pauses == [0.25]
        silent = Backoff(0.0, jitter=0.0, sleep=pauses.append)
        assert silent.pause(1) == 0.0
        assert pauses == [0.25]  # zero delay: no sleep call at all

    def test_zero_delay_draws_no_randomness(self):
        rng = random.Random(7)
        expected_next = random.Random(7).random()
        backoff = Backoff(0.0, jitter=0.5, rng=rng, sleep=lambda _s: None)
        backoff.pause(1)
        assert rng.random() == expected_next  # stream untouched

    def test_preview_matches_delay(self):
        backoff = Backoff(0.1, factor=3.0, jitter=0.0)
        assert backoff.preview(3) == [
            pytest.approx(0.1), pytest.approx(0.3), pytest.approx(0.9)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            Backoff(-1.0)
        with pytest.raises(ValueError):
            Backoff(1.0, factor=0.5)
        with pytest.raises(ValueError):
            Backoff(1.0, jitter=-0.1)
        with pytest.raises(ValueError):
            Backoff(1.0, max_seconds=-2.0)
        with pytest.raises(ValueError):
            Backoff(1.0, rng=random.Random(0), seed=1)


# --------------------------------------------------------------------------
# The orchestrate shell.
# --------------------------------------------------------------------------


class TestOrchestrateShell:
    SPEC = json.dumps(
        {
            "views": [
                {"name": "hops",
                 "source": "hop(X,Y) :- link(X,Z), link(Z,Y)."},
                {"name": "tris",
                 "source": "tri(X,Y) :- hop(X,Z), link2(Z,Y)."},
            ]
        }
    )

    def make_shell(self, **kwargs):
        from repro.cli import OrchestrateShell

        return OrchestrateShell(self.SPEC, **kwargs)

    def test_stage_commit_tick_read_check(self):
        shell = self.make_shell()
        assert "staged" in shell.execute("+ link(a, b)")
        shell.execute("+ link(b, c)")
        shell.execute("+ link2(c, d)")
        assert "ingested" in shell.execute("commit")
        assert "nothing staged" in shell.execute("commit")
        assert "refreshed ['hops', 'tris']" in shell.execute("tick")
        assert "tri('a', 'd')" in shell.execute("read tri")
        assert "consistent" in shell.execute("check")

    def test_status_json_is_schema_valid(self):
        shell = self.make_shell()
        doc = json.loads(shell.execute("status --json"))
        assert validate_orchestrator(doc) == []
        assert "hops" in shell.execute("status")

    def test_suspend_resume_and_errors(self):
        shell = self.make_shell()
        assert "tris" in shell.execute("suspend tris")
        assert "tris" in shell.execute("resume tris")
        assert shell.execute("error-me").startswith("unknown command")
        assert shell.execute("read ghost").startswith("error:")
        assert shell.execute("revive hops").startswith("error:")
        assert shell.execute("+ p(X)").startswith("error:")

    def test_quit_and_help(self):
        shell = self.make_shell()
        assert "commands" in shell.execute("help")
        assert shell.execute("quit") == "bye"
        assert shell.done
