"""Tests for count-aware rule evaluation: joins, negation, aggregates."""

import pytest

from repro.datalog.ast import Comparison, atom, rule
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Constant, Variable
from repro.errors import EvaluationError
from repro.eval.rule_eval import (
    EvalContext,
    Resolver,
    evaluate_rule,
    match_args,
    plan_body,
)
from repro.storage.database import Database
from repro.storage.relation import CountedRelation, relation_from_rows


def _context(relations, unit_counts=None):
    return EvalContext(Resolver(None, dict(relations)), unit_counts)


class TestMatchArgs:
    def test_binds_bare_variables(self):
        binding = match_args(atom("p", "X", "Y").args, ("a", "b"), {})
        assert binding == {"X": "a", "Y": "b"}

    def test_repeated_variable_must_agree(self):
        args = atom("p", "X", "X").args
        assert match_args(args, ("a", "a"), {}) == {"X": "a"}
        assert match_args(args, ("a", "b"), {}) is None

    def test_existing_binding_checked(self):
        args = atom("p", "X").args
        assert match_args(args, ("a",), {"X": "b"}) is None
        assert match_args(args, ("a",), {"X": "a"}) == {"X": "a"}

    def test_constant_mismatch(self):
        args = atom("p", "a").args
        assert match_args(args, ("b",), {}) is None

    def test_expression_argument_evaluated(self):
        args = parse_rule("h(Y) :- p(X + 1), q(X).").body[0].args
        assert match_args(args, (6,), {"X": 5}) is not None
        assert match_args(args, (7,), {"X": 5}) is None

    def test_length_mismatch(self):
        assert match_args(atom("p", "X").args, ("a", "b"), {}) is None


class TestJoins:
    def test_counts_multiply_and_sum(self):
        """Section 3: join multiplies counts; ⊎ accumulates per head row."""
        link = CountedRelation("link")
        link.add(("a", "b"), 2)
        link.add(("b", "c"), 3)
        hop_rule = parse_rule("hop(X, Y) :- link(X, Z), link(Z, Y).")
        result = evaluate_rule(hop_rule, _context({"link": link}))
        assert result.count(("a", "c")) == 6

    def test_unit_count_policy(self):
        link = CountedRelation("link")
        link.add(("a", "b"), 2)
        link.add(("b", "c"), 3)
        hop_rule = parse_rule("hop(X, Y) :- link(X, Z), link(Z, Y).")
        result = evaluate_rule(
            hop_rule, _context({"link": link}, unit_counts=lambda _n: True)
        )
        assert result.count(("a", "c")) == 1

    def test_negative_counts_flow_through(self):
        link = relation_from_rows("link", [("a", "b"), ("b", "c")])
        delta = CountedRelation("Δ")
        delta.add(("a", "b"), -1)
        variant = parse_rule("hop(X, Y) :- delta(X, Z), link(Z, Y).")
        result = evaluate_rule(variant, _context({"delta": delta, "link": link}))
        assert result.count(("a", "c")) == -1

    def test_multiple_derivations_counted(self):
        """Example 1.1: hop(a, c) has two derivations."""
        link = relation_from_rows(
            "link", [("a", "b"), ("b", "c"), ("b", "e"), ("a", "d"), ("d", "c")]
        )
        hop_rule = parse_rule("hop(X, Y) :- link(X, Z), link(Z, Y).")
        result = evaluate_rule(hop_rule, _context({"link": link}))
        assert result.to_dict() == {("a", "c"): 2, ("a", "e"): 1}

    def test_missing_relation_is_empty(self):
        hop_rule = parse_rule("hop(X, Y) :- nothing(X, Y).")
        assert len(evaluate_rule(hop_rule, _context({}))) == 0

    def test_constant_argument_filters(self):
        link = relation_from_rows("link", [("a", "b"), ("c", "d")])
        r = parse_rule("from_a(Y) :- link(a, Y).")
        result = evaluate_rule(r, _context({"link": link}))
        assert result.to_dict() == {("b",): 1}

    def test_head_expression_computed(self):
        link = relation_from_rows("link", [("a", "b", 1), ("b", "c", 2)])
        r = parse_rule("hop(X, Y, C1 + C2) :- link(X, Z, C1), link(Z, Y, C2).")
        result = evaluate_rule(r, _context({"link": link}))
        assert result.to_dict() == {("a", "c", 3): 1}

    def test_fact_rule(self):
        result = evaluate_rule(parse_rule("p(1, 2)."), _context({}))
        assert result.to_dict() == {(1, 2): 1}


class TestNegation:
    def test_negated_literal_filters(self):
        t = relation_from_rows("t", [("a", "b"), ("c", "d")])
        h = relation_from_rows("h", [("a", "b")])
        r = parse_rule("only(X, Y) :- t(X, Y), not h(X, Y).")
        result = evaluate_rule(r, _context({"t": t, "h": h}))
        assert result.to_dict() == {("c", "d"): 1}

    def test_negation_is_set_based(self):
        """A positive count of any size means 'present' (Example 6.1)."""
        t = relation_from_rows("t", [("a", "b")])
        h = CountedRelation("h")
        h.add(("a", "b"), 5)
        r = parse_rule("only(X, Y) :- t(X, Y), not h(X, Y).")
        assert len(evaluate_rule(r, _context({"t": t, "h": h}))) == 0

    def test_negation_contributes_count_one(self):
        t = CountedRelation("t")
        t.add(("a", "b"), 3)
        r = parse_rule("only(X, Y) :- t(X, Y), not h(X, Y).")
        result = evaluate_rule(r, _context({"t": t}))
        assert result.count(("a", "b")) == 3  # 3 × 1


class TestComparisons:
    def test_filter(self):
        q = relation_from_rows("q", [("a", 1), ("b", 9)])
        r = parse_rule("small(X) :- q(X, N), N < 5.")
        result = evaluate_rule(r, _context({"q": q}))
        assert result.to_dict() == {("a",): 1}

    def test_assignment_binds(self):
        q = relation_from_rows("q", [(3,)])
        r = parse_rule("p(X, Y) :- q(X), Y = X * 10.")
        result = evaluate_rule(r, _context({"q": q}))
        assert result.to_dict() == {(3, 30): 1}

    def test_assignment_reversed_sides(self):
        q = relation_from_rows("q", [(3,)])
        r = parse_rule("p(X, Y) :- q(X), X * 10 = Y.")
        result = evaluate_rule(r, _context({"q": q}))
        assert result.to_dict() == {(3, 30): 1}

    def test_equality_check_both_bound(self):
        q = relation_from_rows("q", [(3, 3), (3, 4)])
        r = parse_rule("p(X) :- q(X, Y), X = Y.")
        result = evaluate_rule(r, _context({"q": q}))
        assert result.to_dict() == {(3,): 1}

    def test_incomparable_types_raise(self):
        q = relation_from_rows("q", [("a",)])
        r = parse_rule("p(X) :- q(X), X < 5.")
        with pytest.raises(EvaluationError):
            evaluate_rule(r, _context({"q": q}))


class TestAggregateSubgoal:
    def test_min_groupby(self):
        hop = relation_from_rows(
            "hop", [("a", "c", 3), ("a", "c", 5), ("a", "e", 6)]
        )
        r = parse_rule(
            "m(S, D, M) :- GROUPBY(hop(S, D, C), [S, D], M = MIN(C))."
        )
        result = evaluate_rule(r, _context({"hop": hop}))
        assert result.to_dict() == {("a", "c", 3): 1, ("a", "e", 6): 1}

    def test_sum_respects_multiplicities(self):
        sales = CountedRelation("sales")
        sales.add(("east", 10), 2)  # two copies
        r = parse_rule("t(R, M) :- GROUPBY(sales(R, C), [R], M = SUM(C)).")
        result = evaluate_rule(r, _context({"sales": sales}))
        assert result.to_dict() == {("east", 20): 1}

    def test_sum_unit_policy_treats_rows_once(self):
        sales = CountedRelation("sales")
        sales.add(("east", 10), 2)
        r = parse_rule("t(R, M) :- GROUPBY(sales(R, C), [R], M = SUM(C)).")
        result = evaluate_rule(
            r, _context({"sales": sales}, unit_counts=lambda _n: True)
        )
        assert result.to_dict() == {("east", 10): 1}

    def test_aggregate_joined_with_other_subgoals(self):
        hop = relation_from_rows("hop", [("a", "c", 3), ("b", "c", 9)])
        keep = relation_from_rows("keep", [("a",)])
        r = parse_rule(
            "m(S, M) :- keep(S), GROUPBY(hop(S2, D, C), [S2], M = MIN(C)), "
            "S = S2."
        )
        result = evaluate_rule(r, _context({"hop": hop, "keep": keep}))
        assert result.to_dict() == {("a", 3): 1}

    def test_empty_group_relation(self):
        r = parse_rule("m(S, M) :- GROUPBY(hop(S, C), [S], M = SUM(C)).")
        assert len(evaluate_rule(r, _context({}))) == 0


class TestPlanner:
    def test_filters_scheduled_after_binders(self):
        body = parse_rule("p(X) :- q(X, Y), Y < 3.").body
        plan = plan_body(body)
        assert isinstance(plan[0], type(body[0]))
        assert isinstance(plan[1], Comparison)

    def test_seed_pinned_first(self):
        body = parse_rule("p(X, Y) :- a(X, Z), b(Z, Y).").body
        plan = plan_body(body, seed=1)
        assert plan[0].predicate == "b"

    def test_negation_waits_for_bindings(self):
        body = parse_rule("p(X) :- not bad(X), q(X).").body
        plan = plan_body(body)
        assert plan[0].predicate == "q"
        assert plan[1].negated

    def test_smaller_relation_preferred_with_context(self):
        big = relation_from_rows("big", [(i, i + 1) for i in range(100)])
        small = relation_from_rows("small", [(1, 2)])
        ctx = _context({"big": big, "small": small})
        body = parse_rule("p(X, Y) :- big(X, Z), small(Z, Y).").body
        plan = plan_body(body, ctx=ctx)
        assert plan[0].predicate == "small"

    def test_unschedulable_body_raises(self):
        body = parse_rule("p(X) :- q(X), not r(X, Y), s(Y + 1).").body
        with pytest.raises(EvaluationError, match="no safe evaluation order"):
            plan_body(body)


class TestResolver:
    def test_overrides_shadow_base(self):
        db = Database()
        db.insert("p", ("base",))
        override = relation_from_rows("p", [("over",)])
        resolver = Resolver(db, {"p": override})
        assert resolver.relation("p").as_set() == {("over",)}

    def test_layered_resolution(self):
        inner = Resolver(None, {"p": relation_from_rows("p", [("x",)])})
        outer = Resolver(inner)
        assert outer.relation("p").as_set() == {("x",)}

    def test_missing_resolves_empty(self):
        assert len(Resolver(None).relation("ghost")) == 0

    def test_bind(self):
        resolver = Resolver(None)
        resolver.bind("p", relation_from_rows("p", [("a",)]))
        assert resolver.relation("p").as_set() == {("a",)}
