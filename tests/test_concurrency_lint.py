"""The RV3xx static concurrency battery and the devlint tree walker."""

import json

import pytest

from repro.analysis.concurrency import (
    CONCURRENCY_CODES,
    check_source,
    unused_imports,
)
from repro.analysis.devlint import iter_modules, lint_self
from repro.analysis.diagnostics import (
    CODES,
    Severity,
    render_json,
    suppress,
    validate_document,
)
from repro.analysis.sanitize_smoke import (
    BAD_EXPECTED_ERRORS,
    BAD_EXPECTED_SPANS,
    BAD_FIXTURE,
)


class TestSeededFixture:
    def test_every_seeded_defect_is_reported(self):
        found = check_source(BAD_FIXTURE, module="repro.cache.torn")
        codes = {d.code for d in found}
        assert set(BAD_EXPECTED_SPANS) <= codes

    def test_span_accuracy_on_the_seeded_fixture(self):
        found = check_source(BAD_FIXTURE, module="repro.cache.torn")
        by_code = {}
        for diagnostic in found:
            by_code.setdefault(diagnostic.code, diagnostic)
        for code, line in BAD_EXPECTED_SPANS.items():
            span = by_code[code].span
            assert span is not None, code
            assert span.line == line, (code, str(span))
            assert span.column >= 1, code

    def test_error_severity_subset(self):
        found = check_source(BAD_FIXTURE, module="repro.cache.torn")
        errors = {
            d.code for d in found if d.severity >= Severity.ERROR
        }
        assert errors == BAD_EXPECTED_ERRORS

    def test_catalogue_covers_every_emittable_code(self):
        for code in CONCURRENCY_CODES:
            assert code in CODES
        found = check_source(BAD_FIXTURE, module="repro.cache.torn")
        for diagnostic in found:
            assert diagnostic.code in CODES


class TestWriteDiscipline:
    def test_storage_engine_modules_are_exempt(self):
        source = "def f(rel):\n    rel._rows = {}\n"
        assert check_source(source, module="repro.storage.mvcc") == []
        flagged = check_source(source, module="repro.core.maintenance")
        assert [d.code for d in flagged] == ["RV301"]

    def test_fresh_local_writes_are_allowed(self):
        source = (
            "def f():\n"
            "    read = SnapshotRead('v')\n"
            "    read._rows = {}\n"
            "    read.epoch = 3\n"
        )
        assert check_source(source, module="repro.core.maintenance") == []

    def test_parameter_writes_are_flagged(self):
        source = (
            "def f(report):\n"
            "    report.epoch = 9\n"
        )
        flagged = check_source(source, module="repro.core.maintenance")
        assert [d.code for d in flagged] == ["RV302"]

    def test_init_writes_are_allowed(self):
        source = (
            "class R:\n"
            "    def __init__(self):\n"
            "        self._rows = {}\n"
            "        self.epoch = 0\n"
        )
        assert check_source(source, module="repro.obs.metrics") == []

    def test_subscript_and_del_writes_are_flagged(self):
        source = (
            "def f(rel):\n"
            "    rel._rows[(1,)] = 2\n"
            "    del rel._pending[(1,)]\n"
        )
        codes = [
            d.code
            for d in check_source(source, module="repro.eval.seminaive")
        ]
        assert codes == ["RV301", "RV301"]

    def test_smoke_modules_may_inject_violations(self):
        source = "def tear(rel):\n    rel._rows[(9, 9)] = 1\n"
        assert check_source(
            source, module="repro.analysis.sanitize_smoke"
        ) == []


class TestLockDiscipline:
    def test_blocking_call_under_lock(self):
        source = (
            "import os\n"
            "def f(self, handle):\n"
            "    with self._lock:\n"
            "        os.fsync(handle)\n"
        )
        flagged = check_source(source, module="repro.storage.journal")
        assert [d.code for d in flagged] == ["RV303"]
        assert flagged[0].span.line == 4

    def test_acquire_with_release_in_finally_is_clean(self):
        source = (
            "def f(self):\n"
            "    self._lock.acquire()\n"
            "    try:\n"
            "        pass\n"
            "    finally:\n"
            "        self._lock.release()\n"
        )
        assert check_source(source, module="repro.obs.metrics") == []

    def test_nested_distinct_locks_warn(self):
        source = (
            "def f(self, other):\n"
            "    with self._lock:\n"
            "        with other._lock:\n"
            "            pass\n"
        )
        flagged = check_source(source, module="repro.obs.metrics")
        assert [d.code for d in flagged] == ["RV307"]

    def test_locked_suffix_methods_assume_caller_holds_lock(self):
        source = (
            "import threading\n"
            "class M:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "        self.count = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.count += 1\n"
            "    def _bump_locked(self):\n"
            "        self.count += 1\n"
        )
        assert check_source(source, module="repro.storage.mvcc") == []

    def test_mixed_guarded_unguarded_attribute_warns(self):
        source = (
            "import threading\n"
            "class M:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.count += 1\n"
            "    def reset(self):\n"
            "        self.count = 0\n"
        )
        flagged = check_source(source, module="repro.obs.metrics")
        assert [d.code for d in flagged] == ["RV306"]
        assert flagged[0].span.line == 10


class TestLayering:
    def test_upward_module_scope_import_is_flagged(self):
        source = "from repro.obs.health import HealthEngine\n"
        flagged = check_source(source, module="repro.storage.mvcc")
        assert [d.code for d in flagged] == ["RV305"]

    def test_seam_modules_are_importable_from_anywhere(self):
        source = "from repro.obs.metrics import get_default_registry\n"
        assert check_source(source, module="repro.storage.mvcc") == []

    def test_downward_imports_are_clean(self):
        source = "from repro.storage.relation import CountedRelation\n"
        assert check_source(source, module="repro.core.maintenance") == []

    def test_smoke_modules_are_exempt(self):
        source = "from repro.core.maintenance import ViewMaintainer\n"
        assert check_source(
            source, module="repro.storage.mvcc_smoke"
        ) == []


class TestGlobalsAndThreads:
    def test_global_rebinding_is_info(self):
        source = (
            "_registry = None\n"
            "def set_registry(r):\n"
            "    global _registry\n"
            "    _registry = r\n"
        )
        flagged = check_source(source, module="repro.obs.metrics")
        assert [d.code for d in flagged] == ["RV309"]
        assert flagged[0].severity == Severity.INFO

    def test_joined_thread_is_clean(self):
        source = (
            "import threading\n"
            "def f():\n"
            "    t = threading.Thread(target=f)\n"
            "    t.start()\n"
            "    t.join()\n"
        )
        assert check_source(source, module="repro.obs.metrics") == []

    def test_unjoined_nondaemon_thread_is_info(self):
        source = (
            "import threading\n"
            "def f():\n"
            "    t = threading.Thread(target=f)\n"
            "    t.start()\n"
        )
        flagged = check_source(source, module="repro.obs.metrics")
        assert [d.code for d in flagged] == ["RV308"]


class TestUnusedImports:
    def test_unused_import_flagged_with_position(self):
        source = "import os\nimport sys\nprint(sys.argv)\n"
        flagged = unused_imports(source, module="repro.testing")
        assert [d.code for d in flagged] == ["RV220"]
        assert "'os'" in flagged[0].message
        assert flagged[0].span.line == 1

    def test_all_reexports_count_as_used(self):
        source = (
            "from repro.errors import ReproError\n"
            "__all__ = ['ReproError']\n"
        )
        assert unused_imports(source, module="repro") == []

    def test_string_annotations_count_as_used(self):
        source = (
            "from typing import Optional\n"
            "def f(x: 'Optional[int]'):\n"
            "    return x\n"
        )
        assert unused_imports(source, module="repro.testing") == []

    def test_future_imports_are_exempt(self):
        source = "from __future__ import annotations\n"
        assert unused_imports(source, module="repro.testing") == []


class TestSelfLint:
    def test_real_tree_has_zero_error_severity_rv3xx(self):
        report = lint_self()
        hard = [
            d
            for d in report.at_severity(Severity.ERROR)
            if d.code.startswith("RV3")
        ]
        assert hard == [], [
            f"{d.code}@{d.location()}: {d.message}" for d in hard
        ]

    def test_real_tree_has_zero_unused_imports(self):
        report = lint_self()
        assert [d for d in report.diagnostics if d.code == "RV220"] == []

    def test_every_finding_carries_its_file(self):
        report = lint_self()
        for diagnostic in report.diagnostics:
            assert diagnostic.path, diagnostic.code
            assert diagnostic.path.endswith(".py")

    def test_iter_modules_names_are_dotted(self):
        pairs = list(iter_modules())
        modules = {module for _path, module in pairs}
        assert "repro.storage.mvcc" in modules
        assert "repro.analysis.concurrency" in modules
        assert all(m.startswith("repro") for m in modules)


class TestSuppressionJsonInterplay:
    """Suppressed codes must vanish from JSON output and exit codes."""

    def test_suppressed_codes_absent_from_json_document(self):
        found = check_source(BAD_FIXTURE, module="repro.cache.torn")
        assert any(d.code == "RV303" for d in found)
        kept = suppress(found, ["RV303"])
        document = json.loads(render_json(kept, "torn.py"))
        validate_document(document)
        codes = {entry["code"] for entry in document["diagnostics"]}
        assert "RV303" not in codes
        assert document["summary"]["warnings"] == sum(
            1 for d in kept if d.severity == Severity.WARNING
        )

    def test_suppressing_all_errors_zeroes_the_exit_code(self):
        report = lint_self(suppress_codes=["RV309"])
        assert report.exit_code(Severity.INFO) == 0
        assert all(d.code != "RV309" for d in report.diagnostics)

    def test_self_lint_report_renders_schema_valid_json(self):
        report = lint_self()
        document = report.to_dict()
        for entry in document["diagnostics"]:
            assert entry["code"] in CODES


class TestCliSelfLint:
    def test_lint_self_flag(self, capsys):
        from repro.cli import lint_main

        exit_code = lint_main(["--self", "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        validate_document(document)
        assert exit_code == 0

    def test_lint_self_suppression_drops_codes(self, capsys):
        from repro.cli import lint_main

        lint_main(["--self", "--format", "json", "--suppress", "RV309"])
        document = json.loads(capsys.readouterr().out)
        assert all(
            entry["code"] != "RV309"
            for entry in document["diagnostics"]
        )

    def test_lint_self_rejects_program_argument(self, capsys):
        from repro.cli import lint_main

        assert lint_main(["--self", "x.dl"]) == 2

    def test_lint_requires_program_without_self(self):
        from repro.cli import lint_main

        with pytest.raises(SystemExit):
            lint_main([])
