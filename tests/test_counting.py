"""Tests for the counting algorithm (Algorithm 4.1, Sections 4–6)."""

import random

import pytest

from repro.baselines.recount import true_view_deltas
from repro.core.counting import delta_neg_relation
from repro.core.maintenance import ViewMaintainer
from repro.datalog.parser import parse_program
from repro.errors import MaintenanceError
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.storage.relation import CountedRelation, relation_from_rows
from repro.workloads import mixed_batch, random_graph

from conftest import (
    EXAMPLE_4_2_LINKS,
    HOP_SRC,
    HOP_TRI_SRC,
    ONLY_TRI_SRC,
    database_with,
)


def _maintainer(source, edges, **kwargs):
    return ViewMaintainer.from_source(
        source, database_with(edges), **kwargs
    ).initialize()


class TestBasics:
    def test_single_deletion_example_1_1(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        report = maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert maintainer.relation("hop").to_dict() == {("a", "c"): 1}
        assert report.delta("hop").to_dict() == {
            ("a", "c"): -1, ("a", "e"): -1,
        }

    def test_insertion(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        maintainer.apply(Changeset().insert("link", ("e", "f")))
        assert maintainer.relation("hop").count(("b", "f")) == 1

    def test_update_helper(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        maintainer.apply(Changeset().update("link", ("a", "b"), ("a", "x")))
        assert ("a", "c") in maintainer.relation("hop")
        assert maintainer.relation("hop").count(("a", "c")) == 1

    def test_base_relation_updated_too(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert ("a", "b") not in example_1_1_db.relation("link")

    def test_empty_changeset_no_op(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        report = maintainer.apply(Changeset())
        assert report.total_changes() == 0

    def test_deleting_missing_row_rejected(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        with pytest.raises(MaintenanceError):
            maintainer.apply(Changeset().delete("link", ("no", "pe")))

    def test_changing_derived_relation_rejected(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        with pytest.raises(MaintenanceError, match="derived"):
            maintainer.apply(Changeset().insert("hop", ("a", "z")))

    def test_irrelevant_base_change_cheap(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        report = maintainer.apply(Changeset().insert("unrelated", ("q",)))
        assert report.total_changes() == 0


class TestPaperTraces:
    """Example 4.2 (duplicate semantics) and Example 5.1 (set)."""

    CHANGES = (
        Changeset()
        .delete("link", ("a", "b"))
        .insert("link", ("d", "f"))
        .insert("link", ("a", "f"))
    )

    @pytest.mark.parametrize("mode", ["expansion", "factored"])
    def test_example_4_2(self, mode):
        maintainer = _maintainer(
            HOP_TRI_SRC,
            EXAMPLE_4_2_LINKS,
            semantics="duplicate",
            counting_mode=mode,
        )
        report = maintainer.apply(self.CHANGES.copy())
        assert report.delta("hop").to_dict() == {
            ("a", "c"): -1, ("a", "f"): 1, ("a", "g"): 1, ("d", "g"): 1,
        }
        assert maintainer.relation("hop").to_dict() == {
            ("a", "c"): 1, ("a", "f"): 1, ("a", "g"): 1,
            ("d", "g"): 1, ("d", "h"): 1, ("b", "h"): 1,
        }
        assert report.delta("tri_hop").to_dict() == {
            ("a", "h"): -1, ("a", "g"): 1,
        }
        assert maintainer.relation("tri_hop").to_dict() == {
            ("a", "h"): 1, ("a", "g"): 1,
        }

    def test_example_5_1_set_optimization(self):
        maintainer = _maintainer(HOP_TRI_SRC, EXAMPLE_4_2_LINKS)
        report = maintainer.apply(self.CHANGES.copy())
        cascaded = report.counting.cascaded["hop"]
        # hop(a,c) lost a derivation but stays in the set: not cascaded.
        assert cascaded.to_dict() == {
            ("a", "f"): 1, ("a", "g"): 1, ("d", "g"): 1,
        }
        # Consequently tri_hop never sees (a, h, −1).
        assert report.delta("tri_hop").to_dict() == {("a", "g"): 1}
        assert report.counting.stats.cascades_suppressed == 1


class TestModesAgree:
    @pytest.mark.parametrize("semantics", ["set", "duplicate"])
    def test_factored_equals_expansion(self, semantics):
        edges = random_graph(40, 140, seed=1)
        changes, _ = mixed_batch("link", edges, 5, 5, node_count=40, seed=2)
        results = {}
        for mode in ("expansion", "factored"):
            maintainer = _maintainer(
                ONLY_TRI_SRC if semantics == "set" else HOP_TRI_SRC,
                edges,
                semantics=semantics,
                counting_mode=mode,
            )
            report = maintainer.apply(changes.copy())
            results[mode] = {
                view: maintainer.relation(view).to_dict()
                for view in maintainer.view_names()
            }
        assert results["expansion"] == results["factored"]


class TestTheorem41:
    """The computed delta equals countⁿ(t) − count(t), exactly."""

    @pytest.mark.parametrize("semantics", ["set", "duplicate"])
    def test_randomized_exactness(self, semantics):
        program = parse_program(HOP_TRI_SRC)
        for seed in range(5):
            edges = random_graph(30, 110, seed=seed)
            changes, _ = mixed_batch(
                "link", edges, 4, 4, node_count=30, seed=seed + 50
            )
            db = database_with(edges)
            truth = true_view_deltas(program, db, changes, semantics)
            maintainer = ViewMaintainer.from_source(
                HOP_TRI_SRC, db, semantics=semantics
            ).initialize()
            report = maintainer.apply(changes.copy())
            for view in ("hop", "tri_hop"):
                expected = truth[view].to_dict() if view in truth else {}
                assert report.delta(view).to_dict() == expected, (
                    f"seed={seed} view={view}"
                )

    def test_lemma_4_1_no_negative_counts_stored(self):
        edges = random_graph(25, 90, seed=9)
        maintainer = _maintainer(HOP_TRI_SRC, edges)
        changes, _ = mixed_batch("link", edges, 10, 0, node_count=25, seed=10)
        maintainer.apply(changes)
        for view in maintainer.view_names():
            maintainer.relation(view).assert_nonnegative()


class TestNegation:
    def test_deletion_makes_negation_true(self, example_6_1_db):
        maintainer = ViewMaintainer.from_source(
            ONLY_TRI_SRC, example_6_1_db
        ).initialize()
        # Deleting link(a,b) kills hop(a,d)'s derivations through b... it
        # has another via e; delete both supports.
        maintainer.apply(
            Changeset().delete("link", ("a", "b")).delete("link", ("a", "e"))
        )
        maintainer.consistency_check()

    def test_insertion_makes_negation_false(self, example_6_1_db):
        maintainer = ViewMaintainer.from_source(
            ONLY_TRI_SRC, example_6_1_db
        ).initialize()
        # Inserting a 2-link path a→k removes (a,k) from only_tri_hop.
        maintainer.apply(Changeset().insert("link", ("a", "h")))
        assert ("a", "k") not in maintainer.relation("only_tri_hop")
        maintainer.consistency_check()

    def test_randomized_negation_consistency(self):
        for seed in range(5):
            edges = random_graph(20, 60, seed=seed)
            maintainer = _maintainer(ONLY_TRI_SRC, edges)
            changes, _ = mixed_batch(
                "link", edges, 3, 3, node_count=20, seed=seed + 30
            )
            maintainer.apply(changes)
            maintainer.consistency_check()

    def test_delta_neg_relation_duplicate_mode(self):
        """Definition 6.1 on real counts."""
        old = CountedRelation("q")
        old.add(("gone",), 1)
        old.add(("shrunk",), 2)
        delta = CountedRelation("Δq")
        delta.add(("gone",), -1)     # leaves the set → Δ¬ = +1
        delta.add(("shrunk",), -1)   # count 2→1, still present → nothing
        delta.add(("new",), 1)       # enters the set → Δ¬ = −1
        result = delta_neg_relation(old, delta)
        assert result.to_dict() == {("gone",): 1, ("new",): -1}


class TestAggregation:
    MIN_SRC = """
    hop(S, D, C1 + C2) :- link(S, I, C1), link(I, D, C2).
    min_cost_hop(S, D, M) :- GROUPBY(hop(S, D, C), [S, D], M = MIN(C)).
    """
    LINKS = [("a", "b", 1), ("b", "c", 2), ("b", "e", 5), ("a", "d", 2),
             ("d", "c", 1)]

    def test_example_6_2_initialization(self):
        maintainer = _maintainer(self.MIN_SRC, self.LINKS)
        assert maintainer.relation("min_cost_hop").as_set() == {
            ("a", "c", 3), ("a", "e", 6),
        }

    def test_insert_improves_minimum(self):
        maintainer = _maintainer(self.MIN_SRC, self.LINKS)
        report = maintainer.apply(
            Changeset().insert("link", ("a", "x", 1)).insert(
                "link", ("x", "c", 1))
        )
        assert maintainer.relation("min_cost_hop").count(("a", "c", 2)) == 1
        assert ("a", "c", 3) not in maintainer.relation("min_cost_hop")
        delta = report.delta("min_cost_hop").to_dict()
        assert delta[("a", "c", 3)] == -1
        assert delta[("a", "c", 2)] == 1
        maintainer.consistency_check()

    def test_insert_not_improving_minimum_changes_nothing(self):
        maintainer = _maintainer(self.MIN_SRC, self.LINKS)
        report = maintainer.apply(
            Changeset().insert("link", ("a", "y", 9)).insert(
                "link", ("y", "c", 9))
        )
        assert ("a", "c", 3) in maintainer.relation("min_cost_hop")
        assert ("a", "c", 18) not in maintainer.relation("min_cost_hop")
        maintainer.consistency_check()

    def test_delete_extremum_recomputes_group(self):
        maintainer = _maintainer(self.MIN_SRC, self.LINKS)
        maintainer.apply(Changeset().delete("link", ("a", "b", 1)))
        # Only path a→c is now via d with cost 3; a→e disappears.
        assert maintainer.relation("min_cost_hop").as_set() == {("a", "c", 3)}
        maintainer.consistency_check()

    def test_group_disappears(self):
        maintainer = _maintainer(self.MIN_SRC, self.LINKS)
        maintainer.apply(
            Changeset().delete("link", ("b", "e", 5))
        )
        assert ("a", "e", 6) not in maintainer.relation("min_cost_hop")
        maintainer.consistency_check()

    def test_randomized_aggregate_consistency(self):
        rng = random.Random(77)
        for seed in range(4):
            raw = random_graph(15, 45, seed=seed)
            edges = [(a, b, rng.randint(1, 9)) for a, b in raw]
            maintainer = _maintainer(self.MIN_SRC, edges)
            victims = rng.sample(edges, 3)
            changes = Changeset()
            for victim in victims:
                changes.delete("link", victim)
            changes.insert("link", (0, 1, rng.randint(1, 9)))
            maintainer.apply(changes)
            maintainer.consistency_check()


class TestStats:
    def test_stats_populated(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        report = maintainer.apply(Changeset().delete("link", ("a", "b")))
        stats = report.counting.stats
        assert stats.rules_fired >= 1
        assert stats.variants_evaluated >= 1
        assert stats.seconds > 0
