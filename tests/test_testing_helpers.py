"""Tests for the public testing utilities (repro.testing)."""

import pytest

from repro.storage.changeset import Changeset
from repro.testing import (
    assert_counting_exact,
    assert_maintains_consistently,
    soak,
)

from conftest import HOP_TRI_SRC, TC_SRC, database_with, EXAMPLE_1_1_LINKS


class TestAssertCountingExact:
    def test_passes_on_correct_maintenance(self):
        db = database_with(EXAMPLE_1_1_LINKS)
        assert_counting_exact(
            HOP_TRI_SRC, db, Changeset().delete("link", ("a", "b"))
        )

    def test_input_database_untouched(self):
        db = database_with(EXAMPLE_1_1_LINKS)
        before = db.copy()
        assert_counting_exact(
            HOP_TRI_SRC, db, Changeset().delete("link", ("a", "b"))
        )
        assert db == before

    def test_duplicate_semantics(self):
        db = database_with(EXAMPLE_1_1_LINKS)
        assert_counting_exact(
            HOP_TRI_SRC,
            db,
            Changeset().insert("link", ("c", "z")),
            semantics="duplicate",
        )


class TestAssertMaintainsConsistently:
    def test_replays_and_returns_maintainer(self):
        db = database_with(EXAMPLE_1_1_LINKS)
        maintainer = assert_maintains_consistently(
            TC_SRC,
            db,
            [
                Changeset().delete("link", ("a", "b")),
                Changeset().insert("link", ("e", "f")),
            ],
        )
        assert ("b", "f") in maintainer.relation("tc")

    def test_reports_failing_step(self):
        db = database_with(EXAMPLE_1_1_LINKS)

        class Corrupting(Changeset):
            pass

        maintainer_holder = {}

        def changesets():
            yield Changeset().insert("link", ("x", "y"))
            # Corrupt the view between steps to prove the checker fires.
            maintainer_holder["m"].views["tc"].add(("bogus", "row"), 1)
            yield Changeset().insert("link", ("y", "z"))

        from repro.core.maintenance import ViewMaintainer

        # Build manually to get a handle for corruption.
        maintainer = ViewMaintainer.from_source(TC_SRC, db).initialize()
        maintainer_holder["m"] = maintainer
        maintainer.apply(Changeset().insert("link", ("x", "y")))
        maintainer.views["tc"].add(("bogus", "row"), 1)
        with pytest.raises(Exception):
            maintainer.consistency_check()


class TestSoak:
    def test_soak_runs_and_returns_changesets(self):
        db = database_with([(0, 1), (1, 2), (2, 3)])
        applied = soak(TC_SRC, db, "link", steps=8, seed=3, node_count=6)
        assert applied  # something happened
        # Replayability: same seed on the same start state applies cleanly.
        db2 = database_with([(0, 1), (1, 2), (2, 3)])
        applied2 = soak(TC_SRC, db2, "link", steps=8, seed=3, node_count=6)
        assert [c.delta("link").to_dict() for c in applied] == [
            c.delta("link").to_dict() for c in applied2
        ]

    def test_soak_nonrecursive(self):
        db = database_with([(0, 1), (1, 2)])
        soak(HOP_TRI_SRC, db, "link", steps=6, seed=5, node_count=5)
