"""Tests for the observability layer: tracer, metrics, logging, hooks.

Covers the :mod:`repro.obs` primitives in isolation (span nesting, ring
capacity, JSONL output, registry semantics, Prometheus validity) and the
engine integration: traced counting AND DRed passes must produce the
``pass -> stratum -> phase -> rule`` tree, stats snapshots must
round-trip through JSON, and dead-lettered subscribers must surface as
a warning log plus ``repro_subscriber_dead_letters_total``.
"""

import io
import json
import logging

import pytest

from repro.core.active import SubscriptionHub
from repro.core.maintenance import ViewMaintainer
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    NullSink,
    RingSink,
    TeeSink,
    Tracer,
    configure_logging,
    span_tree_paths,
    validate_prometheus,
    validate_trace_events,
    validate_trace_jsonl,
)
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.storage.relation import CountedRelation

HOP_SRC = "hop(X,Y) :- link(X,Z), link(Z,Y)."
CHAIN_SRC = HOP_SRC + "\ntrihop(X,Y) :- hop(X,Z), link(Z,Y)."
EDGES = [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")]


def database():
    db = Database()
    db.insert_rows("link", EDGES)
    return db


def maintainer_with(source, strategy="counting", **kwargs):
    m = ViewMaintainer.from_source(source, database(), strategy=strategy, **kwargs)
    m.initialize()
    return m


# ------------------------------------------------------------------ tracer


class TestTracer:
    def test_disabled_by_default_and_emits_nothing(self):
        ring = RingSink()
        tracer = Tracer()
        tracer.sink = ring  # even with a sink attached, disabled is off
        assert not tracer.enabled
        with tracer.span("pass", "apply", tuples=3) as span:
            span.set(more=1).add("n")
        tracer.event("fault")
        assert len(ring) == 0

    def test_span_nesting_parent_links(self):
        ring = RingSink()
        tracer = Tracer(ring)
        with tracer.span("pass", "apply") as outer:
            with tracer.span("stratum", "stratum 0") as mid:
                with tracer.span("phase", "propagate") as inner:
                    pass
        events = list(ring.events)
        # Spans close inside-out: phase, stratum, pass.
        assert [e["kind"] for e in events] == ["phase", "stratum", "pass"]
        assert events[0]["parent"] == mid.span_id
        assert events[1]["parent"] == outer.span_id
        assert events[2]["parent"] is None
        assert inner.parent_id == mid.span_id
        assert validate_trace_events(events) == []

    def test_event_nested_under_current_span(self):
        ring = RingSink()
        tracer = Tracer(ring)
        with tracer.span("pass", "apply") as span:
            tracer.event("fault_fired", phase="journal_append")
        events = list(ring.events)
        assert events[0]["kind"] == "event"
        assert events[0]["parent"] == span.span_id
        assert events[0]["attrs"] == {"phase": "journal_append"}

    def test_span_attrs_and_error_marker(self):
        ring = RingSink()
        tracer = Tracer(ring)
        with pytest.raises(RuntimeError):
            with tracer.span("rule", "hop", tuples_in=2) as span:
                span.set(tuples_out=5)
                raise RuntimeError("boom")
        (event,) = ring.events
        assert event["attrs"]["tuples_in"] == 2
        assert event["attrs"]["tuples_out"] == 5
        assert event["attrs"]["error"] == "RuntimeError"

    def test_ring_capacity_and_tail(self):
        ring = RingSink(capacity=3)
        tracer = Tracer(ring)
        for index in range(10):
            with tracer.span("rule", f"r{index}"):
                pass
        assert len(ring) == 3
        assert [e["name"] for e in ring.tail(2)] == ["r8", "r9"]
        with pytest.raises(ValueError):
            RingSink(capacity=0)

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(JsonlSink(path))
        with tracer.span("pass", "apply"):
            with tracer.span("phase", "seed"):
                pass
        tracer.close()
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        assert validate_trace_jsonl(text) == []
        events = [json.loads(line) for line in text.splitlines()]
        assert [e["kind"] for e in events] == ["phase", "pass"]

    def test_tee_sink_fans_out(self):
        a, b = RingSink(), RingSink()
        tracer = Tracer(TeeSink([a, b]))
        with tracer.span("pass", "apply"):
            pass
        assert len(a) == len(b) == 1

    def test_null_sink_is_enabled_but_discards(self):
        tracer = Tracer(NullSink())
        assert tracer.enabled
        with tracer.span("pass", "apply") as span:
            pass
        assert span.seconds >= 0.0  # a real Span ran, nothing stored


# ----------------------------------------------------------------- metrics


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total", "Things.")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3
        with pytest.raises(ValueError):
            counter.inc(-1)

        gauge = registry.gauge("repro_depth")
        gauge.set(4)
        gauge.dec()
        assert gauge.value() == 3

        hist = registry.histogram("repro_pass_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(5.55)

    def test_labels_declared_at_registration(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_rules_total", labels=("phase",))
        counter.inc(phase="seed")
        counter.inc(2, phase="propagate")
        assert counter.value(phase="propagate") == 2
        assert counter.value(phase="seed") == 1
        with pytest.raises(ValueError):
            counter.inc()  # missing the declared label
        with pytest.raises(ValueError):
            counter.inc(stratum=1)  # undeclared label

    def test_registration_idempotent_but_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", labels=("a",))
        assert registry.counter("repro_x_total", labels=("a",)) is first
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", labels=("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("repro_ok_total", labels=("__reserved",))

    def test_prometheus_exposition_is_valid(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_rules_fired_total", "Rules fired.", labels=("phase",)
        ).inc(3, phase="propagate")
        registry.gauge("repro_cache_hit_ratio", "Hit ratio.").set(0.75)
        registry.histogram(
            "repro_pass_seconds", "Pass wall time.", buckets=(0.001, 0.1)
        ).observe(0.01)
        text = registry.to_prometheus()
        assert validate_prometheus(text) == []
        assert '# TYPE repro_rules_fired_total counter' in text
        assert 'repro_rules_fired_total{phase="propagate"} 3' in text
        assert 'repro_pass_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_pass_seconds_sum" in text
        assert "repro_pass_seconds_count 1" in text

    def test_snapshot_and_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc(2)
        registry.histogram("repro_b_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = json.loads(registry.to_json())
        assert snapshot["repro_a_total"]["kind"] == "counter"
        assert snapshot["repro_a_total"]["values"][0]["value"] == 2
        assert snapshot["repro_b_seconds"]["values"][0]["count"] == 1
        registry.reset()
        assert len(registry) == 0


class TestHistogramQuantiles:
    def test_empty_histogram_estimates_none(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_q_seconds", buckets=(0.1, 1.0))
        assert hist.estimate_quantile(0.5) is None
        assert hist.estimate_quantile(0.99) is None

    def test_single_bucket_interpolates_from_zero(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_q_seconds", buckets=(1.0,))
        hist.observe(0.5)
        # One observation in [0, 1]: rank q lands in that bucket, the
        # estimate interpolates linearly between the 0.0 lower edge and
        # the 1.0 bound.
        assert hist.estimate_quantile(0.5) == pytest.approx(0.5)
        assert hist.estimate_quantile(1.0) == pytest.approx(1.0)

    def test_inf_only_observations_clamp_to_highest_finite_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_q_seconds", buckets=(0.1, 1.0))
        hist.observe(50.0)
        hist.observe(99.0)
        # Everything sits in the +Inf bucket: the estimate clamps to the
        # highest finite bound rather than inventing a number.
        assert hist.estimate_quantile(0.5) == pytest.approx(1.0)
        assert hist.estimate_quantile(0.99) == pytest.approx(1.0)

    def test_interpolation_across_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_q_seconds", buckets=(0.1, 0.2, 0.4, 1.0)
        )
        for value in (0.05, 0.15, 0.15, 0.3):
            hist.observe(value)
        # p50: rank 2.0 → cumulative hits 3 in the (0.1, 0.2] bucket;
        # one of rank inside a bucket holding two observations.
        p50 = hist.estimate_quantile(0.5)
        assert 0.1 < p50 <= 0.2
        p99 = hist.estimate_quantile(0.99)
        assert 0.2 < p99 <= 0.4
        assert hist.estimate_quantile(0.5) <= hist.estimate_quantile(0.95)
        with pytest.raises(ValueError):
            hist.estimate_quantile(1.5)

    def test_quantiles_in_snapshot_and_exposition(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_q_seconds", "Quantiled.", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        snapshot = registry.snapshot()
        quantiles = snapshot["repro_q_seconds"]["values"][0]["quantiles"]
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert all(q is not None for q in quantiles.values())
        text = registry.to_prometheus()
        assert validate_prometheus(text) == []
        assert "repro_q_seconds_p50" in text
        assert "repro_q_seconds_p99" in text

    def test_labeled_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_q_seconds", buckets=(0.1, 1.0), labels=("view",)
        )
        hist.observe(0.05, view="hop")
        assert hist.estimate_quantile(0.5, view="hop") is not None
        assert hist.estimate_quantile(0.5, view="other") is None


class TestLabelCardinalityGuard:
    def test_cap_drops_new_labelsets_and_counts_them(self):
        registry = MetricsRegistry(max_labelsets=2)
        counter = registry.counter("repro_c_total", labels=("view",))
        counter.inc(view="a")
        counter.inc(view="b")
        counter.inc(view="c")  # dropped: third distinct labelset
        assert counter.value(view="a") == 1
        assert counter.value(view="c") == 0
        dropped = registry.get("repro_metrics_dropped_labelsets")
        assert dropped.value(metric="repro_c_total") == 1

    def test_existing_labelsets_still_update_past_the_cap(self):
        registry = MetricsRegistry(max_labelsets=1)
        gauge = registry.gauge("repro_g", labels=("view",))
        gauge.set(1.0, view="a")
        gauge.set(5.0, view="a")  # existing series: always admitted
        gauge.inc(view="a")
        assert gauge.value(view="a") == 6.0
        gauge.set(9.0, view="b")  # new series: rejected
        assert gauge.value(view="b") == 0.0

    def test_histogram_observations_guarded(self):
        registry = MetricsRegistry(max_labelsets=1)
        hist = registry.histogram(
            "repro_h_seconds", buckets=(1.0,), labels=("view",)
        )
        hist.observe(0.5, view="a")
        hist.observe(0.5, view="b")  # dropped
        assert hist.count(view="a") == 1
        assert hist.count(view="b") == 0
        assert registry.get("repro_metrics_dropped_labelsets").value(
            metric="repro_h_seconds"
        ) == 1

    def test_warning_logged_once_per_family(self, caplog):
        registry = MetricsRegistry(max_labelsets=1)
        counter = registry.counter("repro_c_total", labels=("view",))
        counter.inc(view="a")
        with caplog.at_level(logging.WARNING, logger="repro.obs.metrics"):
            counter.inc(view="b")
            counter.inc(view="c")
        warnings = [
            r for r in caplog.records if "cardinality" in r.message
        ]
        assert len(warnings) == 1
        assert registry.get("repro_metrics_dropped_labelsets").value(
            metric="repro_c_total"
        ) == 2

    def test_unlabeled_metrics_unaffected(self):
        registry = MetricsRegistry(max_labelsets=1)
        counter = registry.counter("repro_plain_total")
        counter.inc()
        counter.inc()
        assert counter.value() == 2

    def test_uncapped_registry_admits_everything(self):
        registry = MetricsRegistry(max_labelsets=None)
        counter = registry.counter("repro_c_total", labels=("n",))
        for index in range(2000):
            counter.inc(n=str(index))
        assert registry.get("repro_metrics_dropped_labelsets") is None

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_labelsets=0)


class TestRingTruncation:
    def test_fresh_ring_not_truncated(self):
        ring = RingSink(capacity=4)
        tracer = Tracer(ring)
        with tracer.span("pass", "apply"):
            pass
        assert not ring.truncated
        assert ring.dropped == 0

    def test_wraparound_sets_truncated_and_counts_dropped(self):
        ring = RingSink(capacity=3)
        tracer = Tracer(ring)
        for index in range(5):
            with tracer.span("rule", f"r{index}"):
                pass
        assert ring.truncated
        assert ring.dropped == 2
        assert [e["name"] for e in ring.events] == ["r2", "r3", "r4"]

    def test_clear_resets_truncation(self):
        ring = RingSink(capacity=1)
        tracer = Tracer(ring)
        for _ in range(3):
            with tracer.span("rule", "r"):
                pass
        assert ring.truncated
        ring.clear()
        assert not ring.truncated
        assert ring.dropped == 0
        assert len(ring) == 0


# ------------------------------------------------------- engine integration


class TestTracedMaintenance:
    @pytest.mark.parametrize("strategy", ["counting", "dred"])
    def test_pass_stratum_phase_rule_tree(self, strategy):
        ring = RingSink()
        maintainer = maintainer_with(
            CHAIN_SRC, strategy=strategy, tracer=Tracer(ring)
        )
        maintainer.apply(Changeset().insert("link", ("d", "e")))
        events = list(ring.events)
        assert validate_trace_events(events) == []
        paths = span_tree_paths(events)
        assert ["pass", "stratum", "phase", "rule"] in paths
        kinds = {event["kind"] for event in events}
        assert {"pass", "stratum", "phase", "rule"} <= kinds

    def test_rule_spans_carry_tuple_counts(self):
        ring = RingSink()
        maintainer = maintainer_with(HOP_SRC, tracer=Tracer(ring))
        maintainer.apply(Changeset().insert("link", ("d", "e")))
        rule_events = [e for e in ring.events if e["kind"] == "rule"]
        assert rule_events
        assert all("tuples_out" in e["attrs"] for e in rule_events)

    def test_disabled_tracer_emits_nothing(self):
        maintainer = maintainer_with(HOP_SRC)
        assert not maintainer.tracer.enabled
        maintainer.apply(Changeset().insert("link", ("d", "e")))
        # Nothing to assert on a NullSink beyond "no crash"; the real
        # guarantee (no span objects built) is enforced by the bench
        # overhead guard.

    def test_metrics_recorded_per_pass(self):
        registry = MetricsRegistry()
        maintainer = maintainer_with(CHAIN_SRC, metrics=registry)
        maintainer.apply(Changeset().insert("link", ("d", "e")))
        assert registry.get("repro_passes_total").value(strategy="counting") == 1
        assert registry.get("repro_rules_fired_total").value() > 0
        assert registry.get("repro_pass_seconds").count(strategy="counting") == 1
        assert validate_prometheus(registry.to_prometheus()) == []

    def test_dred_metrics_include_overestimate_waste(self):
        registry = MetricsRegistry()
        maintainer = maintainer_with(CHAIN_SRC, strategy="dred", metrics=registry)
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert registry.get("repro_dred_overestimated_total") is not None
        assert registry.get("repro_dred_overestimate_waste_ratio") is not None

    def test_stats_round_trip_through_json(self):
        maintainer = maintainer_with(CHAIN_SRC)
        maintainer.apply(Changeset().insert("link", ("d", "e")))
        maintainer.apply(Changeset().delete("link", ("a", "d")))

        stats = json.loads(json.dumps(maintainer.stats.to_dict()))
        assert stats["passes"] == 2
        assert stats["rules_fired"] > 0
        assert set(stats["phase_seconds"]) >= {"seed", "propagate"}
        assert 0.0 <= stats["plan_cache_hit_rate"] <= 1.0

        lifetime = json.loads(json.dumps(maintainer.lifetime.to_dict()))
        assert lifetime["passes"] == 2
        assert lifetime["tuples_changed"] > 0
        assert lifetime["seconds"] >= 0.0


class TestDeadLetterTelemetry:
    def test_dead_letter_warns_and_counts(self, caplog):
        registry = MetricsRegistry()
        hub = SubscriptionHub(
            max_attempts=2, backoff_seconds=0.0, metrics=registry
        )

        def bad(view, delta):
            raise RuntimeError("subscriber exploded")

        hub.subscribe("hop", bad)
        delta = CountedRelation()
        delta.add(("a", "c"), 1)
        with caplog.at_level(logging.WARNING, logger="repro.core.active"):
            hub.notify({"hop": delta})

        assert len(hub.dead_letters) == 1
        assert registry.get(
            "repro_subscriber_dead_letters_total"
        ).value(view="hop") == 1
        assert registry.get(
            "repro_subscriber_retries_total"
        ).value(view="hop") == 2
        assert any("dead-letter" in r.message for r in caplog.records)

    def test_dead_letter_traced_as_event(self):
        ring = RingSink()
        hub = SubscriptionHub(
            max_attempts=1, backoff_seconds=0.0, tracer=Tracer(ring)
        )
        hub.subscribe("hop", lambda view, delta: 1 / 0)
        delta = CountedRelation()
        delta.add(("a", "c"), 1)
        hub.notify({"hop": delta})
        names = [e["name"] for e in ring.events]
        assert "dead_letter" in names


# ----------------------------------------------------------------- logging


class TestConfigureLogging:
    def teardown_method(self):
        # Drop the handler so other tests' logging is untouched.
        logger = logging.getLogger("repro")
        for handler in list(logger.handlers):
            if getattr(handler, "_repro_obs_handler", False):
                logger.removeHandler(handler)

    def test_text_mode(self):
        stream = io.StringIO()
        configure_logging(level="INFO", stream=stream)
        logging.getLogger("repro.test").info("hello %s", "world")
        line = stream.getvalue()
        assert "hello world" in line
        assert "repro.test" in line

    def test_json_mode(self):
        stream = io.StringIO()
        configure_logging(level="DEBUG", json_mode=True, stream=stream)
        logging.getLogger("repro.test").warning("structured %d", 7)
        record = json.loads(stream.getvalue())
        assert record["level"] == "WARNING"
        assert record["logger"] == "repro.test"
        assert record["message"] == "structured 7"

    def test_reconfigure_replaces_handler(self):
        stream_a, stream_b = io.StringIO(), io.StringIO()
        configure_logging(level="INFO", stream=stream_a)
        configure_logging(level="INFO", stream=stream_b)
        logging.getLogger("repro.test").info("once")
        assert stream_a.getvalue() == ""
        assert stream_b.getvalue().count("once") == 1
