"""Tests for delta-rule derivation (Definition 4.1 and the expansion)."""

import pytest

from repro.core import names
from repro.core.delta_rules import expansion_delta_rules, factored_delta_rules
from repro.datalog.parser import parse_rule
from repro.errors import MaintenanceError


class TestFactoredForm:
    def test_example_4_1_shape(self):
        """Definition 4.1 on rule (v1) yields Δ-rules with ν/old split."""
        rule = parse_rule("hop(X, Y) :- link(X, Z), link(Z, Y).")
        delta_rules = factored_delta_rules(rule)
        assert len(delta_rules) == 2
        first, second = delta_rules
        # δ1: Δ(hop) :- Δ(link) & link           (old right of the delta)
        assert first.rule.head.predicate == names.delta("hop")
        assert first.rule.body[0].predicate == names.delta("link")
        assert first.rule.body[1].predicate == "link"
        assert first.seed == 0
        # δ2: Δ(hop) :- ν(link) & Δ(link)        (new left of the delta)
        assert second.rule.body[0].predicate == names.new("link")
        assert second.rule.body[1].predicate == names.delta("link")
        assert second.seed == 1

    def test_one_rule_per_deltable_position(self):
        rule = parse_rule("p(X) :- a(X), b(X), c(X).")
        assert len(factored_delta_rules(rule)) == 3

    def test_comparisons_skipped_as_delta_positions(self):
        rule = parse_rule("p(X) :- a(X, Y), Y < 3, b(X).")
        delta_rules = factored_delta_rules(rule)
        assert len(delta_rules) == 2
        # The comparison stays in every variant's body, unchanged.
        for delta_rule in delta_rules:
            assert any(
                not hasattr(s, "predicate") for s in delta_rule.rule.body
            )

    def test_negated_subgoal_cases(self):
        """Section 6.1: ν(¬q) = ¬(νq); Δ position becomes Δ¬ literal."""
        rule = parse_rule("p(X) :- a(X), not q(X), b(X).")
        delta_rules = factored_delta_rules(rule)
        # Position 1 (the negation) as the delta: positive Δ¬ literal.
        at_negation = delta_rules[1]
        assert at_negation.rule.body[1].predicate == names.delta_neg("q")
        assert not at_negation.rule.body[1].negated
        assert at_negation.delta_negations == ("q",)
        # Position 2: the negation is left of the delta → ¬(ν q).
        after_negation = delta_rules[2]
        assert after_negation.rule.body[1].predicate == names.new("q")
        assert after_negation.rule.body[1].negated

    def test_aggregate_in_multi_subgoal_body_rejected(self):
        rule = parse_rule(
            "p(S, M) :- keep(S), GROUPBY(u(S2, C), [S2], M = MIN(C)), S = S2."
        )
        with pytest.raises(MaintenanceError, match="normalize"):
            factored_delta_rules(rule)


class TestExpansionForm:
    def test_subset_count(self):
        rule = parse_rule("hop(X, Y) :- link(X, Z), link(Z, Y).")
        variants = expansion_delta_rules(rule, {"link"})
        assert len(variants) == 3  # {0}, {1}, {0,1}

    def test_unchanged_rule_produces_nothing(self):
        rule = parse_rule("hop(X, Y) :- link(X, Z), link(Z, Y).")
        assert expansion_delta_rules(rule, {"other"}) == []

    def test_partial_change(self):
        rule = parse_rule("p(X) :- a(X), b(X).")
        variants = expansion_delta_rules(rule, {"a"})
        assert len(variants) == 1
        assert variants[0].rule.body[0].predicate == names.delta("a")
        assert variants[0].rule.body[1].predicate == "b"

    def test_non_delta_positions_read_old_state(self):
        rule = parse_rule("p(X) :- a(X), b(X).")
        variants = expansion_delta_rules(rule, {"a", "b"})
        singles = [v for v in variants if sum(
            s.predicate.startswith(names.DELTA) for s in v.rule.body) == 1]
        for variant in singles:
            plain = [s for s in variant.rule.body
                     if not s.predicate.startswith(names.DELTA)]
            assert all(s.predicate in ("a", "b") for s in plain)

    def test_seed_is_first_delta_position(self):
        rule = parse_rule("p(X) :- a(X), b(X), c(X).")
        variants = expansion_delta_rules(rule, {"b", "c"})
        seeds = sorted(v.seed for v in variants)
        assert seeds == [1, 1, 2]

    def test_negated_changed_subgoal_uses_delta_neg(self):
        rule = parse_rule("p(X) :- a(X), not q(X).")
        variants = expansion_delta_rules(rule, {"q"})
        assert len(variants) == 1
        assert variants[0].rule.body[1].predicate == names.delta_neg("q")
        assert variants[0].delta_negations == ("q",)
