"""Smoke test: the B/F benchmark runs end-to-end and emits well-formed
``BENCH_bf.json``.

Runs ``benchmarks/bench_bf.py --smoke`` (toy scale — the numbers are
meaningless, only the machinery and the schema are under test; the
performance gates are recorded but enforced only at full scale) and
validates the JSON schema the full benchmark publishes.  Wired into
``make bf-smoke`` and the default ``make check``.
"""

import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO, "benchmarks", "bench_bf.py")


def run_smoke(tmp_path):
    out = str(tmp_path / "bench.json")
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    completed = subprocess.run(
        [sys.executable, SCRIPT, "--smoke", "--out", out],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return out, completed.stdout


def test_smoke_emits_valid_bench_json(tmp_path):
    out, stdout = run_smoke(tmp_path)
    with open(out, encoding="utf-8") as handle:
        payload = json.load(handle)

    assert payload["benchmark"] == "bf"
    assert payload["schema_version"] == 1
    assert payload["config"]["smoke"] is True

    by_name = {w["workload"]: w for w in payload["workloads"]}
    assert set(by_name) == {
        "dense-layered", "dense-grid", "e6-regression", "e7-regression",
    }

    for workload in by_name.values():
        assert workload["bf_seconds"] > 0
        assert workload["dred_seconds"] > 0
        assert workload["speedup"] > 0
        assert workload["ratio"] > 0
        # The targeting story: B/F examines candidates, DRed
        # overestimates; both sides ran real deletion work.
        assert workload["bf_candidates"] > 0
        assert workload["dred_overestimated"] > 0

    # The dense workload carries the ≥5× acceptance gate; the
    # regression workloads carry the <10% budget.  At smoke scale only
    # their presence is asserted — the full run enforces them via its
    # exit code.
    assert by_name["dense-layered"]["speedup_gate"] == 5.0
    assert "within_gate" in by_name["dense-layered"]
    for name in ("e6-regression", "e7-regression"):
        assert by_name[name]["regression_budget"] == 0.10
        assert "within_gate" in by_name[name]

    # B/F never examines more than DRed deletes: candidates are a
    # subset of the overestimate (tests/test_bf.py proves this per
    # pass; here it shows up in the aggregate counters).
    for workload in by_name.values():
        assert (
            workload["bf_candidates"] <= workload["dred_overestimated"]
        )

    # Engine telemetry rides along in every bench document.
    assert "metrics" in payload["telemetry"]

    # Human-readable lines mirror the JSON.
    assert "dense-layered" in stdout
    assert "e6-regression" in stdout
    assert out in stdout
