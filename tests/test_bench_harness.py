"""Tests for the experiment harness (table rendering, registry, timing)."""

from repro.bench.experiments import EXPERIMENTS
from repro.bench.harness import ExperimentResult, format_table, timed


class TestHarness:
    def test_timed_returns_result_and_positive_seconds(self):
        value, seconds = timed(lambda: sum(range(1000)))
        assert value == 499500
        assert seconds > 0

    def test_add_row_and_note(self):
        result = ExperimentResult("E0", "t", "c", ["a", "b"])
        result.add_row(a=1, b=2.5)
        result.note("remark")
        assert result.rows == [{"a": 1, "b": 2.5}]
        assert result.notes == ["remark"]

    def test_format_table_markdown(self):
        result = ExperimentResult("E0", "Title", "The claim.", ["x", "y"])
        result.add_row(x="foo", y=0.1234)
        result.note("a note")
        text = format_table(result)
        assert "### E0 — Title" in text
        assert "| x " in text
        assert "0.1234" in text
        assert "> a note" in text

    def test_format_handles_missing_cells(self):
        result = ExperimentResult("E0", "T", "c", ["x", "y"])
        result.add_row(x=1)
        assert "| 1" in format_table(result)

    def test_float_formatting_ranges(self):
        result = ExperimentResult("E0", "T", "c", ["v"])
        result.add_row(v=1234.5)
        result.add_row(v=12.345)
        result.add_row(v=0.000123)
        text = format_table(result)
        assert "1235" in text or "1234" in text
        assert "12.35" in text or "12.34" in text
        assert "0.0001" in text

    def test_registry_complete(self):
        claims = sorted(
            (e for e in EXPERIMENTS if e.startswith("E")),
            key=lambda e: int(e[1:]),
        )
        assert claims == [f"E{i}" for i in range(1, 13)]
        ablations = sorted(e for e in EXPERIMENTS if e.startswith("A"))
        assert ablations == ["A1", "A2", "A3", "A4"]
        assert all(callable(fn) for fn in EXPERIMENTS.values())

    def test_registry_ids_match_design_doc(self):
        # DESIGN.md §4.2 promises exactly E1..E12 (+ four ablations).
        assert len(EXPERIMENTS) == 16
