"""Orchestrator DAG-spec lint (RV21x) and its CLI routing."""

import json

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.spec import lint_spec, looks_like_spec
from repro.errors import OrchestrationError
from repro.orchestrator.scheduler import Orchestrator


def codes(report):
    return [d.code for d in report.diagnostics]


GOOD_SPEC = {
    "views": [
        {"name": "pairs", "source": "pair(X, Y) :- edge(X, Y)."},
        {
            "name": "fan",
            "source": "fan(X) :- pair(X, Y).",
            "target_lag": 5.0,
        },
    ],
    "sources": ["edge"],
}


class TestRouting:
    def test_looks_like_spec(self):
        assert looks_like_spec('  {"views": []}')
        assert looks_like_spec('\n{\n}')
        assert not looks_like_spec("hop(X, Y) :- link(X, Z).")
        assert not looks_like_spec("[1, 2]")

    def test_accepts_text_and_dict(self):
        assert lint_spec(GOOD_SPEC).ok
        assert lint_spec(json.dumps(GOOD_SPEC)).ok


class TestMalformedInput:
    def test_bad_json_is_rv000_with_position(self):
        report = lint_spec('{"views": [,]}')
        assert codes(report) == ["RV000"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.severity == Severity.ERROR
        assert diagnostic.span is not None
        assert diagnostic.span.line == 1

    def test_non_object_json_is_rv010(self):
        report = lint_spec("[1, 2]")
        assert codes(report) == ["RV010"]

    def test_missing_views_is_rv010(self):
        report = lint_spec("{}")
        assert codes(report) == ["RV010"]
        assert "views" in report.diagnostics[0].message

    def test_non_dict_view_entry_is_rv010(self):
        report = lint_spec({"views": [7]})
        assert codes(report) == ["RV010"]
        assert "views[0]" in report.diagnostics[0].message

    def test_unknown_view_keys_are_rv010(self):
        spec = {
            "views": [
                {
                    "name": "pairs",
                    "source": "pair(X, Y) :- edge(X, Y).",
                    "lagg": 3,
                }
            ]
        }
        report = lint_spec(spec)
        assert "RV010" in codes(report)
        assert "lagg" in report.diagnostics[0].message

    def test_unparseable_node_program_is_rv000(self):
        spec = {"views": [{"name": "p", "source": "pair(X :-"}]}
        report = lint_spec(spec)
        assert "RV000" in codes(report)

    def test_bad_sources_shape_is_rv010(self):
        spec = dict(GOOD_SPEC, sources="edge")
        report = lint_spec(spec)
        assert "RV010" in codes(report)
        # The same shape is rejected at runtime by from_spec itself.
        with pytest.raises(OrchestrationError):
            Orchestrator.from_spec(spec)


class TestCycleRV210:
    CYCLIC = {
        "views": [
            {"name": "a", "source": "a(X) :- b(X)."},
            {"name": "b", "source": "b(X) :- a(X)."},
        ]
    }

    def test_cycle_is_an_error(self):
        report = lint_spec(self.CYCLIC)
        assert codes(report) == ["RV210"]
        assert report.diagnostics[0].severity == Severity.ERROR
        assert not report.ok

    def test_scheduler_agrees(self):
        with pytest.raises(OrchestrationError):
            Orchestrator.from_spec(self.CYCLIC)


class TestSourcesRV211:
    def test_missing_source_is_a_warning_with_consumers(self):
        spec = {
            "views": [
                {"name": "pairs", "source": "pair(X, Y) :- edge(X, Y)."}
            ],
            "sources": ["link"],
        }
        report = lint_spec(spec)
        assert codes(report) == ["RV211"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.severity == Severity.WARNING
        assert "'edge'" in diagnostic.message
        assert diagnostic.data["consumers"] == ["pairs"]
        assert report.ok  # warnings do not fail the default gate

    def test_declared_sources_lint_clean(self):
        assert lint_spec(GOOD_SPEC).diagnostics == ()

    def test_undeclared_surface_is_not_checked(self):
        spec = {"views": GOOD_SPEC["views"]}
        assert lint_spec(spec).diagnostics == ()


class TestDownstreamRV212:
    def test_dangling_downstream_is_a_warning(self):
        spec = {
            "views": [
                {
                    "name": "pairs",
                    "source": "pair(X, Y) :- edge(X, Y).",
                    "target_lag": "downstream",
                }
            ],
            "sources": ["edge"],
        }
        report = lint_spec(spec)
        assert codes(report) == ["RV212"]
        assert report.diagnostics[0].severity == Severity.WARNING
        assert "'pairs'" in report.diagnostics[0].message

    def test_resolved_downstream_lints_clean(self):
        spec = {
            "views": [
                {
                    "name": "pairs",
                    "source": "pair(X, Y) :- edge(X, Y).",
                    "target_lag": "downstream",
                },
                {
                    "name": "fan",
                    "source": "fan(X) :- pair(X, Y).",
                    "target_lag": 5.0,
                },
            ],
            "sources": ["edge"],
        }
        assert lint_spec(spec).diagnostics == ()


class TestSuppression:
    def test_suppressed_codes_drop_from_report_and_exit(self):
        spec = {
            "views": [
                {"name": "pairs", "source": "pair(X, Y) :- edge(X, Y)."}
            ],
            "sources": [],
        }
        noisy = lint_spec(spec)
        assert codes(noisy) == ["RV211"]
        quiet = lint_spec(spec, suppress_codes=["RV211"])
        assert quiet.diagnostics == ()
        assert quiet.exit_code(Severity.WARNING) == 0


class TestCliIntegration:
    def run_lint(self, argv, capsys):
        from repro.cli import lint_main

        exit_code = lint_main(argv)
        return exit_code, capsys.readouterr().out

    def test_json_file_routes_to_spec_lint(self, tmp_path, capsys):
        spec_path = tmp_path / "dag.json"
        spec_path.write_text(json.dumps(GOOD_SPEC))
        exit_code, out = self.run_lint(
            [str(spec_path), "--format", "json"], capsys
        )
        assert exit_code == 0
        document = json.loads(out)
        assert document["diagnostics"] == []

    def test_inline_json_on_stdin_routes_to_spec_lint(
        self, capsys, monkeypatch
    ):
        import io

        spec = {
            "views": [
                {"name": "pairs", "source": "pair(X, Y) :- edge(X, Y)."}
            ],
            "sources": [],
        }
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps(spec))
        )
        exit_code, out = self.run_lint(["-", "--format", "json"], capsys)
        document = json.loads(out)
        assert [d["code"] for d in document["diagnostics"]] == ["RV211"]
        assert exit_code == 0  # warning, default gate is error

    def test_fail_on_warning_gates_rv211(self, tmp_path, capsys):
        spec_path = tmp_path / "dag.json"
        spec_path.write_text(json.dumps({
            "views": [
                {"name": "pairs", "source": "pair(X, Y) :- edge(X, Y)."}
            ],
            "sources": [],
        }))
        exit_code, _out = self.run_lint(
            [str(spec_path), "--fail-on", "warning"], capsys
        )
        assert exit_code == 1

    def test_suppress_flag_drops_from_json_and_exit(
        self, tmp_path, capsys
    ):
        spec_path = tmp_path / "dag.json"
        spec_path.write_text(json.dumps({
            "views": [
                {"name": "pairs", "source": "pair(X, Y) :- edge(X, Y)."}
            ],
            "sources": [],
        }))
        exit_code, out = self.run_lint(
            [
                str(spec_path),
                "--format", "json",
                "--suppress", "RV211",
                "--fail-on", "warning",
            ],
            capsys,
        )
        assert exit_code == 0
        document = json.loads(out)
        assert document["diagnostics"] == []

    def test_cycle_fails_the_cli(self, tmp_path, capsys):
        spec_path = tmp_path / "dag.json"
        spec_path.write_text(json.dumps(TestCycleRV210.CYCLIC))
        exit_code, out = self.run_lint([str(spec_path)], capsys)
        assert exit_code == 1
        assert "RV210" in out
