"""White-box tests for counting internals: crossings, Δ(¬q), errors, explain."""

import pytest

from repro.core.counting import (
    CountingMaintenance,
    _crossings,
    delta_neg_relation,
)
from repro.core.maintenance import ViewMaintainer
from repro.core.normalize import normalize_program
from repro.datalog.parser import parse_program
from repro.datalog.stratify import stratify
from repro.errors import MaintenanceError
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.storage.relation import CountedRelation

from conftest import HOP_SRC, TC_SRC, database_with, EXAMPLE_1_1_LINKS


def _relation(entries):
    relation = CountedRelation("r")
    for row, count in entries.items():
        relation.add(row, count)
    return relation


class TestCrossings:
    def test_appearing_tuple(self):
        old = _relation({})
        delta = _relation({("a",): 2})
        assert _crossings(old, delta).to_dict() == {("a",): 1}

    def test_disappearing_tuple(self):
        old = _relation({("a",): 2})
        delta = _relation({("a",): -2})
        assert _crossings(old, delta).to_dict() == {("a",): -1}

    def test_count_change_without_crossing(self):
        old = _relation({("a",): 2})
        delta = _relation({("a",): -1})
        assert _crossings(old, delta).to_dict() == {}

    def test_count_increase_without_crossing(self):
        old = _relation({("a",): 1})
        delta = _relation({("a",): 3})
        assert _crossings(old, delta).to_dict() == {}

    def test_mixed(self):
        old = _relation({("gone",): 1, ("shrunk",): 5})
        delta = _relation({("gone",): -1, ("shrunk",): -3, ("new",): 1})
        assert _crossings(old, delta).to_dict() == {
            ("gone",): -1, ("new",): 1,
        }


class TestDeltaNegRelation:
    def test_only_delta_tuples_appear(self):
        """Definition 6.1: t ∈ Δ(¬Q) only if t ∈ Δ(Q)."""
        old = _relation({("x",): 1, ("y",): 1})
        delta = _relation({("x",): -1})
        result = delta_neg_relation(old, delta)
        assert set(result.rows()) <= set(delta.rows())

    def test_empty_delta(self):
        assert len(delta_neg_relation(_relation({("a",): 1}), _relation({}))) == 0


class TestConstructionErrors:
    def test_recursive_program_rejected(self, example_1_1_db):
        normalized = normalize_program(parse_program(TC_SRC))
        strat = stratify(normalized.program)
        with pytest.raises(MaintenanceError, match="nonrecursive"):
            CountingMaintenance(
                normalized, strat, example_1_1_db, {}, {}
            )

    def test_one_run_per_instance_is_fine_repeatedly_from_facade(self):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, database_with(EXAMPLE_1_1_LINKS)
        ).initialize()
        for _ in range(3):
            maintainer.apply(Changeset().insert("link", ("n1", "n2")))
            maintainer.apply(Changeset().delete("link", ("n1", "n2")))
        maintainer.consistency_check()


class TestExplain:
    def test_delta_program_lists_all_rules(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            "hop(X,Y) :- link(X,Z), link(Z,Y)."
            "tri(X,Y) :- hop(X,Z), link(Z,Y).",
            example_1_1_db,
        )
        text = maintainer.delta_program()
        assert "Δ:hop" in text
        assert "Δ:tri" in text
        assert "ν:link" in text
        assert "% from:" in text

    def test_delta_program_annotates_aggregates(self):
        db = Database()
        db.insert_rows("u", [("a", 1)])
        maintainer = ViewMaintainer.from_source(
            "m(S, M) :- GROUPBY(u(S, C), [S], M = MIN(C)).", db
        )
        text = maintainer.delta_program()
        assert "Algorithm 6.1" in text


class TestStatsSemantics:
    def test_suppression_counted_only_in_set_mode(self, example_1_1_db):
        # Delete one of hop(a,c)'s two derivations: suppressed in set mode.
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db, semantics="set"
        ).initialize()
        report = maintainer.apply(Changeset().delete("link", ("b", "c")))
        assert report.counting.stats.cascades_suppressed >= 1

    def test_strata_reached_zero_for_irrelevant_change(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_SRC, example_1_1_db
        ).initialize()
        report = maintainer.apply(Changeset().insert("noise", ("q",)))
        assert report.counting.stats.strata_reached == 0
