"""Tests for the SQL front-end: parsing, translation, and maintenance."""

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.errors import ParseError, SchemaError, UnknownRelationError
from repro.sql import Catalog, create_views, parse_sql, translate_sql
from repro.storage.changeset import Changeset
from repro.storage.database import Database

from conftest import EXAMPLE_1_1_LINKS, EXAMPLE_6_1_LINKS, database_with


def link_catalog() -> Catalog:
    return Catalog().declare_table("link", ["s", "d"])


HOP_SQL = (
    "CREATE VIEW hop AS "
    "SELECT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;"
)


class TestCatalog:
    def test_declare_and_lookup(self):
        catalog = link_catalog()
        assert catalog.columns("link") == ("s", "d")
        assert catalog.column_index("link", "d") == 1

    def test_case_insensitive(self):
        catalog = Catalog().declare_table("Link", ["S", "D"])
        assert catalog.columns("LINK") == ("s", "d")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Catalog().declare_table("t", ["a", "a"])

    def test_conflicting_redeclaration_rejected(self):
        catalog = link_catalog()
        with pytest.raises(SchemaError):
            catalog.declare_table("link", ["x", "y"])

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            link_catalog().columns("ghost")

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            link_catalog().column_index("link", "zzz")


class TestParser:
    def test_create_view_basic(self):
        views = parse_sql(HOP_SQL)
        assert len(views) == 1
        assert views[0].name == "hop"
        select = views[0].query.first
        assert len(select.tables) == 2
        assert select.tables[0].alias == "r1"

    def test_explicit_columns(self):
        views = parse_sql("CREATE VIEW v (a, b) AS SELECT x, y FROM t;")
        assert views[0].columns == ("a", "b")

    def test_union_and_except_chain(self):
        views = parse_sql(
            "CREATE VIEW v AS SELECT x FROM a UNION SELECT x FROM b "
            "EXCEPT SELECT x FROM c;"
        )
        ops = [op for op, _ in views[0].query.rest]
        assert ops == ["UNION", "EXCEPT"]

    def test_union_all(self):
        views = parse_sql(
            "CREATE VIEW v AS SELECT x FROM a UNION ALL SELECT x FROM b;"
        )
        assert views[0].query.rest[0][0] == "UNION ALL"

    def test_group_by_with_aggregates(self):
        views = parse_sql(
            "CREATE VIEW v AS SELECT s, MIN(c), COUNT(*) FROM t GROUP BY s;"
        )
        select = views[0].query.first
        assert len(select.group_by) == 1
        assert select.items[1].expr.function == "MIN"
        assert select.items[2].expr.argument is None  # COUNT(*)

    def test_not_exists(self):
        views = parse_sql(
            "CREATE VIEW v AS SELECT t.x FROM t "
            "WHERE NOT EXISTS (SELECT * FROM u WHERE u.x = t.x);"
        )
        assert views[0].query.first.where is not None

    def test_string_literal_with_quote(self):
        views = parse_sql(
            "CREATE VIEW v AS SELECT t.x FROM t WHERE t.x = 'it''s';"
        )
        comparison = views[0].query.first.where
        assert comparison.right.value == "it's"

    def test_sql_comments(self):
        views = parse_sql(
            "-- header comment\nCREATE VIEW v AS SELECT x FROM t;"
        )
        assert views[0].name == "v"

    def test_parse_error_position(self):
        with pytest.raises(ParseError):
            parse_sql("CREATE TABLE nope;")

    def test_multiple_statements(self):
        views = parse_sql(
            "CREATE VIEW a AS SELECT x FROM t; "
            "CREATE VIEW b AS SELECT x FROM a;"
        )
        assert [v.name for v in views] == ["a", "b"]


class TestTranslation:
    def test_join_becomes_shared_variables(self):
        program = translate_sql(link_catalog(), HOP_SQL)
        rule = program.rules[0]
        assert rule.head.predicate == "hop"
        # The join column appears in both body literals.
        first_args = set(rule.body[0].args)
        second_args = set(rule.body[1].args)
        assert first_args & second_args

    def test_example_1_1_via_sql(self, example_1_1_db):
        maintainer = create_views(HOP_SQL, link_catalog(), example_1_1_db)
        maintainer.initialize()
        assert maintainer.relation("hop").to_dict() == {
            ("a", "c"): 2, ("a", "e"): 1,
        }
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert maintainer.relation("hop").to_dict() == {("a", "c"): 1}

    def test_view_over_view(self, example_1_1_db):
        sql = HOP_SQL + (
            "CREATE VIEW tri_hop AS SELECT h.s, r.d FROM hop h, link r "
            "WHERE h.d = r.s;"
        )
        maintainer = create_views(sql, link_catalog(), example_1_1_db)
        maintainer.initialize()
        maintainer.consistency_check()

    def test_not_exists_translation(self, example_6_1_db):
        sql = HOP_SQL + (
            "CREATE VIEW tri_hop AS SELECT h.s, r.d FROM hop h, link r "
            "WHERE h.d = r.s;"
            "CREATE VIEW only_tri_hop AS SELECT t.s, t.d FROM tri_hop t "
            "WHERE NOT EXISTS (SELECT * FROM hop h WHERE h.s = t.s "
            "AND h.d = t.d);"
        )
        maintainer = create_views(sql, link_catalog(), example_6_1_db)
        maintainer.initialize()
        assert maintainer.relation("only_tri_hop").as_set() == {("a", "k")}

    def test_constant_filter(self, example_1_1_db):
        sql = "CREATE VIEW from_a AS SELECT l.d FROM link l WHERE l.s = 'a';"
        maintainer = create_views(sql, link_catalog(), example_1_1_db)
        maintainer.initialize()
        assert maintainer.relation("from_a").as_set() == {("b",), ("d",)}

    def test_or_splits_into_rules(self):
        sql = (
            "CREATE VIEW v AS SELECT l.s, l.d FROM link l "
            "WHERE l.s = 'a' OR l.d = 'c';"
        )
        program = translate_sql(link_catalog(), sql)
        assert len(program.rules_for("v")) == 2

    def test_group_by_min(self):
        catalog = Catalog().declare_table("link", ["s", "d", "c"])
        sql = (
            "CREATE VIEW cheapest AS SELECT l.s, MIN(l.c) FROM link l "
            "GROUP BY l.s;"
        )
        db = Database()
        db.insert_rows("link", [("a", "b", 3), ("a", "c", 1), ("b", "c", 7)])
        maintainer = create_views(sql, catalog, db)
        maintainer.initialize()
        assert maintainer.relation("cheapest").as_set() == {
            ("a", 1), ("b", 7),
        }

    def test_multiple_aggregates_in_one_view(self):
        catalog = Catalog().declare_table("sales", ["region", "amount"])
        sql = (
            "CREATE VIEW stats AS SELECT s.region, COUNT(*), SUM(s.amount) "
            "FROM sales s GROUP BY s.region;"
        )
        db = Database()
        db.insert_rows(
            "sales", [("east", 10), ("east", 5), ("west", 7)]
        )
        maintainer = create_views(sql, catalog, db)
        maintainer.initialize()
        assert maintainer.relation("stats").as_set() == {
            ("east", 2, 15), ("west", 1, 7),
        }

    def test_union(self):
        catalog = (
            Catalog().declare_table("a", ["x"]).declare_table("b", ["x"])
        )
        sql = "CREATE VIEW v AS SELECT x FROM a UNION SELECT x FROM b;"
        db = Database()
        db.insert_rows("a", [(1,), (2,)])
        db.insert_rows("b", [(2,), (3,)])
        maintainer = create_views(sql, catalog, db, strategy="dred")
        maintainer.initialize()
        assert maintainer.relation("v").as_set() == {(1,), (2,), (3,)}

    def test_except(self):
        catalog = (
            Catalog().declare_table("a", ["x"]).declare_table("b", ["x"])
        )
        sql = "CREATE VIEW v AS SELECT x FROM a EXCEPT SELECT x FROM b;"
        db = Database()
        db.insert_rows("a", [(1,), (2,)])
        db.insert_rows("b", [(2,)])
        maintainer = create_views(sql, catalog, db, strategy="dred")
        maintainer.initialize()
        assert maintainer.relation("v").as_set() == {(1,)}
        maintainer.apply(Changeset().insert("b", (1,)))
        assert maintainer.relation("v").as_set() == set()

    def test_select_star(self):
        sql = "CREATE VIEW copy AS SELECT * FROM link;"
        program = translate_sql(link_catalog(), sql)
        assert program.arity_of("copy") == 2

    def test_arity_mismatch_in_union_rejected(self):
        catalog = (
            Catalog().declare_table("a", ["x"]).declare_table("b", ["x", "y"])
        )
        with pytest.raises(SchemaError, match="column counts"):
            translate_sql(
                catalog,
                "CREATE VIEW v AS SELECT x FROM a UNION SELECT x, y FROM b;",
            )

    def test_ambiguous_bare_column_rejected(self):
        sql = "CREATE VIEW v AS SELECT s FROM link r1, link r2;"
        with pytest.raises(SchemaError, match="ambiguous"):
            translate_sql(link_catalog(), sql)

    def test_aggregate_without_group_by_rejected_with_plain_column(self):
        sql = "CREATE VIEW v AS SELECT l.s, MIN(l.d) FROM link l;"
        with pytest.raises(SchemaError, match="GROUP BY"):
            translate_sql(link_catalog(), sql)

    def test_arithmetic_in_select(self):
        catalog = Catalog().declare_table("link", ["s", "d", "c"])
        sql = (
            "CREATE VIEW doubled AS SELECT l.s, l.c * 2 AS twice "
            "FROM link l;"
        )
        db = Database()
        db.insert_rows("link", [("a", "b", 3)])
        maintainer = create_views(sql, catalog, db)
        maintainer.initialize()
        assert maintainer.relation("doubled").as_set() == {("a", 6)}

    def test_inequality_correlated_not_exists_rejected(self):
        sql = (
            "CREATE VIEW v AS SELECT t.s, t.d FROM link t WHERE NOT EXISTS "
            "(SELECT * FROM link u WHERE u.s < t.s);"
        )
        with pytest.raises(SchemaError, match="correlate"):
            translate_sql(link_catalog(), sql)


class TestEndToEndMaintenance:
    def test_sql_views_maintained_incrementally(self, example_6_1_db):
        sql = HOP_SQL + (
            "CREATE VIEW tri_hop AS SELECT h.s, r.d FROM hop h, link r "
            "WHERE h.d = r.s;"
            "CREATE VIEW only_tri_hop AS SELECT t.s, t.d FROM tri_hop t "
            "WHERE NOT EXISTS (SELECT * FROM hop h WHERE h.s = t.s "
            "AND h.d = t.d);"
        )
        maintainer = create_views(sql, link_catalog(), example_6_1_db)
        maintainer.initialize()
        maintainer.apply(
            Changeset().delete("link", ("a", "b")).insert("link", ("k", "a"))
        )
        maintainer.consistency_check()

    def test_group_by_view_maintained(self):
        catalog = Catalog().declare_table("sales", ["region", "amount"])
        sql = (
            "CREATE VIEW totals AS SELECT s.region, SUM(s.amount) "
            "FROM sales s GROUP BY s.region;"
        )
        db = Database()
        db.insert_rows("sales", [("east", 10), ("west", 7)])
        maintainer = create_views(sql, catalog, db)
        maintainer.initialize()
        maintainer.apply(Changeset().insert("sales", ("east", 5)))
        assert maintainer.relation("totals").as_set() == {
            ("east", 15), ("west", 7),
        }
        maintainer.consistency_check()
