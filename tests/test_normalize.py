"""Tests for program normalization (aggregate isolation)."""

import pytest

from repro.core import names
from repro.core.normalize import normalize_program
from repro.datalog.ast import Aggregate, Literal
from repro.datalog.parser import parse_program


class TestNormalization:
    def test_solo_groupby_rule_kept_as_is(self):
        program = parse_program(
            "m(S, D, M) :- GROUPBY(hop(S, D, C), [S, D], M = MIN(C))."
        )
        normalized = normalize_program(program)
        assert normalized.program.rules == program.rules
        assert "m" in normalized.aggregate_rules

    def test_inline_aggregate_extracted(self):
        program = parse_program(
            "p(S, M) :- keep(S), GROUPBY(u(S2, C), [S2], M = MIN(C)), S = S2."
        )
        normalized = normalize_program(program)
        assert len(normalized.program) == 2
        synthetic = normalized.synthetic_predicates[0]
        assert synthetic.startswith(names.AGG)
        # The synthetic rule is a solo GROUPBY.
        synthetic_rule = normalized.aggregate_rules[synthetic]
        assert len(synthetic_rule.body) == 1
        assert isinstance(synthetic_rule.body[0], Aggregate)
        # The original rule now references the synthetic predicate.
        rewritten = normalized.program.rules_for("p")[0]
        replaced = [
            s for s in rewritten.body
            if isinstance(s, Literal) and s.predicate == synthetic
        ]
        assert len(replaced) == 1
        # Exported variables carried over: group var + result.
        assert {str(a) for a in replaced[0].args} == {"S2", "M"}

    def test_two_aggregates_in_one_rule(self):
        program = parse_program(
            "p(S, M1, M2) :- GROUPBY(u(S, C), [S], M1 = MIN(C)), "
            "GROUPBY(u(S, C2), [S], M2 = MAX(C2))."
        )
        normalized = normalize_program(program)
        assert len(normalized.synthetic_predicates) == 2
        assert len(normalized.program) == 3

    def test_unique_names_across_rules(self):
        program = parse_program(
            "p(S, M) :- q(S), GROUPBY(u(S2, C), [S2], M = MIN(C)), S = S2.\n"
            "p(S, M) :- r(S), GROUPBY(u(S2, C), [S2], M = MAX(C)), S = S2."
        )
        normalized = normalize_program(program)
        assert len(set(normalized.synthetic_predicates)) == 2

    def test_semantics_preserved(self):
        from repro.eval.stratified import materialize
        from repro.storage.database import Database

        source = (
            "p(S, M) :- keep(S), GROUPBY(u(S2, C), [S2], M = MIN(C)), S = S2."
        )
        db = Database()
        db.insert_rows("u", [("a", 5), ("a", 2), ("b", 9)])
        db.insert_rows("keep", [("a",)])
        original = materialize(parse_program(source), db)
        normalized = normalize_program(parse_program(source))
        rewritten = materialize(normalized.program, db)
        assert original["p"].as_set() == rewritten["p"].as_set() == {("a", 2)}

    def test_plain_program_untouched(self):
        program = parse_program("hop(X,Y) :- link(X,Z), link(Z,Y).")
        normalized = normalize_program(program)
        assert normalized.program.rules == program.rules
        assert normalized.aggregate_rules == {}

    def test_is_synthetic(self):
        program = parse_program(
            "p(S, M) :- q(S), GROUPBY(u(S2, C), [S2], M = MIN(C)), S = S2."
        )
        normalized = normalize_program(program)
        synthetic = normalized.synthetic_predicates[0]
        assert normalized.is_synthetic(synthetic)
        assert not normalized.is_synthetic("p")

    def test_original_preserved(self):
        program = parse_program(
            "p(S, M) :- q(S), GROUPBY(u(S2, C), [S2], M = MIN(C)), S = S2."
        )
        normalized = normalize_program(program)
        assert normalized.original is program


class TestNames:
    def test_prefixes_distinct(self):
        assert len({
            names.delta("p"), names.new("p"), names.delta_neg("p"),
            names.overestimate("p"), names.source("del", "p"),
            names.aggregate_predicate("p", 0),
        }) == 6

    def test_is_internal(self):
        assert names.is_internal(names.delta("p"))
        assert names.is_internal(names.new("p"))
        assert names.is_internal(names.overestimate("p"))
        assert names.is_internal(names.source("add", "p"))
        assert names.is_internal(names.aggregate_predicate("p", 1))
        assert not names.is_internal("p")
        assert not names.is_internal("link")

    def test_is_synthetic_aggregate(self):
        assert names.is_synthetic_aggregate(names.aggregate_predicate("p", 0))
        assert not names.is_synthetic_aggregate(names.delta("p"))
