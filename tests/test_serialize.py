"""Tests for JSON serialization of databases and changesets."""

import io

import pytest

from repro.errors import SchemaError
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.storage.serialize import (
    changeset_from_dict,
    changeset_to_dict,
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)


def _roundtrip(db: Database) -> Database:
    return database_from_dict(database_to_dict(db))


class TestDatabaseRoundtrip:
    def test_simple_rows(self):
        db = Database()
        db.insert_rows("link", [("a", "b"), ("b", "c")])
        assert _roundtrip(db) == db

    def test_multiplicities_preserved(self):
        db = Database()
        db.insert("orders", (1, "ada", 120), 3)
        restored = _roundtrip(db)
        assert restored.relation("orders").count((1, "ada", 120)) == 3

    def test_mixed_value_types(self):
        db = Database()
        db.insert("t", (1, "x", 2.5, True, None))
        assert _roundtrip(db) == db

    def test_tuple_values(self):
        """Grid/DAG workloads use tuple node ids; they must round-trip."""
        db = Database()
        db.insert("link", ((0, 0), (1, 0)))
        restored = _roundtrip(db)
        assert restored.relation("link").contains_positive(((0, 0), (1, 0)))

    def test_nested_tuple_values(self):
        db = Database()
        db.insert("t", ((("deep", 1), 2),))
        assert _roundtrip(db) == db

    def test_arity_preserved(self):
        db = Database()
        db.create_relation("p", 3)
        db.insert("p", (1, 2, 3))
        assert _roundtrip(db).relation("p").arity == 3

    def test_unserializable_value_rejected(self):
        db = Database()
        db.insert("t", (object(),))
        with pytest.raises(SchemaError, match="serializable"):
            database_to_dict(db)

    def test_bad_format_version_rejected(self):
        with pytest.raises(SchemaError, match="format"):
            database_from_dict({"format": 99, "relations": {}})

    def test_file_like_objects(self):
        db = Database()
        db.insert("p", ("x",))
        buffer = io.StringIO()
        save_database(db, buffer)
        buffer.seek(0)
        assert load_database(buffer) == db

    def test_path_roundtrip(self, tmp_path):
        db = Database()
        db.insert_rows("link", [("a", "b")])
        path = str(tmp_path / "snap.json")
        save_database(db, path)
        assert load_database(path) == db

    def test_empty_database(self):
        assert _roundtrip(Database()) == Database()


class TestChangesetRoundtrip:
    def test_signed_deltas(self):
        changes = (
            Changeset()
            .insert("p", ("a",), 2)
            .delete("p", ("b",))
            .insert("q", (1, 2))
        )
        restored = changeset_from_dict(changeset_to_dict(changes))
        assert restored.delta("p").to_dict() == {("a",): 2, ("b",): -1}
        assert restored.delta("q").to_dict() == {(1, 2): 1}

    def test_empty_changeset(self):
        restored = changeset_from_dict(changeset_to_dict(Changeset()))
        assert restored.is_empty()

    def test_bad_format_rejected(self):
        with pytest.raises(SchemaError):
            changeset_from_dict({"format": 0, "deltas": {}})

    def test_replay_equivalence(self):
        """Applying a reloaded changeset must equal applying the original."""
        db1, db2 = Database(), Database()
        for db in (db1, db2):
            db.insert_rows("link", [("a", "b"), ("b", "c")])
        changes = Changeset().delete("link", ("a", "b")).insert(
            "link", ("c", "d"))
        db1.apply_changeset(changes.copy())
        db2.apply_changeset(changeset_from_dict(changeset_to_dict(changes)))
        assert db1 == db2
