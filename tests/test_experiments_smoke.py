"""Smoke tests for the fast reproduction experiments.

The heavy experiments run via ``python -m repro.bench``; the cheap ones
(< 1s) run here too so regressions in the harness or in the claims they
check surface in the ordinary test suite.
"""

import pytest

from repro.bench.experiments import (
    e5_set_optimization,
    e11_recursive_counting,
    e12_aggregate_functions,
)


class TestE5Smoke:
    def test_set_mode_stops_at_stratum_one(self):
        result = e5_set_optimization()
        rows = {row["semantics"]: row for row in result.rows}
        assert rows["set"]["strata reached"] == 1
        assert rows["duplicate"]["strata reached"] == 6
        assert rows["set"]["suppressed tuples"] > 0
        assert rows["duplicate"]["suppressed tuples"] == 0

    def test_duplicate_mode_computes_more_deltas(self):
        result = e5_set_optimization()
        rows = {row["semantics"]: row for row in result.rows}
        assert (
            rows["duplicate"]["Δ tuples computed"]
            > rows["set"]["Δ tuples computed"]
        )


class TestE11Smoke:
    def test_outcomes(self):
        result = e11_recursive_counting()
        outcomes = [row["outcome"] for row in result.rows]
        assert outcomes[0] == "converged"
        assert "DivergenceError" in outcomes[1]

    def test_dag_counts_exceed_one(self):
        result = e11_recursive_counting()
        assert result.rows[0]["max count"] > 1  # real multi-path counting


class TestE12Smoke:
    def test_min_recomputes_others_do_not(self):
        result = e12_aggregate_functions()
        by_function = {row["function"]: row for row in result.rows}
        assert by_function["MIN"]["recomputes"] > 0
        for function in ("SUM", "COUNT", "AVG", "VAR"):
            assert by_function[function]["recomputes"] == 0

    def test_inserts_always_incremental(self):
        result = e12_aggregate_functions()
        for row in result.rows:
            assert row["incremental"] > 0
