"""Tests for queries, transactions, and subscriptions (active databases)."""

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.errors import (
    MaintenanceError,
    SafetyError,
    UnknownRelationError,
)
from repro.storage.changeset import Changeset

from conftest import HOP_SRC, HOP_TRI_SRC, TC_SRC, database_with, EXAMPLE_1_1_LINKS


@pytest.fixture
def maintainer(example_1_1_db):
    return ViewMaintainer.from_source(
        HOP_TRI_SRC, example_1_1_db
    ).initialize()


class TestQuery:
    def test_single_literal(self, maintainer):
        results = maintainer.query("hop(a, X)")
        assert results == [{"X": "c"}, {"X": "e"}]

    def test_conjunction(self, maintainer):
        results = maintainer.query("link(a, X), link(X, Y)")
        assert {"X": "b", "Y": "c"} in results
        assert {"X": "d", "Y": "c"} in results

    def test_negation_in_query(self, maintainer):
        results = maintainer.query("hop(a, X), not link(a, X)")
        assert results == [{"X": "c"}, {"X": "e"}]

    def test_comparison_in_query(self):
        db = database_with([("a", "b", 4), ("a", "c", 9)])
        m = ViewMaintainer.from_source(
            "edge(X, Y, C) :- link(X, Y, C).", db
        ).initialize()
        assert m.query("edge(X, Y, C), C > 5") == [
            {"X": "a", "Y": "c", "C": 9}
        ]

    def test_ground_query(self, maintainer):
        assert maintainer.query("hop(a, c)") == [{}]
        assert maintainer.query("hop(a, zzz)") == []

    def test_ask(self, maintainer):
        assert maintainer.ask("hop(a, c)")
        assert not maintainer.ask("hop(c, a)")

    def test_duplicates_collapsed(self, maintainer):
        # hop(a, c) has two derivations but one solution for X=c.
        assert maintainer.query("hop(a, X), link(X, h)") == []
        results = maintainer.query("hop(a, X)")
        assert len(results) == len({tuple(r.items()) for r in results})

    def test_query_sees_maintained_state(self, maintainer):
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert maintainer.query("hop(a, X)") == [{"X": "c"}]

    def test_unsafe_query_rejected(self, maintainer):
        with pytest.raises(SafetyError):
            maintainer.query("not hop(a, X)")

    def test_query_before_initialize_rejected(self, example_6_1_db):
        m = ViewMaintainer.from_source(HOP_SRC, example_6_1_db)
        with pytest.raises(MaintenanceError):
            m.query("hop(a, X)")


class TestTransaction:
    def test_commit_applies_once(self, maintainer):
        txn = maintainer.transaction()
        txn.insert("link", ("c", "f")).insert("link", ("e", "g"))
        report = txn.commit()
        assert report.total_changes() > 0
        assert ("b", "f") in maintainer.relation("hop")
        assert ("b", "g") in maintainer.relation("hop")

    def test_rollback_discards(self, maintainer):
        txn = maintainer.transaction()
        txn.insert("link", ("c", "f"))
        txn.rollback()
        assert ("c", "f") not in maintainer.relation("link")
        with pytest.raises(MaintenanceError, match="closed"):
            txn.commit()

    def test_context_manager_commits(self, maintainer):
        with maintainer.transaction() as txn:
            txn.insert("link", ("c", "f"))
        assert txn.report is not None
        assert ("b", "f") in maintainer.relation("hop")

    def test_context_manager_rolls_back_on_error(self, maintainer):
        with pytest.raises(RuntimeError):
            with maintainer.transaction() as txn:
                txn.insert("link", ("c", "f"))
                raise RuntimeError("boom")
        assert ("c", "f") not in maintainer.relation("link")
        maintainer.consistency_check()

    def test_update_staging(self, maintainer):
        with maintainer.transaction() as txn:
            txn.update("link", ("a", "b"), ("a", "x"))
        assert ("a", "x") in maintainer.relation("link")
        assert ("a", "b") not in maintainer.relation("link")
        maintainer.consistency_check()

    def test_double_commit_rejected(self, maintainer):
        txn = maintainer.transaction().insert("link", ("c", "f"))
        txn.commit()
        with pytest.raises(MaintenanceError):
            txn.commit()

    def test_staged_inspection(self, maintainer):
        txn = maintainer.transaction().insert("link", ("c", "f"))
        assert txn.staged.insertion_count() == 1
        txn.rollback()


class TestSubscriptions:
    def test_callback_receives_delta(self, maintainer):
        events = []
        maintainer.subscribe(
            "hop", lambda view, delta: events.append((view, delta.to_dict()))
        )
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert events == [
            ("hop", {("a", "c"): -1, ("a", "e"): -1}),
        ]

    def test_no_callback_when_view_unchanged(self, maintainer):
        events = []
        maintainer.subscribe("tri_hop", lambda v, d: events.append(v))
        maintainer.apply(Changeset().insert("link", ("q1", "q2")))
        assert events == []

    def test_multiple_subscribers(self, maintainer):
        hits = []
        maintainer.subscribe("hop", lambda v, d: hits.append("first"))
        maintainer.subscribe("hop", lambda v, d: hits.append("second"))
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert hits == ["first", "second"]

    def test_unsubscribe(self, maintainer):
        hits = []
        handle = maintainer.subscribe("hop", lambda v, d: hits.append(1))
        maintainer.unsubscribe(handle)
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert hits == []

    def test_unsubscribe_twice_rejected(self, maintainer):
        handle = maintainer.subscribe("hop", lambda v, d: None)
        maintainer.unsubscribe(handle)
        with pytest.raises(MaintenanceError):
            maintainer.unsubscribe(handle)

    def test_unknown_view_rejected(self, maintainer):
        with pytest.raises(UnknownRelationError):
            maintainer.subscribe("ghost", lambda v, d: None)

    def test_dred_strategy_notifies_too(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            TC_SRC, example_1_1_db, strategy="dred"
        ).initialize()
        events = []
        maintainer.subscribe("tc", lambda v, d: events.append(d.to_dict()))
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert len(events) == 1
        assert all(count == -1 for count in events[0].values())

    def test_alter_notifies(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            TC_SRC, example_1_1_db, strategy="dred"
        ).initialize()
        events = []
        maintainer.subscribe("tc", lambda v, d: events.append(d.to_dict()))
        maintainer.alter(add=["tc(X, Y) :- link(Y, X)."])
        assert events and all(
            count == 1 for count in events[0].values()
        )

    def test_transaction_commit_triggers_subscribers(self, maintainer):
        events = []
        maintainer.subscribe("hop", lambda v, d: events.append(v))
        with maintainer.transaction() as txn:
            txn.insert("link", ("c", "f"))
        assert events == ["hop"]


class TestRetryBackoffJitter:
    """Failed deliveries retry with jittered exponential backoff.

    The k-th pause is drawn uniformly from [b*2^k, b*2^k*(1+jitter)] —
    bounded below by the exponential schedule, bounded above by the
    jitter factor, and (with overwhelming probability for a seeded RNG)
    not identical across retries, so subscribers that failed on the
    same pass don't hammer their shared backend in lockstep.
    """

    def hub(self, **kwargs):
        from repro.core.active import SubscriptionHub

        pauses = []
        hub = SubscriptionHub(sleep=pauses.append, **kwargs)
        return hub, pauses

    def always_failing(self, hub):
        calls = []

        def callback(view, delta):
            calls.append(view)
            raise RuntimeError("backend down")

        hub.subscribe("hop", callback)
        return calls

    def delta(self):
        from repro.storage.relation import CountedRelation

        delta = CountedRelation("Δhop", 2)
        delta.add(("a", "c"), 1)
        return delta

    def test_pauses_bounded_by_jittered_exponential(self):
        base, jitter = 0.01, 0.25
        hub, pauses = self.hub(
            max_attempts=5, backoff_seconds=base, jitter=jitter, seed=7
        )
        calls = self.always_failing(hub)
        hub.notify({"hop": self.delta()})

        assert len(calls) == 5
        assert len(pauses) == 4  # no pause after the final attempt
        for k, pause in enumerate(pauses):
            floor = base * 2 ** k
            assert floor <= pause <= floor * (1.0 + jitter), (
                f"pause {k} = {pause} outside "
                f"[{floor}, {floor * (1 + jitter)}]"
            )

    def test_jitter_desynchronizes_retries(self):
        hub, pauses = self.hub(
            max_attempts=4, backoff_seconds=0.01, jitter=0.5, seed=11
        )
        self.always_failing(hub)
        hub.notify({"hop": self.delta()})

        # Normalize out the exponential doubling: identical ratios would
        # mean every retry waits the same jitter multiple (lockstep).
        ratios = [pause / (0.01 * 2 ** k) for k, pause in enumerate(pauses)]
        assert len(set(ratios)) > 1
        assert all(1.0 <= ratio <= 1.5 for ratio in ratios)

    def test_seed_makes_schedule_reproducible(self):
        schedules = []
        for _ in range(2):
            hub, pauses = self.hub(
                max_attempts=4, backoff_seconds=0.01, jitter=0.5, seed=3
            )
            self.always_failing(hub)
            hub.notify({"hop": self.delta()})
            schedules.append(tuple(pauses))
        assert schedules[0] == schedules[1]

    def test_zero_jitter_is_exact_exponential(self):
        hub, pauses = self.hub(
            max_attempts=4, backoff_seconds=0.01, jitter=0.0
        )
        self.always_failing(hub)
        hub.notify({"hop": self.delta()})
        assert pauses == [0.01, 0.02, 0.04]

    def test_negative_jitter_rejected(self):
        from repro.core.active import SubscriptionHub

        with pytest.raises(ValueError, match="jitter"):
            SubscriptionHub(jitter=-0.1)
