"""Tests for the changeset journal and snapshot + replay recovery."""

import json

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.errors import MaintenanceError
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.storage.journal import Journal, recover
from repro.storage.serialize import save_database

from conftest import HOP_TRI_SRC, database_with, EXAMPLE_1_1_LINKS


@pytest.fixture
def journal(tmp_path):
    return Journal(str(tmp_path / "changes.jsonl"))


class TestJournalBasics:
    def test_append_and_replay(self, journal):
        journal.append(Changeset().insert("link", ("a", "b")))
        journal.append(Changeset().delete("link", ("a", "b")))
        replayed = list(journal.replay())
        assert len(replayed) == 2
        assert replayed[0].delta("link").to_dict() == {("a", "b"): 1}
        assert replayed[1].delta("link").to_dict() == {("a", "b"): -1}

    def test_sequence_numbers_persist_across_instances(self, journal):
        journal.append(Changeset().insert("p", (1,)))
        reopened = Journal(journal.path)
        assert len(reopened) == 1
        reopened.append(Changeset().insert("p", (2,)))
        assert len(list(reopened.replay())) == 2

    def test_replay_after_offset(self, journal):
        for i in range(4):
            journal.append(Changeset().insert("p", (i,)))
        tail = list(journal.replay(after=2))
        assert len(tail) == 2
        assert tail[0].delta("p").to_dict() == {(2,): 1}

    def test_torn_tail_tolerated(self, journal):
        journal.append(Changeset().insert("p", (1,)))
        journal.append(Changeset().insert("p", (2,)))
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "changes": {"fo')  # crash mid-write
        assert len(list(Journal(journal.path).replay())) == 2

    def test_append_after_torn_tail_not_glued_to_fragment(self, journal):
        journal.append(Changeset().insert("p", (1,)))
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "changes": {"fo')  # crash mid-write
        reopened = Journal(journal.path)  # trims the torn fragment
        reopened.append(Changeset().insert("p", (2,)))
        replayed = list(Journal(journal.path).replay())
        assert [c.delta("p").to_dict() for c in replayed] == [
            {(1,): 1}, {(2,): 1},
        ]

    def test_mid_file_damage_not_silently_truncated(self, journal):
        journal.append(Changeset().insert("p", (1,)))
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        journal.append(Changeset().insert("p", (2,)))
        journal.close()
        # The valid entry after the damage must survive reopen...
        with open(journal.path, "r", encoding="utf-8") as handle:
            assert '"seq":2' in handle.read().replace(" ", "")
        # ...and strict iteration reports the corruption.
        from repro.errors import SchemaError

        reopened = Journal(journal.path)
        with pytest.raises(SchemaError):
            list(reopened._iter_entries(strict=True))

    def test_truncate(self, journal):
        journal.append(Changeset().insert("p", (1,)))
        journal.truncate()
        assert len(journal) == 0
        assert list(journal.replay()) == []

    def test_empty_journal(self, journal):
        assert list(journal.replay()) == []
        assert len(journal) == 0


class TestDurabilityPolicy:
    def test_persistent_handle_reused_across_appends(self, journal):
        journal.append(Changeset().insert("p", (1,)))
        handle = journal._handle
        journal.append(Changeset().insert("p", (2,)))
        assert journal._handle is handle
        journal.close()
        assert journal._handle is None
        journal.append(Changeset().insert("p", (3,)))  # reopens lazily
        assert len(list(journal.replay())) == 3

    def test_fsync_false_with_explicit_sync(self, tmp_path):
        journal = Journal(str(tmp_path / "lazy.jsonl"), fsync=False)
        journal.append(Changeset().insert("p", (1,)))
        journal.sync()  # group-commit point
        journal.close()
        assert len(list(Journal(journal.path).replay())) == 1

    def test_context_manager_closes_handle(self, tmp_path):
        with Journal(str(tmp_path / "ctx.jsonl")) as journal:
            journal.append(Changeset().insert("p", (1,)))
            assert journal._handle is not None
        assert journal._handle is None


class TestSegmentRotation:
    def test_rotation_archives_and_replay_spans_segments(self, tmp_path):
        journal = Journal(str(tmp_path / "seg.jsonl"), segment_entries=2)
        for i in range(5):
            journal.append(Changeset().insert("p", (i,)))
        archived = journal._archived_paths()
        assert len(archived) == 2
        assert archived[0].endswith(".seg" + "1".zfill(12))
        assert archived[1].endswith(".seg" + "3".zfill(12))
        replayed = list(journal.replay())
        assert [c.delta("p").to_dict() for c in replayed] == [
            {(i,): 1} for i in range(5)
        ]

    def test_sequence_continues_across_reopen_with_segments(self, tmp_path):
        journal = Journal(str(tmp_path / "seg.jsonl"), segment_entries=2)
        for i in range(3):
            journal.append(Changeset().insert("p", (i,)))
        reopened = Journal(journal.path, segment_entries=2)
        assert len(reopened) == 3
        reopened.append(Changeset().insert("p", (3,)))
        assert len(list(reopened.replay())) == 4

    def test_replay_after_skips_covered_segments(self, tmp_path):
        journal = Journal(str(tmp_path / "seg.jsonl"), segment_entries=2)
        for i in range(6):
            journal.append(Changeset().insert("p", (i,)))
        tail = list(journal.replay(after=4))
        assert [c.delta("p").to_dict() for c in tail] == [{(4,): 1}, {(5,): 1}]

    def test_prune_removes_only_covered_segments(self, tmp_path):
        journal = Journal(str(tmp_path / "seg.jsonl"), segment_entries=2)
        for i in range(6):
            journal.append(Changeset().insert("p", (i,)))
        assert len(journal._archived_paths()) == 2  # [1-2], [3-4]; active [5-6]
        removed = journal.prune(upto=2)
        assert len(removed) == 1
        removed = journal.prune(upto=6)  # active segment is never pruned
        assert len(removed) == 1
        assert journal._archived_paths() == []
        assert len(list(journal.replay(after=4))) == 2

    def test_truncate_removes_archived_segments_too(self, tmp_path):
        journal = Journal(str(tmp_path / "seg.jsonl"), segment_entries=1)
        for i in range(3):
            journal.append(Changeset().insert("p", (i,)))
        journal.truncate()
        assert journal._archived_paths() == []
        assert len(journal) == 0
        assert list(journal.replay()) == []

    def test_torn_tail_only_tolerated_in_active_segment(self, tmp_path):
        journal = Journal(str(tmp_path / "seg.jsonl"), segment_entries=2)
        for i in range(3):
            journal.append(Changeset().insert("p", (i,)))
        archived = journal._archived_paths()[0]
        journal.close()
        with open(archived, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 99, "chan')  # corruption mid-log
        with pytest.raises(Exception):
            list(Journal(journal.path, segment_entries=2).replay())

    def test_torn_active_tail_trimmed_after_rotation(self, tmp_path):
        journal = Journal(str(tmp_path / "seg.jsonl"), segment_entries=2)
        for i in range(3):
            journal.append(Changeset().insert("p", (i,)))
        journal.close()
        # Crash mid-append into the active segment (one entry + fragment).
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 4, "changes": {"fo')
        reopened = Journal(journal.path, segment_entries=2)
        assert len(reopened) == 3  # fragment trimmed, archive intact
        reopened.append(Changeset().insert("p", (3,)))
        replayed = list(reopened.replay())
        assert [c.delta("p").to_dict() for c in replayed] == [
            {(i,): 1} for i in range(4)
        ]

    def test_torn_fragment_as_entire_active_segment(self, tmp_path):
        journal = Journal(str(tmp_path / "seg.jsonl"), segment_entries=10)
        journal.append(Changeset().insert("p", (0,)))
        journal.append(Changeset().insert("p", (1,)))
        journal.rotate()  # archive both; no active file remains
        # The next append crashes before finishing its first line.
        with open(journal.path, "w", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "changes": {"fo')
        reopened = Journal(journal.path, segment_entries=10)
        # Trim empties the active file; archived segments still pin
        # the sequence, so the next append is seq 3, not seq 1.
        assert len(reopened) == 2
        assert reopened.append(Changeset().insert("p", (2,))) == 3
        replayed = list(reopened.replay())
        assert [c.delta("p").to_dict() for c in replayed] == [
            {(i,): 1} for i in range(3)
        ]

    def test_segment_entries_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Journal(str(tmp_path / "bad.jsonl"), segment_entries=0)


class TestFailedAppendRewind:
    """A failed append truncates its own partial line (guard retries
    must never glue a duplicate entry onto a torn fragment)."""

    def test_failed_fsync_leaves_no_torn_line(self, journal, monkeypatch):
        import repro.storage.journal as journal_module

        journal.append(Changeset().insert("p", (1,)))
        real_fsync = journal_module.os.fsync
        calls = {"n": 0}

        def flaky_fsync(fd):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("fsync: disk wobble")
            return real_fsync(fd)

        monkeypatch.setattr(journal_module.os, "fsync", flaky_fsync)
        with pytest.raises(OSError, match="disk wobble"):
            journal.append(Changeset().insert("p", (2,)))

        # The partial line was rewound: the file holds exactly the one
        # durable entry, byte-clean.
        with open(journal.path, "rb") as handle:
            content = handle.read()
        assert content.count(b"\n") == 1
        assert len(journal) == 1

        # A retry of the same append succeeds without duplication.
        journal.append(Changeset().insert("p", (2,)))
        replayed = list(Journal(journal.path).replay())
        assert [c.delta("p").to_dict() for c in replayed] == [
            {(1,): 1}, {(2,): 1},
        ]

    def test_rewind_failure_degrades_to_torn_tail(
        self, journal, monkeypatch
    ):
        import repro.storage.journal as journal_module

        journal.append(Changeset().insert("p", (1,)))
        monkeypatch.setattr(
            journal_module.os,
            "fsync",
            lambda fd: (_ for _ in ()).throw(OSError("fsync down")),
        )
        original_open = open

        def no_rewind(path, mode="r", **kwargs):
            if mode == "rb+":
                raise OSError("cannot reopen")
            return original_open(path, mode, **kwargs)

        monkeypatch.setattr("builtins.open", no_rewind)
        with pytest.raises(OSError, match="fsync down"):
            journal.append(Changeset().insert("p", (2,)))
        monkeypatch.undo()

        # The un-fsynced line survives on disk, but reopening trims or
        # accepts it exactly like any crash tail — replay stays sane.
        replayed = list(Journal(journal.path).replay())
        assert replayed[0].delta("p").to_dict() == {(1,): 1}
        assert len(replayed) <= 2


class TestMaintainerIntegration:
    def test_applies_are_journaled(self, journal, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_1_1_db
        ).initialize()
        maintainer.attach_journal(journal)
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        maintainer.apply(Changeset().insert("link", ("x", "y")))
        assert len(journal) == 2

    def test_failed_apply_not_journaled(self, journal, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_1_1_db
        ).initialize()
        maintainer.attach_journal(journal)
        with pytest.raises(MaintenanceError):
            maintainer.apply(Changeset().delete("link", ("no", "pe")))
        assert len(journal) == 0

    def test_empty_apply_not_journaled(self, journal, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_1_1_db
        ).initialize()
        maintainer.attach_journal(journal)
        maintainer.apply(Changeset())
        assert len(journal) == 0

    def test_alter_refused_while_journaled(self, journal, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_1_1_db
        ).initialize()
        maintainer.attach_journal(journal)
        with pytest.raises(MaintenanceError, match="journal"):
            maintainer.alter(add=["hop(X, Y) :- link(Y, X)."])
        maintainer.detach_journal()
        maintainer.alter(add=["hop(X, Y) :- link(Y, X)."])

    def test_lifetime_stats(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_1_1_db
        ).initialize()
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        maintainer.apply(Changeset().insert("link", ("a", "b")))
        assert maintainer.lifetime.passes == 2
        assert maintainer.lifetime.tuples_changed > 0
        assert maintainer.lifetime.seconds > 0


class TestRecovery:
    def test_snapshot_plus_journal_recovers_full_state(self, tmp_path):
        snapshot = str(tmp_path / "snap.json")
        journal = Journal(str(tmp_path / "log.jsonl"))

        db = database_with(EXAMPLE_1_1_LINKS)
        save_database(db, snapshot)

        live = ViewMaintainer.from_source(HOP_TRI_SRC, db).initialize()
        live.attach_journal(journal)
        live.apply(Changeset().delete("link", ("a", "b")))
        live.apply(Changeset().insert("link", ("c", "q")))
        live.apply(Changeset().update("link", ("a", "d"), ("a", "z")))

        recovered = recover(
            lambda database: ViewMaintainer.from_source(
                HOP_TRI_SRC, database
            ),
            snapshot,
            Journal(journal.path),
        )
        for view in live.view_names():
            assert (
                recovered.relation(view).to_dict()
                == live.relation(view).to_dict()
            )
        assert recovered.relation("link").to_dict() == live.relation(
            "link").to_dict()
        recovered.consistency_check()

    def test_recovery_survives_torn_tail(self, tmp_path):
        snapshot = str(tmp_path / "snap.json")
        journal_path = str(tmp_path / "log.jsonl")
        db = database_with(EXAMPLE_1_1_LINKS)
        save_database(db, snapshot)
        live = ViewMaintainer.from_source(HOP_TRI_SRC, db).initialize()
        live.attach_journal(Journal(journal_path))
        live.apply(Changeset().delete("link", ("a", "b")))
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "chan')  # simulated crash
        recovered = recover(
            lambda database: ViewMaintainer.from_source(
                HOP_TRI_SRC, database
            ),
            snapshot,
            Journal(journal_path),
        )
        assert recovered.relation("hop").to_dict() == {("a", "c"): 1}
