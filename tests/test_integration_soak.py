"""Long-running integration soaks: mixed operations, always consistent.

These tests drive each maintainer through long randomized sequences of
heterogeneous operations — tuple batches, transactions, rule changes,
queries — validating against full recomputation throughout.  They are
the closest thing to a production workload the suite has.
"""

import random

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.sql import Catalog, create_views
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.workloads import random_graph, with_costs

from conftest import HOP_TRI_SRC, ONLY_TRI_SRC, TC_SRC, database_with

pytestmark = pytest.mark.soak


def _random_changes(rng, current, node_count, relation="link", costs=None):
    changes = Changeset()
    removed = []
    if current and rng.random() < 0.7:
        victim = rng.choice(sorted(current))
        changes.delete(relation, victim)
        removed.append(victim)
    for _ in range(rng.randrange(3)):
        a, b = rng.randrange(node_count), rng.randrange(node_count)
        key = (a, b)
        if a == b or any(row[:2] == key for row in current):
            continue
        row = key if costs is None else key + (rng.randint(*costs),)
        if row in set(changes.delta(relation).rows()):
            continue
        changes.insert(relation, row)
        current.add(row)
    for victim in removed:
        current.discard(victim)
    return changes


@pytest.mark.parametrize("semantics", ["set", "duplicate"])
def test_counting_soak(semantics):
    rng = random.Random(2024)
    edges = set(random_graph(15, 45, seed=1))
    maintainer = ViewMaintainer.from_source(
        HOP_TRI_SRC, database_with(sorted(edges)), semantics=semantics
    ).initialize()
    for step in range(25):
        changes = _random_changes(rng, edges, 15)
        if changes.is_empty():
            continue
        maintainer.apply(changes)
        if step % 5 == 0:
            maintainer.consistency_check()
    maintainer.consistency_check()


def test_dred_soak_with_negation():
    rng = random.Random(99)
    edges = set(random_graph(10, 20, seed=2))
    maintainer = ViewMaintainer.from_source(
        ONLY_TRI_SRC, database_with(sorted(edges)), strategy="dred"
    ).initialize()
    for step in range(20):
        changes = _random_changes(rng, edges, 10)
        if changes.is_empty():
            continue
        maintainer.apply(changes)
        if step % 4 == 0:
            maintainer.consistency_check()
    maintainer.consistency_check()


def test_mixed_operations_soak():
    """Tuples + transactions + rule changes + queries, interleaved."""
    rng = random.Random(7)
    edges = set(random_graph(12, 24, seed=3))
    maintainer = ViewMaintainer.from_source(
        TC_SRC, database_with(sorted(edges)), strategy="dred"
    ).initialize()
    extra_rule_active = False
    for step in range(18):
        op = rng.randrange(4)
        if op == 0:
            changes = _random_changes(rng, edges, 12)
            if not changes.is_empty():
                maintainer.apply(changes)
        elif op == 1:
            with maintainer.transaction() as txn:
                a, b = rng.randrange(12), rng.randrange(12)
                if a != b and (a, b) not in edges:
                    txn.insert("link", (a, b))
                    edges.add((a, b))
                else:
                    txn.rollback()
        elif op == 2:
            if extra_rule_active:
                maintainer.alter(remove=["tc(X, Y) :- link(Y, X)."])
            else:
                maintainer.alter(add=["tc(X, Y) :- link(Y, X)."])
            extra_rule_active = not extra_rule_active
        else:
            results = maintainer.query("tc(X, Y), not link(X, Y)")
            assert all(
                (r["X"], r["Y"]) not in edges for r in results
            )
        maintainer.consistency_check()


def test_sql_warehouse_soak():
    rng = random.Random(11)
    catalog = Catalog().declare_table("link", ["s", "d", "c"])
    sql = """
    CREATE VIEW hop AS
    SELECT a.s, b.d, a.c + b.c AS cost FROM link a, link b WHERE a.d = b.s;
    CREATE VIEW cheapest AS
    SELECT h.s, h.d, MIN(h.cost) FROM hop h GROUP BY h.s, h.d;
    """
    edges = set(with_costs(random_graph(10, 22, seed=4), 1, 9, seed=4))
    db = Database()
    db.insert_rows("link", sorted(edges))
    maintainer = create_views(sql, catalog, db).initialize()
    for step in range(15):
        changes = _random_changes(rng, edges, 10, costs=(1, 9))
        if changes.is_empty():
            continue
        maintainer.apply(changes)
        if step % 3 == 0:
            maintainer.consistency_check()
    maintainer.consistency_check()


def test_recursive_counting_soak_on_dag():
    from repro.core.recursive_counting import RecursiveCountingView
    from repro.datalog.parser import parse_program

    rng = random.Random(13)
    # DAG: only edges i → j with i < j.
    edges = {(i, j) for i, j in random_graph(10, 20, seed=5) if i < j}
    view = RecursiveCountingView(
        parse_program(TC_SRC), database_with(sorted(edges))
    ).initialize()
    for _step in range(12):
        changes = Changeset()
        if edges and rng.random() < 0.6:
            victim = rng.choice(sorted(edges))
            changes.delete("link", victim)
            edges.discard(victim)
        else:
            a, b = sorted(rng.sample(range(10), 2))
            if (a, b) not in edges:
                changes.insert("link", (a, b))
                edges.add((a, b))
        if changes.is_empty():
            continue
        view.apply(changes)
    # Final cross-check against a fresh counted fixpoint.
    fresh = RecursiveCountingView(
        parse_program(TC_SRC), database_with(sorted(edges))
    ).initialize()
    assert view.views["tc"].to_dict() == fresh.views["tc"].to_dict()
