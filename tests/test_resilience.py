"""Crash-safety tests: shadow-commit apply, checkpoints, self-healing.

The contract under test (docs/operations.md): any exception raised
during a maintenance pass — at *any* crash point — leaves the
maintainer's whole state (base relations, view counts, aggregate group
states, the journal) byte-identical to the pre-pass state, and a
subsequent retry produces exactly the state a never-crashed run would
have.  Faults are injected deterministically at every named phase of
both algorithms via the per-maintainer :class:`FaultInjector`.
"""

import os

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.errors import BudgetExceeded, DivergenceError, MaintenanceError
from repro.guard import GuardPolicy, MaintenanceBudget
from repro.resilience import PHASES, FaultInjector, InjectedFault, UndoLog
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.storage.journal import Journal, recover
from repro.storage.relation import CountedRelation
from repro.storage.serialize import load_snapshot, snapshot_watermark

from conftest import EXAMPLE_1_1_LINKS, HOP_TRI_SRC, TC_SRC, database_with

pytestmark = pytest.mark.faults

#: Nonrecursive program with a join chain and an aggregate — exercises
#: counting's delta derivation, count merge, and Algorithm 6.1.
COUNTING_SRC = """
hop(X, Y) :- link(X, Z), link(Z, Y).
tri_hop(X, Y) :- hop(X, Z), link(Z, Y).
mn(S, M) :- GROUPBY(link(S, C), [S], M = MIN(C)).
"""

#: Recursive program with the same aggregate — exercises DRed's
#: overestimate/rederive/insert steps plus Algorithm 6.1.
DRED_SRC = """
tc(X, Y) :- link(X, Y).
tc(X, Y) :- tc(X, Z), link(Z, Y).
mn(S, M) :- GROUPBY(link(S, C), [S], M = MIN(C)).
"""

#: Every injectable phase each strategy actually reaches for a mixed
#: delete+insert changeset against the programs above.
STRATEGY_PHASES = [
    ("counting", COUNTING_SRC, "delta_derivation"),
    ("counting", COUNTING_SRC, "aggregate_merge"),
    ("counting", COUNTING_SRC, "count_merge"),
    ("counting", COUNTING_SRC, "journal_append"),
    ("dred", DRED_SRC, "delta_derivation"),
    ("dred", DRED_SRC, "rederivation"),
    ("dred", DRED_SRC, "aggregate_merge"),
    ("dred", DRED_SRC, "count_merge"),
    ("dred", DRED_SRC, "journal_append"),
    ("bf", DRED_SRC, "delta_derivation"),
    ("bf", DRED_SRC, "backward_check"),
    ("bf", DRED_SRC, "forward_delete"),
    ("bf", DRED_SRC, "aggregate_merge"),
    ("bf", DRED_SRC, "count_merge"),
    ("bf", DRED_SRC, "journal_append"),
]


def build(source, strategy, semantics="set", links=EXAMPLE_1_1_LINKS):
    maintainer = ViewMaintainer.from_source(
        source, database_with(links), strategy=strategy, semantics=semantics
    )
    return maintainer.initialize()


def fingerprint(maintainer):
    """The complete observable state: bases, view counts, group states."""
    return {
        "base": {
            name: maintainer.database.relation(name).to_dict()
            for name in sorted(maintainer.database.names())
        },
        "views": {
            name: relation.to_dict()
            for name, relation in sorted(maintainer.views.items())
        },
        "agg": {
            name: dict(view._states)
            for name, view in sorted(maintainer.aggregate_views.items())
        },
    }


MIXED = Changeset().delete("link", ("a", "b")).insert("link", ("e", "a"))


class TestCrashPointAtomicity:
    """Arm every phase, crash there, verify pre-pass state survives."""

    @pytest.mark.parametrize("strategy, source, phase", STRATEGY_PHASES)
    def test_fault_leaves_state_identical(
        self, strategy, source, phase, tmp_path
    ):
        maintainer = build(source, strategy)
        journal = Journal(str(tmp_path / "log.jsonl"))
        maintainer.attach_journal(journal)
        before = fingerprint(maintainer)

        maintainer.faults.arm(phase)
        with pytest.raises(InjectedFault):
            maintainer.apply(MIXED)

        assert maintainer.faults.fired == [phase]
        assert fingerprint(maintainer) == before
        assert len(journal) == 0 and list(journal.replay()) == []
        assert maintainer.lifetime.passes == 0
        maintainer.consistency_check()

    @pytest.mark.parametrize("strategy, source, phase", STRATEGY_PHASES)
    def test_retry_after_fault_matches_clean_run(self, strategy, source, phase):
        maintainer = build(source, strategy)
        control = build(source, strategy)

        maintainer.faults.arm(phase)
        with pytest.raises(InjectedFault):
            maintainer.apply(MIXED)
        maintainer.apply(MIXED)  # one-shot plan: retry runs clean
        control.apply(MIXED)

        assert fingerprint(maintainer) == fingerprint(control)
        maintainer.consistency_check()

    def test_arbitrary_exception_also_rolls_back(self):
        maintainer = build(COUNTING_SRC, "counting")
        before = fingerprint(maintainer)
        maintainer.faults.arm("count_merge", exception=RuntimeError("disk on fire"))
        with pytest.raises(RuntimeError, match="disk on fire"):
            maintainer.apply(MIXED)
        assert fingerprint(maintainer) == before

    def test_duplicate_semantics_counts_restored_exactly(self):
        maintainer = build(COUNTING_SRC, "counting", semantics="duplicate")
        maintainer.apply(Changeset().insert("link", ("a", "b")))  # count 2
        before = fingerprint(maintainer)
        maintainer.faults.arm("count_merge")
        with pytest.raises(InjectedFault):
            maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert fingerprint(maintainer) == before

    def test_crash_safety_can_be_disabled(self):
        # mvcc=False too: with MVCC on, aborting the uncommitted epoch
        # restores row state even without an undo log.
        db = Database(mvcc=False)
        db.insert_rows("link", EXAMPLE_1_1_LINKS)
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC,
            db,
            crash_safe=False,
        ).initialize()
        before = fingerprint(maintainer)
        maintainer.faults.arm("count_merge")
        with pytest.raises(InjectedFault):
            maintainer.apply(Changeset().delete("link", ("a", "b")))
        # No undo log: the base relations were already mutated.
        assert fingerprint(maintainer) != before

    def test_validation_failure_mid_changeset_rolls_back_dred(self):
        """Regression: DRed used to mutate earlier relations before a
        later relation's overdeletion check fired (torn apply)."""
        db = database_with(EXAMPLE_1_1_LINKS)
        db.insert_rows("blocked", [("x",)])
        maintainer = ViewMaintainer.from_source(
            TC_SRC + "safe(X) :- link(X, Y), not blocked(X).\n", db
        ).initialize()
        before = fingerprint(maintainer)
        changes = (
            Changeset()
            .delete("link", ("a", "b"))      # valid, applied first
            .delete("blocked", ("never",))   # invalid: not stored
        )
        with pytest.raises(MaintenanceError, match="not stored"):
            maintainer.apply(changes)
        assert fingerprint(maintainer) == before
        maintainer.consistency_check()

    def test_counting_overdeletion_rolls_back(self):
        maintainer = build(COUNTING_SRC, "counting")
        before = fingerprint(maintainer)
        changes = (
            Changeset()
            .insert("link", ("q", "r"))
            .delete("link", ("no", "pe"))
        )
        with pytest.raises(MaintenanceError):
            maintainer.apply(changes)
        assert fingerprint(maintainer) == before


def mixed_batch():
    """Two changesets whose ⊎-coalesced net is exactly ``MIXED``.

    The intermediate row ``(zz, zz)`` is inserted by the first batch and
    deleted by the second, so batching must cancel it before any
    maintenance work — the run is indistinguishable from ``apply(MIXED)``.
    """
    return [
        Changeset().delete("link", ("a", "b")).insert("link", ("zz", "zz")),
        Changeset().insert("link", ("e", "a")).delete("link", ("zz", "zz")),
    ]


class TestBatchedApply:
    """apply_many(): one coalesced pass, same crash-safety contract."""

    def test_batched_equals_net_and_sequential(self):
        batched = build(COUNTING_SRC, "counting")
        net = build(COUNTING_SRC, "counting")
        sequential = build(COUNTING_SRC, "counting")

        batched.apply_many(mixed_batch())
        net.apply(MIXED.copy())
        for changes in mixed_batch():
            sequential.apply(changes)

        assert fingerprint(batched) == fingerprint(net)
        assert fingerprint(batched) == fingerprint(sequential)
        assert batched.lifetime.passes == 1
        assert sequential.lifetime.passes == 2

    @pytest.mark.parametrize("strategy, source, phase", STRATEGY_PHASES)
    def test_batched_fault_leaves_state_identical(
        self, strategy, source, phase, tmp_path
    ):
        """The full crash matrix, driven through apply_many()."""
        maintainer = build(source, strategy)
        journal = Journal(str(tmp_path / "log.jsonl"))
        maintainer.attach_journal(journal)
        before = fingerprint(maintainer)

        maintainer.faults.arm(phase)
        with pytest.raises(InjectedFault):
            maintainer.apply_many(mixed_batch())

        assert maintainer.faults.fired == [phase]
        assert fingerprint(maintainer) == before
        assert len(journal) == 0 and list(journal.replay()) == []
        assert maintainer.lifetime.passes == 0
        maintainer.consistency_check()

    @pytest.mark.parametrize("strategy, source, phase", STRATEGY_PHASES)
    def test_batched_retry_after_fault_matches_clean_run(
        self, strategy, source, phase
    ):
        maintainer = build(source, strategy)
        control = build(source, strategy)

        maintainer.faults.arm(phase)
        with pytest.raises(InjectedFault):
            maintainer.apply_many(mixed_batch())
        maintainer.apply_many(mixed_batch())  # one-shot plan: retry clean
        control.apply(MIXED.copy())

        assert fingerprint(maintainer) == fingerprint(control)
        maintainer.consistency_check()

    def test_batched_pass_appends_single_journal_entry(self, tmp_path):
        maintainer = build(COUNTING_SRC, "counting")
        journal = Journal(str(tmp_path / "log.jsonl"))
        maintainer.attach_journal(journal)
        maintainer.apply_many(mixed_batch())
        assert len(journal) == 1
        (entry,) = journal.replay()
        logged = {name: delta.to_dict() for name, delta in entry}
        assert logged == {name: delta.to_dict() for name, delta in MIXED}

    def test_net_zero_batch_is_a_noop(self, tmp_path):
        maintainer = build(COUNTING_SRC, "counting")
        journal = Journal(str(tmp_path / "log.jsonl"))
        maintainer.attach_journal(journal)
        before = fingerprint(maintainer)
        changes = Changeset().delete("link", ("a", "b"))
        report = maintainer.apply_many([changes.copy(), changes.inverted()])
        assert report.total_changes() == 0
        assert fingerprint(maintainer) == before
        assert maintainer.lifetime.passes == 0
        assert len(journal) == 0

    def test_invalid_net_delete_rolls_back_batch(self):
        maintainer = build(COUNTING_SRC, "counting")
        before = fingerprint(maintainer)
        batch = [
            Changeset().insert("link", ("q", "r")),
            Changeset().delete("link", ("no", "pe")),  # net delete: invalid
        ]
        with pytest.raises(MaintenanceError):
            maintainer.apply_many(batch)
        assert fingerprint(maintainer) == before
        maintainer.consistency_check()


class TestCheckpointRecovery:
    def _factory(self, source, strategy):
        return lambda db: ViewMaintainer.from_source(
            source, db, strategy=strategy
        )

    def test_watermark_round_trip_never_double_applies(self, tmp_path):
        """Duplicate semantics would double counts if the snapshot's
        entries were replayed again (the old recover() bug)."""
        snap = str(tmp_path / "snap.json")
        maintainer = build(COUNTING_SRC, "counting", semantics="duplicate")
        journal = Journal(str(tmp_path / "log.jsonl"))
        maintainer.attach_journal(journal, snapshot_path=snap)

        maintainer.apply(Changeset().insert("link", ("a", "b")))  # count 2
        maintainer.checkpoint()
        assert snapshot_watermark(snap) == 1
        maintainer.apply(Changeset().insert("link", ("e", "a")))

        # The journal still holds entry 1 (covered by the snapshot):
        # recovery must replay only entry 2.
        recovered = recover(
            lambda db: ViewMaintainer.from_source(
                COUNTING_SRC, db, semantics="duplicate"
            ),
            snap,
            Journal(journal.path),
        )
        assert recovered.relation("link").count(("a", "b")) == 2
        assert fingerprint(recovered) == fingerprint(maintainer)

    def test_attach_writes_initial_snapshot(self, tmp_path):
        snap = str(tmp_path / "snap.json")
        maintainer = build(COUNTING_SRC, "counting")
        maintainer.attach_journal(
            Journal(str(tmp_path / "log.jsonl")), snapshot_path=snap
        )
        assert os.path.exists(snap)
        database, watermark = load_snapshot(snap)
        assert watermark == 0
        assert database.relation("link").to_dict() == (
            maintainer.database.relation("link").to_dict()
        )

    def test_auto_checkpoint_every_n_passes(self, tmp_path):
        snap = str(tmp_path / "snap.json")
        maintainer = build(COUNTING_SRC, "counting")
        maintainer.attach_journal(
            Journal(str(tmp_path / "log.jsonl")),
            snapshot_path=snap,
            checkpoint_every=2,
        )
        maintainer.apply(Changeset().insert("link", ("e", "a")))
        assert snapshot_watermark(snap) == 0  # not yet
        maintainer.apply(Changeset().insert("link", ("e", "b")))
        assert snapshot_watermark(snap) == 2  # fired
        maintainer.apply(Changeset().insert("link", ("e", "c")))
        assert snapshot_watermark(snap) == 2

    def test_checkpoint_prunes_covered_segments(self, tmp_path):
        snap = str(tmp_path / "snap.json")
        journal = Journal(str(tmp_path / "log.jsonl"), segment_entries=1)
        maintainer = build(COUNTING_SRC, "counting")
        maintainer.attach_journal(journal, snapshot_path=snap)
        for node in ("u", "v", "w"):
            maintainer.apply(Changeset().insert("link", (node, "a")))
        assert len(journal._archived_paths()) >= 2
        maintainer.checkpoint()
        assert journal._archived_paths() == []
        # Everything is in the snapshot now; replay after watermark is empty.
        assert list(journal.replay(after=snapshot_watermark(snap))) == []

    def test_torn_snapshot_write_preserves_old_snapshot(self, tmp_path):
        snap = str(tmp_path / "snap.json")
        maintainer = build(COUNTING_SRC, "counting")
        journal = Journal(str(tmp_path / "log.jsonl"))
        maintainer.attach_journal(journal, snapshot_path=snap)  # watermark 0
        maintainer.apply(MIXED)

        maintainer.faults.arm("snapshot_write")
        with pytest.raises(InjectedFault):
            maintainer.checkpoint()
        assert not os.path.exists(snap + ".tmp")  # no torn temp left
        assert snapshot_watermark(snap) == 0      # old snapshot intact

        # Recovery from the surviving snapshot + journal reproduces the
        # exact live state, as if the checkpoint had never been tried.
        recovered = recover(
            self._factory(COUNTING_SRC, "counting"), snap, Journal(journal.path)
        )
        assert fingerprint(recovered) == fingerprint(maintainer)
        recovered.consistency_check()

    def test_auto_checkpoint_failure_does_not_fail_the_pass(self, tmp_path):
        snap = str(tmp_path / "snap.json")
        maintainer = build(COUNTING_SRC, "counting")
        maintainer.attach_journal(
            Journal(str(tmp_path / "log.jsonl")),
            snapshot_path=snap,
            checkpoint_every=1,
        )
        maintainer.faults.arm("snapshot_write")
        report = maintainer.apply(Changeset().insert("link", ("e", "a")))
        assert report.total_changes() > 0          # the pass committed
        assert maintainer.lifetime.passes == 1
        assert len(maintainer.checkpoint_errors) == 1
        assert isinstance(maintainer.checkpoint_errors[0], InjectedFault)
        # The next pass retries the checkpoint and succeeds.
        maintainer.apply(Changeset().insert("link", ("e", "b")))
        assert snapshot_watermark(snap) == 2

    def test_recover_after_dred_crash(self, tmp_path):
        """End-to-end drill: crash mid-pass, restart from disk, retry."""
        snap = str(tmp_path / "snap.json")
        journal = Journal(str(tmp_path / "log.jsonl"))
        maintainer = build(DRED_SRC, "dred")
        maintainer.attach_journal(journal, snapshot_path=snap)
        maintainer.apply(Changeset().insert("link", ("e", "a")))
        maintainer.faults.arm("rederivation")
        with pytest.raises(InjectedFault):
            maintainer.apply(MIXED)

        recovered = recover(
            self._factory(DRED_SRC, "dred"),
            snap,
            Journal(journal.path),
            attach=True,
        )
        assert fingerprint(recovered) == fingerprint(maintainer)
        recovered.apply(MIXED)  # the interrupted batch, retried
        recovered.consistency_check()

    def test_checkpoint_requires_snapshot_path(self, tmp_path):
        maintainer = build(COUNTING_SRC, "counting")
        maintainer.attach_journal(Journal(str(tmp_path / "log.jsonl")))
        with pytest.raises(MaintenanceError, match="snapshot_path"):
            maintainer.checkpoint()
        with pytest.raises(MaintenanceError, match="snapshot_path"):
            maintainer.attach_journal(
                Journal(str(tmp_path / "log2.jsonl")), checkpoint_every=5
            )


class TestSubscriberIsolation:
    def _maintainer(self):
        maintainer = build(COUNTING_SRC, "counting")
        maintainer._subscriptions.backoff_seconds = 0.0  # fast tests
        return maintainer

    def test_subscriber_exception_does_not_fail_committed_pass(self):
        """Regression: a raising callback used to propagate out of apply
        *after* the views were already mutated, faking a failed pass."""
        maintainer = self._maintainer()
        calls = []

        def bad(view, delta):
            calls.append(view)
            raise RuntimeError("subscriber crashed")

        maintainer.subscribe("hop", bad)
        report = maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert report.total_changes() > 0
        assert maintainer.lifetime.passes == 1
        maintainer.consistency_check()
        assert len(calls) == 3  # retried max_attempts times

    def test_failed_delivery_is_dead_lettered_with_delta(self):
        maintainer = self._maintainer()

        def bad(view, delta):
            raise ValueError("nope")

        maintainer.subscribe("hop", bad)
        report = maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert len(maintainer.dead_letters) == 1
        letter = maintainer.dead_letters[0]
        assert letter.view == "hop"
        assert letter.attempts == 3
        assert isinstance(letter.error, ValueError)
        assert letter.delta.to_dict() == report.delta("hop").to_dict()

    def test_transient_failure_is_retried_to_success(self):
        maintainer = self._maintainer()
        attempts = []

        def flaky(view, delta):
            attempts.append(view)
            if len(attempts) == 1:
                raise TimeoutError("first try fails")

        maintainer.subscribe("hop", flaky)
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert len(attempts) == 2
        assert maintainer.dead_letters == []

    def test_one_bad_subscriber_does_not_starve_others(self):
        maintainer = self._maintainer()
        received = []
        maintainer.subscribe("hop", lambda v, d: 1 / 0)
        maintainer.subscribe("hop", lambda v, d: received.append(v))
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert received == ["hop"]
        assert len(maintainer.dead_letters) == 1


class TestSelfHealing:
    def test_divergence_error_raised_and_subclasses_maintenance_error(self):
        maintainer = build(COUNTING_SRC, "counting")
        maintainer.views["hop"].add(("z", "z"), 1)  # simulate corruption
        with pytest.raises(DivergenceError, match="hop"):
            maintainer.consistency_check()
        assert issubclass(DivergenceError, MaintenanceError)

    def test_heal_rebuilds_damaged_views_in_place(self):
        maintainer = build(COUNTING_SRC, "counting")
        damaged = maintainer.views["hop"]
        damaged.add(("z", "z"), 1)
        damaged.discard(("a", "c"))
        report = maintainer.heal()
        assert report.healed["hop"] == (1, 1)  # one missing, one extra
        assert maintainer.views["hop"] is damaged  # identity preserved
        assert "mn" in report.aggregates_reset
        maintainer.consistency_check()

    def test_consistency_check_repair_true_heals_instead_of_raising(self):
        maintainer = build(DRED_SRC, "dred")
        maintainer.views["tc"].add(("z", "z"), 1)
        report = maintainer.consistency_check(repair=True)
        assert report is not None and "tc" in report.healed
        maintainer.consistency_check()

    def test_heal_on_healthy_maintainer_is_a_noop(self):
        maintainer = build(COUNTING_SRC, "counting")
        report = maintainer.heal()
        assert report.is_clean()
        assert "nothing healed" in report.summary()
        assert maintainer.consistency_check(repair=True) is None

    def test_heal_restores_duplicate_counts(self):
        maintainer = build(COUNTING_SRC, "counting", semantics="duplicate")
        maintainer.views["hop"].set_count(("a", "c"), 99)
        report = maintainer.heal()
        assert report.healed["hop"] == (0, 0)  # count-only divergence
        maintainer.consistency_check()


class TestGuardCheckpointAtomicity:
    """BudgetExceeded injected at EVERY guard checkpoint rolls back.

    The guard checkpoints are new crash points inside the hot loops;
    each must preserve the shadow-commit contract.  The meter is armed
    with an enormous (but bounded, hence enabled) budget so checkpoints
    execute without tripping on their own, and the fault injector
    raises ``BudgetExceeded`` at the k-th checkpoint for every k the
    pass reaches.
    """

    BREACH = GuardPolicy(
        budget=MaintenanceBudget(max_rule_firings=10**9), fallback="raise"
    )

    @pytest.mark.parametrize("strategy, source", [
        ("counting", COUNTING_SRC), ("dred", DRED_SRC), ("bf", DRED_SRC),
    ])
    def test_breach_at_every_checkpoint_leaves_state_identical(
        self, strategy, source
    ):
        checkpoints = 0
        for position in range(1, 200):
            maintainer = ViewMaintainer.from_source(
                source,
                database_with(EXAMPLE_1_1_LINKS),
                strategy=strategy,
                guard=self.BREACH,
            ).initialize()
            before = fingerprint(maintainer)
            maintainer.faults.arm(
                "budget_check",
                at=position,
                exception=BudgetExceeded("injected", kind="injected"),
            )
            if maintainer.faults.armed("budget_check"):
                try:
                    maintainer.apply(MIXED)
                except BudgetExceeded:
                    pass
            if not maintainer.faults.fired:
                # The pass has fewer than `position` checkpoints: the
                # apply committed normally and the sweep is complete.
                assert maintainer.lifetime.passes == 1
                break
            checkpoints += 1
            assert fingerprint(maintainer) == before
            assert maintainer.lifetime.passes == 0
            maintainer.consistency_check()
        else:
            pytest.fail("checkpoint sweep never terminated")
        assert checkpoints >= 3, f"only {checkpoints} checkpoints reached"

    @pytest.mark.parametrize("strategy, source", [
        ("counting", COUNTING_SRC), ("dred", DRED_SRC), ("bf", DRED_SRC),
    ])
    def test_fallback_after_any_checkpoint_matches_control(
        self, strategy, source
    ):
        policy = GuardPolicy(budget=MaintenanceBudget(max_rule_firings=10**9))
        control = build(source, strategy)
        control.apply(MIXED)
        expected = fingerprint(control)
        for position in (1, 2, 3):
            maintainer = ViewMaintainer.from_source(
                source,
                database_with(EXAMPLE_1_1_LINKS),
                strategy=strategy,
                guard=policy,
            ).initialize()
            maintainer.faults.arm(
                "budget_check",
                at=position,
                exception=BudgetExceeded("injected", kind="injected"),
            )
            report = maintainer.apply(MIXED)
            assert report.strategy == "recompute"
            assert fingerprint(maintainer) == expected
            maintainer.consistency_check()

    def test_fault_during_admission_leaves_state_identical(self, tmp_path):
        guard = GuardPolicy(quarantine_path=str(tmp_path / "q.dlq"))
        maintainer = ViewMaintainer.from_source(
            COUNTING_SRC,
            database_with(EXAMPLE_1_1_LINKS),
            strategy="counting",
            guard=guard,
        ).initialize()
        before = fingerprint(maintainer)
        maintainer.faults.arm("admission")
        with pytest.raises(InjectedFault):
            maintainer.apply(MIXED)
        assert fingerprint(maintainer) == before
        assert len(maintainer.quarantine) == 0

    def test_fault_during_quarantine_append_leaves_state_identical(
        self, tmp_path
    ):
        guard = GuardPolicy(quarantine_path=str(tmp_path / "q.dlq"))
        maintainer = ViewMaintainer.from_source(
            COUNTING_SRC,
            database_with(EXAMPLE_1_1_LINKS),
            strategy="counting",
            guard=guard,
        ).initialize()
        before = fingerprint(maintainer)
        maintainer.faults.arm("quarantine_append")
        with pytest.raises(InjectedFault):
            maintainer.apply(Changeset().insert("hop", ("x", "y")))
        assert fingerprint(maintainer) == before
        assert len(maintainer.quarantine) == 0
        assert maintainer.lag()["changesets"] == 0

    def test_fault_during_fallback_recompute_leaves_state_identical(self):
        maintainer = ViewMaintainer.from_source(
            COUNTING_SRC,
            database_with(EXAMPLE_1_1_LINKS),
            strategy="counting",
            guard=GuardPolicy(force_fallback=True),
        ).initialize()
        before = fingerprint(maintainer)
        maintainer.faults.arm("fallback_recompute")
        with pytest.raises(InjectedFault):
            maintainer.apply(MIXED)
        assert fingerprint(maintainer) == before
        assert maintainer.lifetime.passes == 0
        # The one-shot plan is spent: the retry commits cleanly.
        maintainer.apply(MIXED)
        maintainer.consistency_check()


class TestFaultInjectorUnit:
    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="unknown fault phase"):
            FaultInjector().arm("warp_core_breach")

    def test_fires_on_nth_arrival_then_disarms(self):
        faults = FaultInjector().arm("count_merge", at=2)
        faults.fire("count_merge")  # first arrival: armed, no fire
        with pytest.raises(InjectedFault):
            faults.fire("count_merge")
        faults.fire("count_merge")  # one-shot: now inert
        assert faults.fired == ["count_merge"]

    def test_disarm(self):
        faults = FaultInjector().arm("count_merge").arm("rederivation")
        faults.disarm("count_merge")
        faults.fire("count_merge")
        faults.disarm()
        faults.fire("rederivation")
        assert faults.fired == []

    def test_all_documented_phases_are_armable(self):
        faults = FaultInjector()
        for phase in PHASES:
            faults.arm(phase)
            assert faults.armed(phase)

    def test_every_n_fires_periodically_and_stays_armed(self):
        faults = FaultInjector().arm("count_merge", every_n=3)
        fired = 0
        for _ in range(9):
            try:
                faults.fire("count_merge")
            except InjectedFault:
                fired += 1
        assert fired == 3  # arrivals 3, 6, 9
        assert faults.armed("count_merge")  # persistent plan

    def test_first_k_fires_k_times_then_disarms(self):
        faults = FaultInjector().arm("count_merge", first_k=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                faults.fire("count_merge")
        faults.fire("count_merge")  # third arrival: plan consumed
        assert faults.fired == ["count_merge", "count_merge"]
        assert not faults.armed("count_merge")

    def test_intermittent_modes_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("count_merge", every_n=2, first_k=2)
        with pytest.raises(ValueError):
            FaultInjector().arm("count_merge", every_n=0)
        with pytest.raises(ValueError):
            FaultInjector().arm("count_merge", first_k=0)

    def test_intermittent_custom_exception(self):
        faults = FaultInjector().arm(
            "journal_append", every_n=2, exception=OSError("flaky disk")
        )
        faults.fire("journal_append")
        with pytest.raises(OSError, match="flaky disk"):
            faults.fire("journal_append")


class TestUndoLogUnit:
    def test_count_notes_restore_earliest_preimage(self):
        relation = CountedRelation("r", 1)
        relation.add((1,), 5)
        undo = UndoLog()
        undo.note_count(relation, (1,))
        relation.set_count((1,), 7)
        undo.note_count(relation, (1,))  # later note, later pre-image
        relation.set_count((1,), 9)
        undo.unwind()
        assert relation.count((1,)) == 5  # earliest note wins

    def test_unwind_drops_created_base_and_restores_groups(self):
        database = Database()
        undo = UndoLog()
        undo.note_base_created(database, "fresh")
        database.create_relation("fresh").add((1,), 1)
        states = {("g",): (1, 2)}
        undo.note_group(states, ("g",))
        undo.note_group(states, ("new",))
        states[("g",)] = (9, 9)
        states[("new",)] = (0, 0)
        undo.unwind()
        assert "fresh" not in database
        assert states == {("g",): (1, 2)}

    def test_unwind_is_idempotent_and_resets(self):
        relation = CountedRelation("r", 1)
        relation.add((1,), 1)
        undo = UndoLog()
        undo.note_count(relation, (1,))
        relation.set_count((1,), 3)
        assert undo.unwind() == 1
        assert undo.unwind() == 0  # log cleared
        assert relation.count((1,)) == 1
