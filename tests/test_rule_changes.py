"""Tests for view-redefinition maintenance (rule insert/delete, §7)."""

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.errors import MaintenanceError, SchemaError
from repro.storage.changeset import Changeset
from repro.workloads import mixed_batch, random_graph

from conftest import HOP_TRI_SRC, TC_SRC, database_with


def _tc_maintainer(edges, source=TC_SRC):
    return ViewMaintainer.from_source(
        source, database_with(edges), strategy="dred"
    ).initialize()


class TestAddRule:
    def test_added_rule_derivations_appear(self):
        maintainer = _tc_maintainer([(0, 1), (5, 6)])
        maintainer.alter(add=["tc(X, Y) :- link(Y, X)."])
        assert (1, 0) in maintainer.relation("tc")
        maintainer.consistency_check()

    def test_added_rule_feeds_recursion(self):
        maintainer = _tc_maintainer([(0, 1), (2, 3)])
        maintainer.alter(add=["tc(X, Y) :- bridge(X, Y)."])
        maintainer.apply(Changeset().insert("bridge", (1, 2)))
        # The bridge tuple enters tc and the recursive rule extends it
        # through link: tc(1,2) ⋈ link(2,3) → tc(1,3).
        assert (1, 2) in maintainer.relation("tc")
        assert (1, 3) in maintainer.relation("tc")
        maintainer.consistency_check()

    def test_new_view_predicate_created(self):
        maintainer = _tc_maintainer([(0, 1), (1, 2)])
        maintainer.alter(add=["pair(X, Y) :- tc(X, Y), tc(Y, X)."])
        assert "pair" in maintainer.view_names()
        maintainer.consistency_check()

    def test_rule_objects_accepted(self):
        from repro.datalog.parser import parse_rule

        maintainer = _tc_maintainer([(0, 1)])
        maintainer.alter(add=[parse_rule("tc(X, Y) :- link(Y, X).")])
        assert (1, 0) in maintainer.relation("tc")


class TestRemoveRule:
    def test_removed_rule_derivations_disappear(self):
        maintainer = _tc_maintainer(
            [(0, 1), (1, 2)], source=TC_SRC + "tc(X, Y) :- link(Y, X)."
        )
        assert (1, 0) in maintainer.relation("tc")
        maintainer.alter(remove=["tc(X, Y) :- link(Y, X)."])
        assert (1, 0) not in maintainer.relation("tc")
        maintainer.consistency_check()

    def test_shared_derivations_survive(self):
        source = TC_SRC + "tc(X, Y) :- extra(X, Y)."
        maintainer = ViewMaintainer.from_source(
            source, database_with([(0, 1)]), strategy="dred"
        )
        maintainer.database.insert("extra", (0, 1))
        maintainer.initialize()
        maintainer.alter(remove=["tc(X, Y) :- extra(X, Y)."])
        # (0,1) still derivable through link.
        assert (0, 1) in maintainer.relation("tc")
        maintainer.consistency_check()

    def test_removing_missing_rule_rejected(self):
        maintainer = _tc_maintainer([(0, 1)])
        with pytest.raises(SchemaError):
            maintainer.alter(remove=["tc(X, Y) :- nothing(X, Y)."])

    def test_removing_only_rule_of_predicate_empties_it(self):
        source = TC_SRC + "mirror(X, Y) :- link(Y, X)."
        maintainer = _tc_maintainer([(0, 1)], source=source)
        maintainer.alter(remove=["mirror(X, Y) :- link(Y, X)."])
        assert "mirror" not in maintainer.view_names()


class TestStrategyAfterAlter:
    def test_maintainer_switches_to_dred(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            "hop(X,Y) :- link(X,Z), link(Z,Y).", example_1_1_db
        ).initialize()
        assert maintainer.strategy == "counting"
        maintainer.alter(add=["hop(X, Y) :- link(X, Y), link(Y, X)."])
        assert maintainer.strategy == "dred"
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        maintainer.consistency_check()

    def test_duplicate_semantics_rejected(self, example_1_1_db):
        maintainer = ViewMaintainer.from_source(
            "hop(X,Y) :- link(X,Z), link(Z,Y).",
            example_1_1_db,
            semantics="duplicate",
        ).initialize()
        with pytest.raises(MaintenanceError, match="set semantics"):
            maintainer.alter(add=["hop(X, Y) :- link(Y, X)."])


class TestRandomized:
    @pytest.mark.parametrize("seed", range(4))
    def test_alter_sequences_stay_consistent(self, seed):
        edges = random_graph(12, 24, seed=seed)
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, database_with(edges), strategy="dred"
        ).initialize()
        maintainer.alter(add=["hop(X, Y) :- link(X, Y), link(Y, X)."])
        maintainer.consistency_check()
        changes, _ = mixed_batch(
            "link", edges, 2, 2, node_count=12, seed=seed + 60
        )
        maintainer.apply(changes)
        maintainer.consistency_check()
        maintainer.alter(remove=["tri_hop(X, Y) :- hop(X, Z), link(Z, Y)."])
        maintainer.consistency_check()
