"""Guarded maintenance: budgets, fallback controller, quarantine.

The contract under test (docs/operations.md): a maintenance pass that
breaches its :class:`MaintenanceBudget` rolls back to the bit-identical
pre-pass state and then — per :class:`GuardPolicy` — reroutes to the
full-recompute baseline, parks the changeset, or raises; repeated
breaches trip a circuit breaker that routes whole passes to the
baseline; poison changesets quarantine to a dead-letter file instead of
failing the stream; and strict reads refuse to serve views that lag it.
"""

import json
import os

import pytest

from repro.cli import Shell
from repro.core.maintenance import ViewMaintainer
from repro.errors import (
    BudgetExceeded,
    MaintenanceError,
    PoisonChangesetError,
    StaleViewError,
)
from repro.guard import (
    GuardPolicy,
    MaintenanceBudget,
    BudgetMeter,
    DeadLetterQueue,
    NOOP_METER,
)
from repro.storage.changeset import Changeset
from repro.storage.database import Database
from repro.storage.journal import Journal

from conftest import EXAMPLE_1_1_LINKS, HOP_TRI_SRC, TC_SRC, database_with

MIXED = Changeset().delete("link", ("a", "b")).insert("link", ("e", "a"))

STRATEGIES = [("counting", HOP_TRI_SRC), ("dred", TC_SRC)]


def build(source, strategy, guard=None, links=EXAMPLE_1_1_LINKS, **kwargs):
    maintainer = ViewMaintainer.from_source(
        source, database_with(links), strategy=strategy, guard=guard, **kwargs
    )
    return maintainer.initialize()


def fingerprint(maintainer):
    return {
        "base": {
            name: maintainer.database.relation(name).to_dict()
            for name in sorted(maintainer.database.names())
        },
        "views": {
            name: relation.to_dict()
            for name, relation in sorted(maintainer.views.items())
        },
        "agg": {
            name: dict(view._states)
            for name, view in sorted(maintainer.aggregate_views.items())
        },
    }


class TestBudgetMeter:
    def test_unbounded_budget_is_disabled(self):
        meter = BudgetMeter(MaintenanceBudget())
        assert not meter.enabled
        meter.checkpoint("anywhere")  # no-op, never raises

    def test_noop_meter_is_inert(self):
        assert not NOOP_METER.enabled
        NOOP_METER.reset()
        NOOP_METER.tick(rules=5, tuples=5)
        NOOP_METER.checkpoint("anywhere")
        NOOP_METER.observe_delta_ratio("v", 10**6, 1)

    def test_rule_firing_limit(self):
        meter = BudgetMeter(MaintenanceBudget(max_rule_firings=2))
        meter.reset()
        meter.tick(rules=3)
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.checkpoint("here")
        assert excinfo.value.kind == "rule_firings"
        assert excinfo.value.phase == "here"

    def test_delta_tuple_limit(self):
        meter = BudgetMeter(MaintenanceBudget(max_delta_tuples=10))
        meter.reset()
        meter.tick(tuples=11)
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.checkpoint("there")
        assert excinfo.value.kind == "delta_tuples"

    def test_deadline(self):
        meter = BudgetMeter(MaintenanceBudget(deadline_seconds=0.0))
        meter.reset()
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.checkpoint("slow")
        assert excinfo.value.kind == "deadline"

    def test_reset_zeroes_counters(self):
        meter = BudgetMeter(MaintenanceBudget(max_rule_firings=2))
        meter.reset()
        meter.tick(rules=3)
        meter.reset()
        meter.checkpoint("fresh")  # counters are back to zero

    def test_blowup_trips_above_ratio(self):
        meter = BudgetMeter(blowup_ratio=2.0, blowup_min_view=0)
        assert meter.enabled and meter.blowup_enabled
        meter.observe_delta_ratio("hop", 4, 10)  # 4 <= 2.0 * 10: fine
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.observe_delta_ratio("hop", 21, 10)
        assert excinfo.value.kind == "delta_blowup"

    def test_blowup_ignores_small_deltas(self):
        meter = BudgetMeter(blowup_ratio=0.1, blowup_min_view=64)
        meter.observe_delta_ratio("hop", 64, 1)  # under min_view: skipped


class TestGuardPolicy:
    def test_default_policy_is_inert(self):
        maintainer = build(HOP_TRI_SRC, "counting")
        assert not maintainer.guard.active
        assert maintainer.guard.meter is not NOOP_METER
        assert not maintainer.guard.meter.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fallback": "retry"},
            {"breaker_threshold": 0},
            {"breaker_cooldown_passes": 0},
            {"journal_retry_attempts": 0},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GuardPolicy(**kwargs)

    def test_quarantine_path_enables_admission(self, tmp_path):
        on = GuardPolicy(quarantine_path=str(tmp_path / "q.dlq"))
        assert on.admission_enabled
        assert not GuardPolicy().admission_enabled
        off = GuardPolicy(
            quarantine_path=str(tmp_path / "q.dlq"), admission=False
        )
        assert not off.admission_enabled


class TestBudgetBreach:
    @pytest.mark.parametrize("strategy, source", STRATEGIES)
    def test_raise_mode_rolls_back_bit_identical(self, strategy, source):
        guard = GuardPolicy(
            budget=MaintenanceBudget(max_rule_firings=0), fallback="raise"
        )
        maintainer = build(source, strategy, guard)
        before = fingerprint(maintainer)
        with pytest.raises(BudgetExceeded) as excinfo:
            maintainer.apply(MIXED)
        assert excinfo.value.kind == "rule_firings"
        assert fingerprint(maintainer) == before
        assert maintainer.lifetime.passes == 0
        maintainer.consistency_check()

    @pytest.mark.parametrize("strategy, source", STRATEGIES)
    def test_recompute_fallback_matches_incremental(self, strategy, source):
        guard = GuardPolicy(budget=MaintenanceBudget(max_rule_firings=0))
        maintainer = build(source, strategy, guard)
        control = build(source, strategy)

        report = maintainer.apply(MIXED)
        control.apply(MIXED)

        assert report.strategy == "recompute"
        assert fingerprint(maintainer) == fingerprint(control)
        assert maintainer.guard.fallback_passes == 1
        assert maintainer.lifetime.passes == 1
        maintainer.consistency_check()

    @pytest.mark.parametrize("strategy, source", STRATEGIES)
    def test_forced_fallback_matches_incremental(self, strategy, source):
        maintainer = build(source, strategy, GuardPolicy(force_fallback=True))
        control = build(source, strategy)
        report = maintainer.apply(MIXED)
        control.apply(MIXED)
        assert report.strategy == "recompute"
        assert fingerprint(maintainer) == fingerprint(control)
        maintainer.consistency_check()

    def test_fallback_report_carries_view_deltas(self):
        maintainer = build(
            HOP_TRI_SRC, "counting", GuardPolicy(force_fallback=True)
        )
        control = build(HOP_TRI_SRC, "counting")
        report = maintainer.apply(MIXED)
        expected = control.apply(MIXED)
        assert {
            name: delta.to_dict() for name, delta in report.view_deltas.items()
        } == {
            name: delta.to_dict()
            for name, delta in expected.view_deltas.items()
        }

    def test_fallback_notifies_subscribers(self):
        maintainer = build(
            HOP_TRI_SRC, "counting", GuardPolicy(force_fallback=True)
        )
        seen = []
        maintainer.subscribe("hop", lambda view, delta: seen.append(view))
        maintainer.apply(MIXED)
        assert seen == ["hop"]

    def test_skip_mode_parks_changeset_and_reports_lag(self, tmp_path):
        guard = GuardPolicy(
            budget=MaintenanceBudget(max_rule_firings=0),
            fallback="skip",
            quarantine_path=str(tmp_path / "q.dlq"),
        )
        maintainer = build(HOP_TRI_SRC, "counting", guard)
        before = fingerprint(maintainer)

        report = maintainer.apply(MIXED)

        assert report.strategy == "skipped"
        assert fingerprint(maintainer) == before
        assert maintainer.guard.skipped_passes == 1
        assert maintainer.lag()["changesets"] == 1
        assert len(maintainer.quarantine) == 1
        [entry] = maintainer.quarantine.entries()
        assert entry["reason"] == "budget"

    def test_blowup_heuristic_reroutes_to_recompute(self):
        guard = GuardPolicy(blowup_ratio=0.5, blowup_min_view=1)
        maintainer = build(HOP_TRI_SRC, "counting", guard)
        control = build(HOP_TRI_SRC, "counting")

        # One dense changeset: the hop delta dwarfs the stored view.
        burst = Changeset()
        for i in range(12):
            burst.insert("link", ("b", f"n{i}"))
        report = maintainer.apply(burst)
        control.apply(burst)

        assert report.strategy == "recompute"
        assert maintainer.guard.breaches == 1
        assert fingerprint(maintainer) == fingerprint(control)
        maintainer.consistency_check()

    def test_journal_survives_fallback_pass(self, tmp_path):
        maintainer = build(
            HOP_TRI_SRC, "counting", GuardPolicy(force_fallback=True)
        )
        journal = Journal(str(tmp_path / "log.jsonl"))
        maintainer.attach_journal(journal)
        maintainer.apply(MIXED)
        replayed = list(journal.replay())
        assert len(replayed) == 1


INJECTED = BudgetExceeded("injected breach", kind="injected")


def breach_policy(**kwargs):
    """An enabled-but-unreachable budget: checkpoints run, never trip."""
    return GuardPolicy(
        budget=MaintenanceBudget(max_rule_firings=10**9), **kwargs
    )


class TestCircuitBreaker:
    def test_breaker_opens_after_threshold_and_recovers(self):
        maintainer = build(
            HOP_TRI_SRC,
            "counting",
            breach_policy(breaker_threshold=2, breaker_cooldown_passes=1),
        )
        guard = maintainer.guard

        # Two breaching passes (the injected fault fires once per pass,
        # at the first checkpoint) open the breaker.
        maintainer.faults.arm(
            "budget_check", first_k=2, exception=INJECTED
        )
        assert maintainer.apply(MIXED).strategy == "recompute"
        assert guard.state == "closed" and guard.consecutive_breaches == 1
        undo = Changeset().insert("link", ("a", "b")).delete("link", ("e", "a"))
        assert maintainer.apply(undo).strategy == "recompute"
        assert guard.state == "open"
        assert guard.breaches == 2

        # Cooldown of 1: the next pass is the half-open probe; the
        # fault plan is exhausted, so it succeeds and closes the breaker.
        assert maintainer.apply(MIXED).strategy == "counting"
        assert guard.state == "closed"
        assert guard.consecutive_breaches == 0
        maintainer.consistency_check()

    def test_open_breaker_routes_without_incremental_attempt(self):
        maintainer = build(
            HOP_TRI_SRC,
            "counting",
            breach_policy(breaker_threshold=1, breaker_cooldown_passes=3),
        )
        guard = maintainer.guard
        maintainer.faults.arm("budget_check", exception=INJECTED)
        maintainer.apply(MIXED)
        assert guard.state == "open"

        # While open, passes run as recompute and never hit a checkpoint:
        # the re-armed fault stays un-fired until the half-open probe.
        maintainer.faults.arm("budget_check", exception=INJECTED)
        undo = Changeset().insert("link", ("a", "b")).delete("link", ("e", "a"))
        assert maintainer.apply(undo).strategy == "recompute"
        assert maintainer.apply(MIXED).strategy == "recompute"
        assert maintainer.faults.fired == ["budget_check"]  # opener only
        # Third routed pass exhausts the cooldown: the half-open probe
        # runs incrementally, hits the armed fault, and falls back.
        assert maintainer.apply(undo).strategy == "recompute"
        assert maintainer.faults.fired == ["budget_check"] * 2
        assert guard.state == "open"
        maintainer.consistency_check()

    def test_failed_probe_reopens_for_fresh_cooldown(self):
        maintainer = build(
            HOP_TRI_SRC,
            "counting",
            breach_policy(
                breaker_threshold=1,
                breaker_cooldown_passes=1,
                fallback="recompute",
            ),
        )
        guard = maintainer.guard
        maintainer.faults.arm("budget_check", first_k=2, exception=INJECTED)
        maintainer.apply(MIXED)  # breach 1: opens
        assert guard.state == "open"
        undo = Changeset().insert("link", ("a", "b")).delete("link", ("e", "a"))
        maintainer.apply(undo)  # half-open probe, breach 2: reopens
        assert guard.state == "open"
        assert guard.passes_until_probe == 1
        maintainer.apply(MIXED)  # probe again; plan exhausted: closes
        assert guard.state == "closed"
        maintainer.consistency_check()

    def test_breaker_metrics_and_status(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        maintainer = build(
            HOP_TRI_SRC,
            "counting",
            breach_policy(breaker_threshold=1),
            metrics=registry,
        )
        maintainer.faults.arm("budget_check", exception=INJECTED)
        maintainer.apply(MIXED)
        status = maintainer.guard.to_dict()
        assert status["breaker"] == "open"
        assert status["breaches_total"] == 1
        assert status["fallback_passes"] == 1
        exposition = registry.to_prometheus()
        assert "repro_guard_budget_breaches_total" in exposition
        assert "repro_guard_breaker_transitions_total" in exposition
        assert "repro_guard_breaker_state" in exposition


class TestAdmissionAndQuarantine:
    def poisoned(self, tmp_path, **kwargs):
        guard = GuardPolicy(
            quarantine_path=str(tmp_path / "q.dlq"), **kwargs
        )
        return build(HOP_TRI_SRC, "counting", guard)

    def test_idb_write_quarantined(self, tmp_path):
        maintainer = self.poisoned(tmp_path)
        before = fingerprint(maintainer)
        report = maintainer.apply(Changeset().insert("hop", ("x", "y")))
        assert report.strategy == "quarantined"
        assert fingerprint(maintainer) == before
        [entry] = maintainer.quarantine.entries()
        assert entry["reason"] == "admission"
        assert "derived relation" in entry["error"]

    def test_arity_mismatch_quarantined(self, tmp_path):
        maintainer = self.poisoned(tmp_path)
        report = maintainer.apply(Changeset().insert("link", ("x",)))
        assert report.strategy == "quarantined"
        assert "arity" in maintainer.quarantine.entries()[0]["error"]

    def test_non_tuple_row_quarantined(self, tmp_path):
        maintainer = self.poisoned(tmp_path)
        changes = Changeset()
        changes.insert("link", ("x", "y"))
        # Corrupt the staged delta the way a buggy producer would.
        delta = next(iter(changes))[1]
        delta._rows["not-a-tuple"] = 1
        report = maintainer.apply(changes)
        assert report.strategy == "quarantined"

    def test_over_deletion_quarantined(self, tmp_path):
        maintainer = self.poisoned(tmp_path)
        report = maintainer.apply(
            Changeset().delete("link", ("nope", "nope"))
        )
        assert report.strategy == "quarantined"
        assert "stored" in maintainer.quarantine.entries()[0]["error"]

    def test_admission_without_quarantine_raises(self):
        maintainer = build(
            HOP_TRI_SRC, "counting", GuardPolicy(admission=True)
        )
        with pytest.raises(PoisonChangesetError):
            maintainer.apply(Changeset().insert("hop", ("x", "y")))

    def test_strict_reads_refuse_stale_views(self, tmp_path):
        maintainer = self.poisoned(tmp_path, strict_reads=True)
        maintainer.apply(Changeset().insert("hop", ("x", "y")))
        with pytest.raises(StaleViewError, match="behind the stream"):
            maintainer.relation("hop")
        # Degraded reads stay available on request.
        assert maintainer.relation("hop", strict=False)
        # Draining the queue makes strict reads legal again.
        maintainer.purge_quarantined()
        maintainer.relation("hop")

    def test_requeue_still_poison_requarantines(self, tmp_path):
        maintainer = self.poisoned(tmp_path)
        maintainer.apply(Changeset().insert("hop", ("x", "y")))
        reports = maintainer.requeue_quarantined()
        assert [r.strategy for r in reports] == ["quarantined"]
        assert len(maintainer.quarantine) == 1
        assert maintainer.lag()["changesets"] == 1

    def test_requeue_healed_changeset_applies(self, tmp_path):
        maintainer = self.poisoned(tmp_path)
        control = build(HOP_TRI_SRC, "counting")
        # Over-deletion quarantines...
        maintainer.apply(Changeset().delete("link", ("e", "a")))
        assert maintainer.lag()["changesets"] == 1
        # ...the missing row arrives...
        maintainer.apply(Changeset().insert("link", ("e", "a")))
        control.apply(Changeset().insert("link", ("e", "a")))
        # ...and the requeue now commits cleanly.
        reports = maintainer.requeue_quarantined()
        control.apply(Changeset().delete("link", ("e", "a")))
        assert [r.strategy for r in reports] == ["counting"]
        assert maintainer.lag()["changesets"] == 0
        assert len(maintainer.quarantine) == 0
        assert fingerprint(maintainer) == fingerprint(control)

    def test_requeue_single_entry_by_id(self, tmp_path):
        maintainer = self.poisoned(tmp_path)
        maintainer.apply(Changeset().insert("hop", ("x", "y")))
        maintainer.apply(Changeset().insert("tri_hop", ("x", "y")))
        assert len(maintainer.quarantine) == 2
        reports = maintainer.requeue_quarantined(2)
        assert len(reports) == 1
        remaining = maintainer.quarantine.entries()
        assert {e["id"] for e in remaining} >= {1}

    def test_purge_clears_queue_and_lag(self, tmp_path):
        maintainer = self.poisoned(tmp_path)
        maintainer.apply(Changeset().insert("hop", ("x", "y")))
        maintainer.apply(Changeset().insert("hop", ("y", "z")))
        assert maintainer.purge_quarantined() == 2
        assert len(maintainer.quarantine) == 0
        assert maintainer.lag()["changesets"] == 0

    def test_requeue_without_queue_raises(self):
        maintainer = build(HOP_TRI_SRC, "counting")
        with pytest.raises(MaintenanceError, match="no quarantine"):
            maintainer.requeue_quarantined()

    def test_dead_letter_queue_tolerates_torn_tail(self, tmp_path):
        path = str(tmp_path / "q.dlq")
        queue = DeadLetterQueue(path)
        queue.append(Changeset().insert("link", ("a", "b")), "admission")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"id": 2, "reason": "tor')  # crash mid-append
        assert len(queue.entries()) == 1


class TestJournalRetry:
    def retrying(self, tmp_path, **kwargs):
        guard = GuardPolicy(
            journal_retry_attempts=3,
            journal_retry_base_seconds=0.0,
            **kwargs,
        )
        maintainer = build(HOP_TRI_SRC, "counting", guard)
        journal = Journal(str(tmp_path / "log.jsonl"))
        maintainer.attach_journal(journal)
        return maintainer, journal

    def test_transient_oserror_retried_to_success(self, tmp_path):
        maintainer, journal = self.retrying(tmp_path)
        maintainer.faults.arm(
            "journal_append", first_k=2, exception=OSError("disk wobble")
        )
        report = maintainer.apply(MIXED)
        assert report.strategy == "counting"
        assert maintainer.guard.journal_retries == 2
        assert len(list(journal.replay())) == 1
        maintainer.consistency_check()

    def test_persistent_oserror_exhausts_and_rolls_back(self, tmp_path):
        maintainer, journal = self.retrying(tmp_path)
        before = fingerprint(maintainer)
        maintainer.faults.arm(
            "journal_append", every_n=1, exception=OSError("disk gone")
        )
        with pytest.raises(OSError, match="disk gone"):
            maintainer.apply(MIXED)
        assert len(maintainer.faults.fired) == 3  # one per attempt
        assert fingerprint(maintainer) == before
        assert len(list(journal.replay())) == 0

    def test_non_oserror_is_not_retried(self, tmp_path):
        maintainer, journal = self.retrying(tmp_path)
        maintainer.faults.arm("journal_append")  # default InjectedFault
        from repro.resilience import InjectedFault

        with pytest.raises(InjectedFault):
            maintainer.apply(MIXED)
        assert maintainer.guard.journal_retries == 0


class TestShellIntegration:
    SRC = "\n".join(
        [
            "link(a, b).",
            "link(b, c).",
            "hop(X, Y) :- link(X, Z), link(Z, Y).",
        ]
    )

    def shell(self, tmp_path, **kwargs):
        guard = GuardPolicy(
            quarantine_path=str(tmp_path / "q.dlq"), **kwargs
        )
        return Shell(self.SRC, guard=guard)

    def test_status_json_reports_guard_and_lag(self, tmp_path):
        shell = self.shell(tmp_path)
        shell.execute("+ hop(x, y)")
        shell.execute("commit")
        status = json.loads(shell.execute("status --json"))
        assert status["guard"]["breaker"] == "closed"
        assert status["guard"]["admission"] is True
        assert status["guard"]["quarantine"]["depth"] == 1
        assert status["lag"]["changesets"] == 1
        assert status["lag"]["views"]["hop"]["changesets"] == 1

    def test_quarantine_commands_round_trip(self, tmp_path):
        shell = self.shell(tmp_path)
        shell.execute("+ hop(x, y)")
        shell.execute("commit")
        listing = shell.execute("quarantine")
        assert "#1" in listing and "admission" in listing
        requeue = shell.execute("quarantine requeue")
        assert "re-quarantined" in requeue
        assert "purged 1" in shell.execute("quarantine purge")
        assert shell.execute("quarantine") == "quarantine is empty"

    def test_unconfigured_quarantine_explains_itself(self):
        shell = Shell(self.SRC)
        assert "not configured" in shell.execute("quarantine")

    def test_cli_guard_flags_build_policy(self, tmp_path):
        import repro.cli as cli

        captured = {}

        class FakeShell:
            def __init__(self, *args, **kwargs):
                captured.update(kwargs)
                self.done = True

            def execute(self, line):
                return ""

        original = cli.Shell
        cli.Shell = FakeShell
        try:
            program = tmp_path / "p.dl"
            program.write_text(self.SRC)
            cli.main(
                [
                    str(program),
                    "--guard-deadline", "2.5",
                    "--guard-max-rules", "1000",
                    "--guard-blowup", "8",
                    "--guard-fallback", "skip",
                    "--quarantine", str(tmp_path / "q.dlq"),
                    "--strict-reads",
                ]
            )
        finally:
            cli.Shell = original
        policy = captured["guard"]
        assert policy.budget.deadline_seconds == 2.5
        assert policy.budget.max_rule_firings == 1000
        assert policy.blowup_ratio == 8
        assert policy.fallback == "skip"
        # Bare --strict-reads means reject-on-stale (the pre-MVCC True).
        assert policy.strict_reads == "reject"
