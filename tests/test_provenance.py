"""Tests for why-provenance (derivation enumeration and trees)."""

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.errors import UnknownRelationError
from repro.storage.changeset import Changeset

from conftest import HOP_SRC, HOP_TRI_SRC, TC_SRC, database_with, EXAMPLE_1_1_LINKS


@pytest.fixture
def maintainer(example_1_1_db):
    return ViewMaintainer.from_source(HOP_SRC, example_1_1_db).initialize()


class TestImmediateDerivations:
    def test_count_matches_derivations(self, maintainer):
        """Example 1.1: hop(a,c) has exactly the two derivations."""
        derivations = maintainer.explain_tuple("hop", ("a", "c"))
        assert len(derivations) == 2
        bodies = {d.body for d in derivations}
        assert bodies == {
            (("link", ("a", "b")), ("link", ("b", "c"))),
            (("link", ("a", "d")), ("link", ("d", "c"))),
        }
        assert maintainer.relation("hop").count(("a", "c")) == 2

    def test_single_derivation(self, maintainer):
        derivations = maintainer.explain_tuple("hop", ("a", "e"))
        assert len(derivations) == 1
        assert derivations[0].body == (
            ("link", ("a", "b")), ("link", ("b", "e")),
        )

    def test_non_member_has_no_derivations(self, maintainer):
        assert maintainer.explain_tuple("hop", ("z", "q")) == []

    def test_after_maintenance(self, maintainer):
        maintainer.apply(Changeset().delete("link", ("a", "b")))
        assert len(maintainer.explain_tuple("hop", ("a", "c"))) == 1
        assert maintainer.explain_tuple("hop", ("a", "e")) == []

    def test_base_relation_rejected(self, maintainer):
        with pytest.raises(UnknownRelationError):
            maintainer.explain_tuple("link", ("a", "b"))

    def test_counts_cross_check_on_every_tuple(self, example_6_1_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_6_1_db
        ).initialize()
        for view in ("hop", "tri_hop"):
            for row, count in maintainer.relation(view).items():
                assert len(maintainer.explain_tuple(view, row)) == count

    def test_multi_rule_union_view(self):
        db = database_with([("a", "b")])
        db.insert_rows("extra", [("a", "b")])
        maintainer = ViewMaintainer.from_source(
            "edge(X, Y) :- link(X, Y).\nedge(X, Y) :- extra(X, Y).",
            db,
        ).initialize()
        derivations = maintainer.explain_tuple("edge", ("a", "b"))
        assert len(derivations) == 2
        rules = {d.rule.body[0].predicate for d in derivations}
        assert rules == {"link", "extra"}

    def test_str_rendering(self, maintainer):
        derivation = maintainer.explain_tuple("hop", ("a", "e"))[0]
        text = str(derivation)
        assert "hop('a', 'e')" in text
        assert "link('a', 'b')" in text


class TestDerivationTree:
    def test_tree_reaches_base_facts(self, example_4_2_db):
        maintainer = ViewMaintainer.from_source(
            HOP_TRI_SRC, example_4_2_db
        ).initialize()
        tree = maintainer.explain_tree("tri_hop", ("a", "h"))
        rendered = tree.render()
        assert "tri_hop('a', 'h')" in rendered
        assert "(base fact)" in rendered
        assert "hop(" in rendered

    def test_tree_none_for_non_member(self, maintainer):
        assert maintainer.explain_tree("hop", ("z", "z")) is None

    def test_recursive_tree_depth_guard(self):
        maintainer = ViewMaintainer.from_source(
            TC_SRC, database_with([(i, i + 1) for i in range(30)]),
            strategy="dred",
        ).initialize()
        tree = maintainer.explain_tree("tc", (0, 5), max_depth=3)
        assert tree is not None  # guarded, not infinite

    def test_recursive_tree_full(self):
        maintainer = ViewMaintainer.from_source(
            TC_SRC, database_with([(0, 1), (1, 2)]), strategy="dred"
        ).initialize()
        tree = maintainer.explain_tree("tc", (0, 2))
        rendered = tree.render()
        assert "tc(0, 2)" in rendered
        assert "link(0, 1)" in rendered or "link(1, 2)" in rendered

    def test_base_fact_tree(self, maintainer):
        from repro.core.provenance import derivation_tree

        tree = derivation_tree(maintainer, "link", ("a", "b"))
        assert tree is not None
        assert tree.derivation is None
