"""Tests for counted relations: the ⊎ algebra, indexes, set helpers."""

import pytest

from repro.errors import MaintenanceError, SchemaError
from repro.storage.relation import CountedRelation, relation_from_rows


class TestAddAndCounts:
    def test_add_accumulates(self):
        relation = CountedRelation("p")
        relation.add(("a",), 2)
        relation.add(("a",), 3)
        assert relation.count(("a",)) == 5

    def test_zero_count_removes(self):
        relation = CountedRelation("p")
        relation.add(("a",), 2)
        relation.add(("a",), -2)
        assert ("a",) not in relation
        assert len(relation) == 0

    def test_negative_counts_allowed_for_deltas(self):
        relation = CountedRelation("Δp")
        relation.add(("a",), -1)
        assert relation.count(("a",)) == -1
        assert list(relation.negative_items()) == [(("a",), -1)]

    def test_add_zero_is_noop(self):
        relation = CountedRelation("p")
        assert relation.add(("a",), 0) == 0
        assert len(relation) == 0

    def test_arity_enforced_when_declared(self):
        relation = CountedRelation("p", arity=2)
        with pytest.raises(SchemaError, match="arity"):
            relation.add(("a",), 1)

    def test_set_count(self):
        relation = CountedRelation("p")
        relation.add(("a",), 5)
        relation.set_count(("a",), 2)
        assert relation.count(("a",)) == 2
        relation.set_count(("a",), 0)
        assert ("a",) not in relation

    def test_discard_returns_old_count(self):
        relation = CountedRelation("p")
        relation.add(("a",), 7)
        assert relation.discard(("a",)) == 7
        assert relation.discard(("a",)) == 0


class TestMerge:
    def test_merge_is_counted_union(self):
        left = relation_from_rows("l", [("a",), ("a",), ("b",)])
        right = CountedRelation("r")
        right.add(("a",), -1)
        right.add(("c",), 4)
        left.merge(right)
        assert left.to_dict() == {("a",): 1, ("b",): 1, ("c",): 4}

    def test_merge_cancels_to_zero(self):
        """Section 3: c1 + c2 = 0 → the tuple disappears."""
        left = CountedRelation("l")
        left.add(("m", "n"), 2)
        right = CountedRelation("r")
        right.add(("m", "n"), -2)
        left.merge(right)
        assert len(left) == 0

    def test_merged_is_pure(self):
        left = relation_from_rows("l", [("a",)])
        right = relation_from_rows("r", [("b",)])
        combined = left.merged(right)
        assert combined.to_dict() == {("a",): 1, ("b",): 1}
        assert left.to_dict() == {("a",): 1}

    def test_merge_accepts_mapping(self):
        relation = CountedRelation("p")
        relation.merge({("a",): 3})
        assert relation.count(("a",)) == 3


class TestSetHelpers:
    def test_set_view_clamps_positive(self):
        relation = CountedRelation("p")
        relation.add(("a",), 5)
        relation.add(("b",), 1)
        view = relation.set_view()
        assert view.to_dict() == {("a",): 1, ("b",): 1}

    def test_set_view_drops_negative(self):
        relation = CountedRelation("p")
        relation.add(("a",), -2)
        assert relation.set_view().to_dict() == {}

    def test_as_set(self):
        relation = CountedRelation("p")
        relation.add(("a",), 2)
        relation.add(("b",), -1)
        assert relation.as_set() == {("a",)}

    def test_set_difference_delta(self):
        new = relation_from_rows("n", [("a",), ("b",)])
        old = relation_from_rows("o", [("b",), ("c",)])
        delta = new.set_difference_delta(old)
        assert delta.to_dict() == {("a",): 1, ("c",): -1}

    def test_set_difference_ignores_count_changes(self):
        """Statement (2): count 2 → 1 is not a set change."""
        new = CountedRelation("n")
        new.add(("a",), 1)
        old = CountedRelation("o")
        old.add(("a",), 2)
        assert new.set_difference_delta(old).to_dict() == {}

    def test_contains_positive(self):
        relation = CountedRelation("p")
        relation.add(("a",), -1)
        relation.add(("b",), 1)
        assert not relation.contains_positive(("a",))
        assert relation.contains_positive(("b",))

    def test_assert_nonnegative(self):
        relation = CountedRelation("p")
        relation.add(("a",), -1)
        with pytest.raises(MaintenanceError, match="negative count"):
            relation.assert_nonnegative()


class TestIndexes:
    def test_lookup_by_position(self):
        relation = relation_from_rows(
            "link", [("a", "b"), ("a", "c"), ("b", "c")]
        )
        assert set(relation.lookup((0,), ("a",))) == {("a", "b"), ("a", "c")}
        assert set(relation.lookup((1,), ("c",))) == {("a", "c"), ("b", "c")}

    def test_lookup_composite_key(self):
        relation = relation_from_rows("r", [("a", "b", 1), ("a", "c", 2)])
        assert set(relation.lookup((0, 2), ("a", 2))) == {("a", "c", 2)}

    def test_index_maintained_on_insert(self):
        relation = relation_from_rows("link", [("a", "b")])
        relation.ensure_index((0,))
        relation.add(("a", "z"), 1)
        assert set(relation.lookup((0,), ("a",))) == {("a", "b"), ("a", "z")}

    def test_index_maintained_on_delete(self):
        relation = relation_from_rows("link", [("a", "b"), ("a", "c")])
        relation.ensure_index((0,))
        relation.add(("a", "b"), -1)
        assert set(relation.lookup((0,), ("a",))) == {("a", "c")}

    def test_empty_positions_returns_all(self):
        relation = relation_from_rows("p", [("a",), ("b",)])
        assert set(relation.lookup((), ())) == {("a",), ("b",)}

    def test_count_change_does_not_duplicate_index_entry(self):
        relation = relation_from_rows("p", [("a", "b")])
        relation.ensure_index((0,))
        relation.add(("a", "b"), 3)
        assert list(relation.lookup((0,), ("a",))) == [("a", "b")]


class TestMisc:
    def test_total_count_is_bag_cardinality(self):
        relation = relation_from_rows("p", [("a",), ("a",), ("b",)])
        assert relation.total_count() == 3
        assert len(relation) == 2

    def test_copy_is_deep_for_rows(self):
        relation = relation_from_rows("p", [("a",)])
        clone = relation.copy()
        clone.add(("b",), 1)
        assert ("b",) not in relation

    def test_items_snapshot_allows_mutation(self):
        relation = relation_from_rows("p", [("a",), ("b",)])
        for row, _count in relation.items():
            relation.add(row, 1)  # must not raise RuntimeError
        assert relation.count(("a",)) == 2

    def test_equality_with_dict(self):
        relation = relation_from_rows("p", [("a",)])
        assert relation == {("a",): 1}

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(CountedRelation("p"))

    def test_clear(self):
        relation = relation_from_rows("p", [("a",)])
        relation.ensure_index((0,))
        relation.clear()
        assert len(relation) == 0
        assert list(relation.lookup((0,), ("a",))) == []

    def test_repr_contains_name_and_size(self):
        relation = relation_from_rows("link", [("a", "b")])
        assert "link" in repr(relation)
        assert "|1|" in repr(relation)
