"""Union views (multiple rules per head) under both algorithms.

The paper's view language includes UNION; in Datalog that is several
rules with the same head, and counts add across rules (a tuple derived
by two rules has ≥2 derivations).
"""

import pytest

from repro.core.maintenance import ViewMaintainer
from repro.storage.changeset import Changeset
from repro.storage.database import Database

from conftest import database_with

UNION_SRC = """
edge(X, Y) :- road(X, Y).
edge(X, Y) :- rail(X, Y).
"""


def _db():
    db = Database()
    db.insert_rows("road", [("a", "b"), ("b", "c")])
    db.insert_rows("rail", [("a", "b"), ("c", "d")])
    return db


class TestCountingUnion:
    def test_counts_add_across_rules(self):
        maintainer = ViewMaintainer.from_source(UNION_SRC, _db()).initialize()
        assert maintainer.relation("edge").count(("a", "b")) == 2
        assert maintainer.relation("edge").count(("b", "c")) == 1

    def test_deleting_one_source_keeps_tuple(self):
        maintainer = ViewMaintainer.from_source(UNION_SRC, _db()).initialize()
        report = maintainer.apply(Changeset().delete("road", ("a", "b")))
        # One derivation gone, the rail one remains.
        assert maintainer.relation("edge").count(("a", "b")) == 1
        assert report.delta("edge").count(("a", "b")) == -1
        # Set-level: (a,b) is still in the view, so nothing cascades.
        assert not report.counting.cascaded.get("edge", {})
        maintainer.consistency_check()

    def test_deleting_both_sources_removes_tuple(self):
        maintainer = ViewMaintainer.from_source(UNION_SRC, _db()).initialize()
        maintainer.apply(
            Changeset().delete("road", ("a", "b")).delete("rail", ("a", "b"))
        )
        assert ("a", "b") not in maintainer.relation("edge")
        maintainer.consistency_check()

    def test_union_feeding_join(self):
        source = UNION_SRC + "two(X, Z) :- edge(X, Y), edge(Y, Z)."
        maintainer = ViewMaintainer.from_source(source, _db()).initialize()
        # two(a, c) via edge(a,b)[×2] ⋈ edge(b,c)[×1]... set semantics
        # reads edge rows as count 1 within two's stratum.
        assert maintainer.relation("two").count(("a", "c")) == 1
        maintainer.apply(Changeset().delete("road", ("b", "c")))
        assert ("a", "c") not in maintainer.relation("two")
        maintainer.consistency_check()

    def test_union_duplicate_semantics_cascades_multiplicity(self):
        source = UNION_SRC + "two(X, Z) :- edge(X, Y), edge(Y, Z)."
        maintainer = ViewMaintainer.from_source(
            source, _db(), semantics="duplicate"
        ).initialize()
        # edge(a,b) has multiplicity 2 under bags → two(a,c) inherits it.
        assert maintainer.relation("two").count(("a", "c")) == 2
        maintainer.consistency_check()


class TestDRedUnion:
    def test_rederivation_through_other_rule(self):
        source = UNION_SRC + (
            "reach(X, Y) :- edge(X, Y).\n"
            "reach(X, Y) :- reach(X, Z), edge(Z, Y).\n"
        )
        maintainer = ViewMaintainer.from_source(
            source, _db(), strategy="dred"
        ).initialize()
        report = maintainer.apply(Changeset().delete("road", ("a", "b")))
        # edge(a,b) survives through rail, so reach is unchanged.
        assert ("a", "c") in maintainer.relation("reach")
        assert report.dred.stats.deleted == 0
        maintainer.consistency_check()

    def test_deletion_propagates_when_no_alternative(self):
        source = UNION_SRC + (
            "reach(X, Y) :- edge(X, Y).\n"
            "reach(X, Y) :- reach(X, Z), edge(Z, Y).\n"
        )
        maintainer = ViewMaintainer.from_source(
            source, _db(), strategy="dred"
        ).initialize()
        maintainer.apply(Changeset().delete("road", ("b", "c")))
        assert ("a", "c") not in maintainer.relation("reach")
        maintainer.consistency_check()
