# Test targets.  Tier-1 (`make test`) runs the whole suite exactly as CI
# does; the split targets exist so the slow layers can be exercised (or
# skipped) independently without changing what the default run covers.

PYTHON ?= python
PYTEST := env PYTHONPATH=src $(PYTHON) -m pytest
TIMEOUT ?= timeout

.PHONY: test test-fast test-faults test-soak

# The tier-1 gate: everything, fail fast.
test:
	$(PYTEST) -x -q

# Everything except the slow layers — the inner-loop developer run.
test-fast:
	$(PYTEST) -x -q -m "not soak and not faults"

# Crash-injection / durability tests only, fenced by a hard timeout so a
# recovery bug that hangs (e.g. replaying a corrupt journal forever)
# kills the run instead of wedging CI.
test-faults:
	$(TIMEOUT) 300 $(PYTEST) -x -q -m faults

# Long randomized integration soaks, same fencing.
test-soak:
	$(TIMEOUT) 900 $(PYTEST) -x -q -m soak
