# Test targets.  Tier-1 (`make test`) runs the whole suite exactly as CI
# does; the split targets exist so the slow layers can be exercised (or
# skipped) independently without changing what the default run covers.

PYTHON ?= python
PYTEST := env PYTHONPATH=src $(PYTHON) -m pytest
TIMEOUT ?= timeout

.PHONY: check test test-fast test-faults test-soak bench-smoke obs-smoke \
	guard-smoke mvcc-smoke lint-smoke bf-smoke health-smoke \
	orchestrator-smoke sanitize-smoke lint lint-strict ruff pylint

# The default gate: the whole suite plus the benchmark, observability,
# guardrail and static-analysis smoke runs.
check: test bench-smoke obs-smoke guard-smoke mvcc-smoke lint-smoke \
	bf-smoke health-smoke orchestrator-smoke sanitize-smoke

# The tier-1 gate: everything, fail fast.
test:
	$(PYTEST) -x -q

# Everything except the slow layers — the inner-loop developer run.
test-fast:
	$(PYTEST) -x -q -m "not soak and not faults"

# Crash-injection / durability tests only, fenced by a hard timeout so a
# recovery bug that hangs (e.g. replaying a corrupt journal forever)
# kills the run instead of wedging CI.
test-faults:
	$(TIMEOUT) 300 $(PYTEST) -x -q -m faults

# Long randomized integration soaks, same fencing.
test-soak:
	$(TIMEOUT) 900 $(PYTEST) -x -q -m soak

# Plan-cache benchmark at toy scale: proves the harness runs end-to-end
# and BENCH_maintenance.json stays well-formed, without the full run's
# cost.  (The full benchmark is `python benchmarks/bench_plan_cache.py`.)
bench-smoke:
	env PYTHONPATH=src $(PYTHON) benchmarks/bench_plan_cache.py --smoke \
		--out /tmp/bench_plan_cache_smoke.json

# Observability acceptance at toy scale: traced counting+DRed passes
# emit a well-formed span-tree JSONL, the metrics registry renders
# valid Prometheus exposition (>= 10 families), and `explain`
# reproduces the stored derivation count (Theorem 4.1).
obs-smoke:
	env PYTHONPATH=src $(PYTHON) -m repro.obs.smoke

# Guardrail acceptance at toy scale: a budget breach rolls back to the
# bit-identical pre-pass state, a forced fallback produces
# recompute-identical views, and a poison changeset round-trips
# through the quarantine dead-letter file.
guard-smoke:
	env PYTHONPATH=src $(PYTHON) -m repro.guard.smoke

# MVCC acceptance at toy scale: 4 reader threads race 200 maintenance
# passes under injected crash points and guard-budget breaches; every
# pinned snapshot read must equal the recompute oracle at its epoch
# (zero torn reads) and the version chains must stay within the
# retention cap.  (The long randomized version is `make test-soak`.)
mvcc-smoke:
	env PYTHONPATH=src $(PYTHON) -m repro.storage.mvcc_smoke

# Static-analysis acceptance: every Datalog program embedded in
# examples/*.py lints clean of error diagnostics through the real
# `repro lint --format json` CLI (schema-validated), the strategy
# advisor's counting/DRed pick matches ViewMaintainer's own
# auto-selection on each, and a known-bad fixture produces exactly the
# expected RV codes.  See docs/analysis.md for the code catalogue.
lint-smoke:
	env PYTHONPATH=src $(PYTHON) -m repro.analysis.smoke

# B/F acceptance at toy scale: the advisor recommends bf (RV203) on the
# dense alternative-derivation fixture and auto-selection agrees, bf and
# DRed leave identical views on a delete/reinsert stream through it, bf
# is measurably faster there, and the candidates-vs-overestimate
# counters confirm the targeting.  (The full benchmark with the >= 5x
# gate is `python benchmarks/bench_bf.py` -> BENCH_bf.json.)
bf-smoke:
	env PYTHONPATH=src $(PYTHON) -m repro.core.bf_smoke

# Health-layer acceptance at toy scale: SLOs on a live workload, an
# injected admission fault quarantines passes until the freshness
# burn-rate alert fires (view + window in the payload), recovery clears
# it, the profiler report is schema-valid with ring-resolvable span
# exemplars, and `repro top --once` renders every dashboard section.
health-smoke:
	env PYTHONPATH=src $(PYTHON) -m repro.obs.health_smoke

# Orchestrator acceptance at toy scale: a fault drill on a 3-level DAG
# under a virtual clock — injected failures quarantine exactly their
# isolation cone while siblings keep refreshing, quarantined views
# serve their last committed MVCC epoch with staleness stamps, the
# recovery probe heals the cone and drains the backlog, target_lag /
# DOWNSTREAM batching holds, and every view matches the recompute
# oracle.  (The scheduler-overhead benchmark with the <5% gate is
# `python benchmarks/bench_orchestrator.py` -> BENCH_orchestrator.json.)
orchestrator-smoke:
	env PYTHONPATH=src $(PYTHON) -m repro.orchestrator.smoke

# Concurrency-sanitizer acceptance, both directions: the static RV3xx
# pass catches every seeded publication-discipline defect in the
# known-bad fixture (span-accurate) and reports zero error-severity
# RV3xx findings over the real src/repro tree; the runtime sanitizer
# (Database(sanitize=True)) runs a threaded MVCC soak green and traps
# a fault-injected torn publication from concurrent reader threads.
# This is the gate for O4's worker pool.  See docs/analysis.md.
sanitize-smoke:
	env PYTHONPATH=src $(PYTHON) -m repro.analysis.sanitize_smoke

# Lint an arbitrary program: make lint FILE=path/to/views.dl
lint:
	env PYTHONPATH=src $(PYTHON) -m repro lint $(FILE)

# The hard-failing lint gate (CI): unlike `make ruff`/`make pylint`,
# which skip when the tool is missing, every stage here must run and
# pass — a missing tool fails the target.  CI installs ruff/pylint;
# the final stage (the RV3xx/RV220 self-lint) needs no third-party
# tools and can be run alone anywhere via `repro lint --self`.
lint-strict:
	$(PYTHON) -m ruff check src tests benchmarks examples
	env PYTHONPATH=src $(PYTHON) -m pylint --rcfile=pyproject.toml repro
	env PYTHONPATH=src $(PYTHON) -m repro lint --self --fail-on error

# Static passes over the codebase itself.  Both tools are optional in
# the base image; the targets skip (successfully) when the tool is not
# installed so `make ruff pylint` stays usable everywhere.  Ruff is
# configured in pyproject.toml ([tool.ruff]).
ruff:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping (pip install ruff)"; \
	fi

pylint:
	@if $(PYTHON) -m pylint --version >/dev/null 2>&1; then \
		env PYTHONPATH=src $(PYTHON) -m pylint --rcfile=pyproject.toml \
			repro; \
	else \
		echo "pylint not installed; skipping (pip install pylint)"; \
	fi
